//! Cross-crate integration: the peer sampling service API (Section 2) and
//! the H&S extension running under the standard simulator.

use peer_sampling::{
    GossipNode, NodeDescriptor, NodeId, OracleSampler, PeerSampler, PeerSamplingNode, PolicyTriple,
    ProtocolConfig,
};
use pss_core::hs::{HsConfig, HsNode, HsPeerSelection};
use pss_sim::{scenario, Simulation};
use std::collections::HashSet;

#[test]
fn get_peer_returns_group_members_only() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 20).expect("valid");
    let mut sim = scenario::random_overlay(&config, 200, 1);
    sim.run_cycles(20);
    for caller in [0u64, 50, 199] {
        let caller = NodeId::new(caller);
        for _ in 0..30 {
            let peer = sim.get_peer(caller).expect("converged view is non-empty");
            assert_ne!(peer, caller, "getPeer must not return the caller");
            assert!(peer.as_u64() < 200);
        }
    }
}

#[test]
fn gossip_sampler_covers_the_whole_group_over_time() {
    // Unlike a static partial view, the *service* over a gossiping view
    // reaches far beyond c distinct peers across calls.
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).expect("valid");
    let mut sim = scenario::random_overlay(&config, 150, 2);
    sim.run_cycles(10);
    let mut seen = HashSet::new();
    for _ in 0..40 {
        sim.run_cycle();
        for _ in 0..5 {
            seen.insert(sim.get_peer(NodeId::new(0)).expect("non-empty"));
        }
    }
    assert!(
        seen.len() > 60,
        "a gossiping view should expose many distinct peers, saw {}",
        seen.len()
    );
}

#[test]
fn oracle_and_gossip_samplers_are_interchangeable() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 10).expect("valid");
    let mut samplers: Vec<Box<dyn PeerSampler>> = vec![
        Box::new(OracleSampler::new(NodeId::new(0), 3)),
        Box::new(PeerSamplingNode::with_seed(NodeId::new(0), config, 4)),
    ];
    for sampler in &mut samplers {
        sampler.init(&mut (1..=5u64).map(|i| NodeDescriptor::fresh(NodeId::new(i))));
        let peer = sampler.get_peer().expect("five candidates");
        assert!((1..=5).contains(&peer.as_u64()));
    }
}

#[test]
fn hs_nodes_run_under_the_standard_simulator() {
    // The healer/swapper extension plugs into the same driver.
    let hs = HsConfig::new(20, 3, 2, HsPeerSelection::Rand).expect("valid");
    let mut sim = Simulation::with_factory(7, move |id, seed| {
        Box::new(HsNode::with_seed(id, hs, seed)) as pss_sim::BoxedNode
    });
    let first = sim.add_node([]);
    for i in 1..300u64 {
        sim.add_node([
            NodeDescriptor::fresh(NodeId::new(i / 2)),
            NodeDescriptor::fresh(first),
        ]);
    }
    sim.run_cycles(40);
    let g = sim.snapshot().undirected();
    assert!(pss_graph::components::is_connected(&g));
    // H&S sends half-views, so degrees stay near 2c like the base protocol.
    assert!(g.average_degree() > 20.0, "degree {}", g.average_degree());

    // Healer removes dead links fast.
    sim.kill_random_fraction(0.5);
    let initial = sim.dead_link_count();
    sim.run_cycles(25);
    assert!(
        sim.dead_link_count() < initial / 5,
        "H=3 should heal most dead links: {} of {initial} left",
        sim.dead_link_count()
    );
}

#[test]
fn mixed_node_types_interoperate() {
    // A population mixing the generic protocol and H&S nodes still forms
    // one connected overlay: the wire format is shared.
    let base = ProtocolConfig::new(PolicyTriple::newscast(), 16).expect("valid");
    let hs = HsConfig::new(16, 2, 2, HsPeerSelection::Rand).expect("valid");
    let mut sim = Simulation::with_factory(9, move |id, seed| {
        if id.as_u64() % 2 == 0 {
            Box::new(PeerSamplingNode::with_seed(id, base.clone(), seed)) as pss_sim::BoxedNode
        } else {
            Box::new(HsNode::with_seed(id, hs, seed)) as pss_sim::BoxedNode
        }
    });
    sim.add_node([]);
    for i in 1..200u64 {
        sim.add_node([NodeDescriptor::fresh(NodeId::new(i / 2))]);
    }
    sim.run_cycles(40);
    let g = sim.snapshot().undirected();
    assert!(pss_graph::components::is_connected(&g));
}

#[test]
fn reinitialization_resets_the_view() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 10).expect("valid");
    let mut node = PeerSamplingNode::with_seed(NodeId::new(0), config, 5);
    node.init([NodeDescriptor::fresh(NodeId::new(1))]);
    assert!(node.view().contains(NodeId::new(1)));
    GossipNode::init(
        &mut node,
        &mut [NodeDescriptor::fresh(NodeId::new(2))].into_iter(),
    );
    assert!(!node.view().contains(NodeId::new(1)));
    assert!(node.view().contains(NodeId::new(2)));
}
