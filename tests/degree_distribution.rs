//! Cross-crate integration: Section 6's degree-distribution results at
//! small scale — the fundamental split between head and rand view
//! selection.

use peer_sampling::{scenario, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::observe::{run_observed, DegreeTracer};
use pss_stats::Summary;

const N: usize = 800;
const C: usize = 20;
const CYCLES: u64 = 80;

fn converged_distribution(policy: &str, seed: u64) -> pss_stats::CountDistribution {
    let policy: PolicyTriple = policy.parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = scenario::random_overlay(&config, N, seed);
    sim.run_cycles(CYCLES);
    sim.snapshot().undirected().degree_distribution()
}

#[test]
fn degree_is_never_below_view_size() {
    // Every node keeps c out-links, so undirected degree >= c (once views
    // are full and all targets are alive).
    let dist = converged_distribution("(rand,head,pushpull)", 1);
    assert!(dist.min().unwrap() >= C as u64);
}

#[test]
fn head_view_selection_balances_degrees() {
    let head = converged_distribution("(rand,head,pushpull)", 2);
    let rand = converged_distribution("(rand,rand,pushpull)", 3);
    assert!(
        rand.variance() > 2.0 * head.variance(),
        "rand variance {} should dwarf head variance {}",
        rand.variance(),
        head.variance()
    );
    assert!(
        rand.max().unwrap() > head.max().unwrap(),
        "rand max {} should exceed head max {}",
        rand.max().unwrap(),
        head.max().unwrap()
    );
}

#[test]
fn all_protocols_keep_mean_degree_near_2c() {
    for policy in [
        "(rand,head,pushpull)",
        "(rand,rand,push)",
        "(tail,head,push)",
    ] {
        let dist = converged_distribution(policy, 4);
        let mean = dist.mean();
        assert!(
            mean > 1.3 * C as f64 && mean < 2.0 * C as f64,
            "{policy}: mean degree {mean} outside [1.3c, 2c]"
        );
    }
}

#[test]
fn node_degrees_oscillate_around_common_mean_without_hubs() {
    // Table 2: "the degree of all nodes oscillates around the overall
    // average … there are no emerging higher degree nodes on the long run".
    let policy: PolicyTriple = "(rand,head,pushpull)".parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = scenario::random_overlay(&config, N, 5);
    let traced: Vec<NodeId> = (0..20).map(|i| NodeId::new(i * 7)).collect();
    let mut tracer = DegreeTracer::new(traced);
    run_observed(&mut sim, CYCLES, &mut [&mut tracer]);

    let time_averages: Summary = tracer
        .all_series()
        .iter()
        .map(|s| s.summary().mean())
        .collect();
    let overall = sim.snapshot().undirected().average_degree();
    assert!(
        (time_averages.mean() - overall).abs() < 4.0,
        "traced mean {} vs overall {overall}",
        time_averages.mean()
    );
    // Per-node time averages cluster tightly for head view selection.
    assert!(
        time_averages.sample_std_dev() < 4.0,
        "head selection time-average spread too wide: {}",
        time_averages.sample_std_dev()
    );
}

#[test]
fn head_degree_series_decorrelates_quickly() {
    // Figure 5: (rand,head,pushpull) is white-noise-like while
    // (rand,rand,pushpull) has strong short-term correlation.
    let run = |policy: &str| {
        let policy: PolicyTriple = policy.parse().expect("valid");
        let config = ProtocolConfig::new(policy, C).expect("valid");
        let mut sim = scenario::random_overlay(&config, N, 6);
        let mut tracer = DegreeTracer::new(vec![NodeId::new(10)]);
        run_observed(&mut sim, 120, &mut [&mut tracer]);
        pss_stats::autocorrelation_at(tracer.series(0).values(), 1)
    };
    let head_r1 = run("(rand,head,pushpull)");
    let rand_r1 = run("(rand,rand,pushpull)");
    assert!(
        rand_r1 > head_r1 + 0.2,
        "rand r1 {rand_r1} should clearly exceed head r1 {head_r1}"
    );
}
