//! Cross-crate integration: the paper's convergence claims at small scale.
//!
//! Section 5's central result — overlay properties converge to the same
//! values regardless of the initial topology ("self-organization") — and
//! Section 4.3's connectivity requirement.

use peer_sampling::{scenario, PolicyTriple, ProtocolConfig};
use pss_graph::{clustering, components, paths};

const N: usize = 600;
const C: usize = 20;
const CYCLES: u64 = 80;

fn converged_metrics(policy: PolicyTriple, which: &str, seed: u64) -> (f64, f64, f64) {
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = match which {
        "lattice" => scenario::lattice_overlay(&config, N, seed),
        "random" => scenario::random_overlay(&config, N, seed),
        "growing" => scenario::growing_overlay(&config, N, N / 50, seed),
        other => panic!("unknown scenario {other}"),
    };
    sim.run_cycles(CYCLES);
    let g = sim.snapshot().undirected();
    assert!(
        components::is_connected(&g),
        "{policy} from {which} start must stay connected"
    );
    (
        clustering::clustering_coefficient(&g),
        g.average_degree(),
        paths::average_path_length(&g).average,
    )
}

#[test]
fn pushpull_protocols_converge_to_same_state_from_any_start() {
    for policy in PolicyTriple::paper_eight()
        .into_iter()
        .filter(|p| p.propagation == peer_sampling::ViewPropagation::PushPull)
    {
        let (cc_l, deg_l, apl_l) = converged_metrics(policy, "lattice", 1);
        let (cc_r, deg_r, apl_r) = converged_metrics(policy, "random", 2);
        assert!(
            (cc_l - cc_r).abs() < 0.07,
            "{policy}: clustering {cc_l} (lattice) vs {cc_r} (random)"
        );
        assert!(
            (deg_l - deg_r).abs() < 4.0,
            "{policy}: degree {deg_l} vs {deg_r}"
        );
        assert!(
            (apl_l - apl_r).abs() < 0.25,
            "{policy}: path length {apl_l} vs {apl_r}"
        );
    }
}

#[test]
fn lattice_diameter_collapses_quickly() {
    // Figure 3a: from a ring lattice (path length O(N/c)) the overlay
    // reaches random-like distances within tens of cycles.
    let config = ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid");
    let mut sim = scenario::lattice_overlay(&config, N, 3);
    let initial = paths::average_path_length(&sim.snapshot().undirected()).average;
    sim.run_cycles(20);
    let after = paths::average_path_length(&sim.snapshot().undirected()).average;
    assert!(
        initial > 3.0 * after,
        "expected sharp drop: initial {initial}, after 20 cycles {after}"
    );
    assert!(after < 3.0, "converged path length {after} should be tiny");
}

#[test]
fn growing_overlay_converges_for_pushpull() {
    let (cc_g, deg_g, _) = converged_metrics(PolicyTriple::newscast(), "growing", 4);
    let (cc_r, deg_r, _) = converged_metrics(PolicyTriple::newscast(), "random", 5);
    assert!(
        (cc_g - cc_r).abs() < 0.08,
        "growing {cc_g} vs random {cc_r}"
    );
    assert!((deg_g - deg_r).abs() < 4.0, "degree {deg_g} vs {deg_r}");
}

#[test]
fn overlays_are_small_world() {
    // Section 8: all overlays are small-world — clustering far above the
    // random baseline, path length close to it.
    let config = ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid");
    let mut sim = scenario::random_overlay(&config, N, 6);
    sim.run_cycles(CYCLES);
    let g = sim.snapshot().undirected();

    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
    let baseline = pss_graph::gen::uniform_view_digraph(N, C, &mut rng).to_undirected();

    let cc = clustering::clustering_coefficient(&g);
    let cc_base = clustering::clustering_coefficient(&baseline);
    assert!(
        cc > 2.0 * cc_base,
        "overlay clustering {cc} should exceed baseline {cc_base}"
    );

    let apl = paths::average_path_length(&g).average;
    let apl_base = paths::average_path_length(&baseline).average;
    assert!(
        apl < apl_base + 0.8,
        "overlay path length {apl} should stay near baseline {apl_base}"
    );
}

#[test]
fn degenerate_pull_collapses_to_star() {
    // Section 4.3: (*,*,pull) converges to a star topology.
    let policy: PolicyTriple = "(rand,head,pull)".parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = scenario::random_overlay(&config, 300, 8);
    sim.run_cycles(80);
    let g = sim.snapshot().undirected();
    let hubness = g.max_degree() as f64 / (g.node_count() - 1) as f64;
    assert!(
        hubness > 0.5,
        "pull-only overlay should grow a dominant hub, got {hubness}"
    );
}

#[test]
fn degenerate_tail_view_selection_ignores_joiners() {
    // Section 4.3: (*,tail,*) cannot handle joining nodes.
    let policy: PolicyTriple = "(rand,tail,pushpull)".parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = scenario::random_overlay(&config, 300, 9);
    sim.run_cycles(40);
    let joined_from = sim.node_count();
    sim.add_nodes_with_random_contacts(30, 1);
    sim.run_cycles(20);
    let snap = sim.snapshot();
    let in_degrees = snap.directed().in_degrees();
    let joiner_in: usize = (joined_from..joined_from + 30)
        .filter_map(|i| snap.index_of(peer_sampling::NodeId::new(i as u64)))
        .map(|idx| in_degrees[idx as usize])
        .sum();
    assert!(
        joiner_in < 30,
        "tail view selection should leave joiners unknown, total in-degree {joiner_in}"
    );
}
