//! Cross-crate integration: Section 7's self-healing results at small
//! scale — head view selection heals exponentially, rand barely heals, and
//! converged overlays survive massive removal (Figure 6).

use peer_sampling::sim::{Engine, LatencyModel};
use peer_sampling::{
    scenario, EventConfig, NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig,
    ShardedEventSimulation,
};
use pss_graph::components::connected_components;

const N: usize = 800;
const C: usize = 20;

fn converged(policy: &str, seed: u64) -> peer_sampling::Simulation {
    let policy: PolicyTriple = policy.parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = scenario::random_overlay(&config, N, seed);
    sim.run_cycles(60);
    sim
}

#[test]
fn head_view_selection_heals_exponentially() {
    let mut sim = converged("(rand,head,pushpull)", 1);
    sim.kill_random_fraction(0.5);
    let initial = sim.dead_link_count();
    assert!(initial > N, "expected substantial damage, got {initial}");
    // Exponential healing: gone (or nearly) within 15 cycles.
    sim.run_cycles(15);
    let remaining = sim.dead_link_count();
    assert!(
        remaining <= initial / 50,
        "head selection should heal fast: {remaining} of {initial} left"
    );
    sim.run_cycles(15);
    assert_eq!(sim.dead_link_count(), 0, "head selection heals completely");
}

#[test]
fn tail_peer_selection_overlaps_rand_for_pushpull_healing() {
    // Figure 7: "(∗,head,pushpull) protocols fully overlap".
    let mut a = converged("(rand,head,pushpull)", 2);
    let mut b = converged("(tail,head,pushpull)", 3);
    a.kill_random_fraction(0.5);
    b.kill_random_fraction(0.5);
    a.run_cycles(30);
    b.run_cycles(30);
    assert_eq!(a.dead_link_count(), 0);
    assert_eq!(b.dead_link_count(), 0);
}

#[test]
fn rand_view_selection_heals_slowly_at_best() {
    let mut sim = converged("(rand,rand,pushpull)", 4);
    sim.kill_random_fraction(0.5);
    let initial = sim.dead_link_count();
    sim.run_cycles(30);
    let remaining = sim.dead_link_count();
    assert!(
        remaining > initial / 3,
        "rand selection should retain most dead links: {remaining} of {initial}"
    );
}

#[test]
fn surviving_half_stays_connected() {
    // Section 7: after killing 50% "we did not observe partitioning with
    // any of the protocols".
    for policy in ["(rand,head,pushpull)", "(rand,rand,pushpull)"] {
        let mut sim = converged(policy, 5);
        sim.kill_random_fraction(0.5);
        sim.run_cycles(5);
        let g = sim.snapshot().undirected();
        assert!(
            pss_graph::components::is_connected(&g),
            "{policy}: survivors should stay connected"
        );
    }
}

#[test]
fn massive_removal_keeps_one_dominant_cluster() {
    // Figure 6: even when partitioning occurs, "most of the nodes form a
    // single large connected cluster".
    let sim = converged("(rand,head,pushpull)", 6);
    let graph = sim.snapshot().undirected();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
    use rand::seq::SliceRandom;

    for percent in [50usize, 65, 80] {
        let mut order: Vec<usize> = (0..N).collect();
        order.shuffle(&mut rng);
        let mut keep = vec![true; N];
        for &v in order.iter().take(N * percent / 100) {
            keep[v] = false;
        }
        let sub = graph.induced_subgraph(&keep);
        let report = connected_components(&sub);
        let survivors = sub.node_count();
        assert!(
            report.largest() * 100 >= survivors * 95,
            "{percent}% removal: largest cluster {} of {survivors}",
            report.largest()
        );
    }
}

/// The Section 7 catastrophe driven generically through the [`Engine`]
/// trait — the same path workload schedules use.
fn engine_catastrophe_heals<E: Engine>(sim: &mut E, recovery: u64, divisor: usize) {
    let victims = sim.kill_random(sim.alive_count() / 2);
    assert_eq!(victims.len(), N / 2);
    let initial = sim.dead_link_count();
    assert!(initial > N, "expected substantial damage, got {initial}");
    for _ in 0..recovery {
        sim.run_cycle();
    }
    let remaining = sim.dead_link_count();
    assert!(
        remaining <= initial / divisor,
        "head selection should heal fast: {remaining} of {initial} left after {recovery} cycles"
    );
}

#[test]
fn head_view_selection_heals_on_the_event_engine() {
    // The same catastrophe bounds on the event engine — jitter, latency
    // and loss on, two shards — guarding the schedule path against
    // regression. The event engine is liveness-blind (no SkipDead), so
    // healing takes more periods than the cycle model; the decay is still
    // exponential.
    let policy: PolicyTriple = "(rand,head,pushpull)".parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let event = EventConfig {
        period: 1000,
        jitter: 300,
        latency: LatencyModel::Uniform { min: 10, max: 200 },
        loss_probability: 0.05,
    };
    let mut sim = ShardedEventSimulation::new(config, event, 61, 2).expect("valid");
    for i in 0..N as u64 {
        let seeds: Vec<NodeDescriptor> = if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        };
        sim.add_node(seeds);
    }
    for _ in 0..30 {
        sim.run_cycle();
    }
    engine_catastrophe_heals(&mut sim, 30, 20);
}

#[test]
fn head_view_selection_heals_via_the_engine_trait_on_the_cycle_engine() {
    // The cycle-engine instance of the same generic body, pinning that the
    // trait path matches the direct API the older tests use (SkipDead
    // heals within 15 cycles to 1/50th).
    let mut sim = converged("(rand,head,pushpull)", 21);
    engine_catastrophe_heals(&mut sim, 15, 50);
}

#[test]
fn attempt_and_lose_mode_wedges_tail_selection() {
    // The extension finding: without the paper's live-peer selection,
    // tail peer selection wedges on dead entries and healing stalls.
    let policy: PolicyTriple = "(tail,head,pushpull)".parse().expect("valid");
    let config = ProtocolConfig::new(policy, C).expect("valid");
    let mut skip = scenario::random_overlay(&config, N, 8);
    let mut attempt = scenario::random_overlay(&config, N, 8);
    attempt.set_failure_mode(peer_sampling::sim::FailureMode::AttemptAndLose);
    for sim in [&mut skip, &mut attempt] {
        sim.run_cycles(60);
        sim.kill_random_fraction(0.5);
        sim.run_cycles(40);
    }
    assert_eq!(skip.dead_link_count(), 0, "paper model heals fully");
    assert!(
        attempt.dead_link_count() > 100,
        "liveness-blind tail selection should stall with dead links, got {}",
        attempt.dead_link_count()
    );
}
