//! Allocation accounting for the telemetry record path.
//!
//! The registry's contract is that *registration* may allocate (it happens
//! at engine construction) but *recording* never does: counters and gauges
//! are single atomic RMWs, histograms are five, and the flight recorder
//! writes `Copy` events into storage reserved at construction. This test
//! takes handles, warms the flight ring to capacity so eviction (not
//! growth) is the steady state, and then pins a large recording window at
//! exactly zero allocations.
//!
//! Kept in its own integration-test binary because the `#[global_allocator]`
//! is process-wide; the single `#[test]` keeps the measurement window free
//! of concurrent test allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pss_telemetry::{flight, global, EventKind};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator; the counter is the
// only addition and is atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_record_path_is_allocation_free() {
    // Registration phase: allowed to allocate.
    let counter = global().counter("pss_alloc_test_total", "allocation test counter");
    let gauge = global().gauge("pss_alloc_test_live", "allocation test gauge");
    let hist = global().histogram_with(
        "pss_alloc_test_ns",
        &[("engine", "test")],
        "allocation test histogram",
    );
    let recorder = flight();

    // Warm-up: fill the flight ring past capacity so the window below
    // exercises eviction (the steady state), not Vec growth — and force
    // the lazy `enabled()` env read off the measured path.
    for i in 0..(pss_telemetry::FLIGHT_CAPACITY as u64 + 64) {
        counter.inc();
        gauge.set(i);
        hist.record(i * 37);
        recorder.record(EventKind::PhaseStart, "test/warmup", i, 0);
    }

    // The counter is process-wide, so a runtime thread outside this test
    // (e.g. libtest's harness) can allocate concurrently and charge the
    // window. A real record-path allocation shows up in *every* trial;
    // ambient noise does not — so pin the minimum across trials at zero.
    const ROUNDS: u64 = 10_000;
    const TRIALS: usize = 5;
    let mut min_during = u64::MAX;
    for _ in 0..TRIALS {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..ROUNDS {
            counter.add(2);
            gauge.set_max(i);
            hist.record(i);
            recorder.record(EventKind::PhaseEnd, "test/steady", i, i * 3);
            recorder.record(EventKind::DecodeError, "header", i, 40);
        }
        let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
        min_during = min_during.min(during);
        if min_during == 0 {
            break;
        }
    }

    assert_eq!(
        min_during, 0,
        "telemetry record path allocated {min_during} times over {ROUNDS} rounds in every one of {TRIALS} trials",
    );

    // The windows really did record (the cells moved).
    assert!(counter.get() >= 2 * ROUNDS);
    assert!(hist.count() >= ROUNDS);
    assert_eq!(recorder.len(), pss_telemetry::FLIGHT_CAPACITY);
}
