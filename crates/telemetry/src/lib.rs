//! Always-on telemetry for the peer sampling stacks: a lock-free metrics
//! registry and a bounded flight recorder.
//!
//! Every layer of the workspace — the sharded cycle and event engines, the
//! network runtime, the cluster harness, the application-workload drivers —
//! records into one process-global [`Registry`] of [`Counter`]s,
//! [`Gauge`]s, and power-of-two-bucketed [`Histogram`]s. Recording is a
//! handful of relaxed atomic operations: no locks, no RNG, no floats, and
//! no allocation (the counting-allocator test in `tests/alloc_record.rs`
//! pins that). Structured *events* — phase boundaries, membership
//! operations, health-gate evaluations, decode errors — go to the global
//! [`FlightRecorder`], a preallocated ring that keeps the most recent few
//! thousand events and dumps them as JSON on panic or on a failed health
//! gate.
//!
//! # Determinism contract
//!
//! Telemetry **observes**; it never participates. It draws no randomness,
//! never reorders or delays a message, and writes into no structure that
//! feeds a protocol decision or a pinned digest. The sharded engines'
//! determinism digests are byte-identical with telemetry enabled or
//! disabled, at any worker count. Wall-clock readings exist only inside
//! metric cells and flight events.
//!
//! # Switching off
//!
//! [`enabled()`] is a single relaxed atomic load, initialised from the
//! `PSS_TELEMETRY` environment variable (`0` or `off` disables) and
//! overridable with [`set_enabled`]. Instrumentation sites that pay for a
//! clock read check it first; the record methods also check it, so a
//! disabled process does no telemetry work beyond one load per site.
//!
//! # Exposition
//!
//! [`Registry::render_prometheus`] emits the Prometheus text format
//! (histograms as cumulative `_bucket{le="..."}` series);
//! [`Registry::render_json`] emits the same flat JSON-array shape the
//! bench harness's `--bench-json` files use. `experiments metrics` wires
//! both to the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;
mod registry;

pub use metrics::{Counter, Gauge, Histogram};
pub use recorder::{
    dump_path, flight, install_panic_hook, EventKind, FlightEvent, FlightRecorder, FLIGHT_CAPACITY,
};
pub use registry::{global, MetricRow, Registry};

use std::sync::atomic::{AtomicU8, Ordering};

// 0 = uninitialised, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is recording. One relaxed load on the fast path;
/// the first call reads `PSS_TELEMETRY` (`"0"`/`"off"`/`"false"` disable).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match std::env::var("PSS_TELEMETRY") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "false")
        }
        Err(_) => true,
    };
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Force telemetry on or off, overriding the environment.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}
