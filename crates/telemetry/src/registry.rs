//! The metric registry: named series, idempotent registration, exposition.
//!
//! Registration takes a short-lived lock and possibly allocates; it
//! happens when an engine or runtime is *constructed*. Recording goes
//! through the returned handles and never touches the registry again —
//! that split is what keeps the hot path lock- and allocation-free.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use pss_stats::Log2Histogram;

use crate::metrics::{Counter, Gauge, Histogram};

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    // (name, rendered labels) → index into `entries`.
    index: HashMap<(String, String), usize>,
}

/// A set of named metric series with Prometheus and JSON exposition.
///
/// Registration is **idempotent**: asking for the same name and label set
/// twice returns a handle to the same cell (the kind must match, or the
/// second caller panics — that is a programming error, not a runtime
/// condition). Use [`global()`] for the process-wide registry every stack
/// records into.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// One registered series flattened for table display: the name, the
/// rendered label set, the kind, and the headline numbers (a counter or
/// gauge carries only `value`; a histogram fills the quantile columns from
/// a point-in-time snapshot).
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Metric family name, e.g. `pss_phase_ns`.
    pub name: String,
    /// Rendered labels, e.g. `engine=cycle,phase=initiate` (empty if none).
    pub labels: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter/gauge value, or histogram observation count.
    pub value: u64,
    /// Histogram snapshot (quantiles, sum, extremes); `None` for scalars.
    pub histogram: Option<Log2Histogram>,
}

fn render_labels(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}={v}");
    }
    out
}

/// `{k="v",...}` with an extra label appended; empty string when no labels.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry (tests and tooling; production code uses
    /// [`global()`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = (
            name.to_string(),
            render_labels(
                &labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect::<Vec<_>>(),
            ),
        );
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(&i) = inner.index.get(&key) {
            let entry = &inner.entries[i];
            let metric = entry.metric.clone();
            assert_eq!(
                std::mem::discriminant(&metric),
                std::mem::discriminant(&make()),
                "metric {name} re-registered as a different kind",
            );
            return metric;
        }
        let metric = make();
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        inner.index.insert(key, i);
        metric
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or retrieves) a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(name, labels, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind mismatch is caught in register()"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or retrieves) a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.register(name, labels, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind mismatch is caught in register()"),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or retrieves) a labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        match self.register(name, labels, help, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind mismatch is caught in register()"),
        }
    }

    /// Every registered series flattened to a [`MetricRow`], in
    /// registration order.
    #[must_use]
    pub fn rows(&self) -> Vec<MetricRow> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .entries
            .iter()
            .map(|e| {
                let (value, histogram) = match &e.metric {
                    Metric::Counter(c) => (c.get(), None),
                    Metric::Gauge(g) => (g.get(), None),
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        (snap.total(), Some(snap))
                    }
                };
                MetricRow {
                    name: e.name.clone(),
                    labels: render_labels(&e.labels),
                    kind: e.metric.kind(),
                    value,
                    histogram,
                }
            })
            .collect()
    }

    /// Prometheus text exposition format: `# HELP`/`# TYPE` headers per
    /// family, histograms as cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut seen_header: Vec<&str> = Vec::new();
        for e in &inner.entries {
            if !seen_header.contains(&e.name.as_str()) {
                seen_header.push(&e.name);
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, e.metric.kind());
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        c.get()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        g.get()
                    );
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (_, ceil, count) in snap.nonzero_buckets() {
                        cumulative = cumulative.saturating_add(count);
                        let le = ceil.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            e.name,
                            prom_labels(&e.labels, Some(("le", &le))),
                            cumulative,
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        prom_labels(&e.labels, Some(("le", "+Inf"))),
                        snap.total(),
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        snap.sum(),
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        snap.total(),
                    );
                }
            }
        }
        out
    }

    /// JSON exposition in the flat-array shape of the bench harness's
    /// `--bench-json` files: one object per series with `name`, `labels`,
    /// `kind`, and either `value` or the histogram summary plus its
    /// `[floor, ceil, count]` bucket triples.
    #[must_use]
    pub fn render_json(&self) -> String {
        let rows = self.rows();
        let mut out = String::from("[");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"name\": \"{}\", \"labels\": \"{}\", \"kind\": \"{}\"",
                row.name, row.labels, row.kind,
            );
            match &row.histogram {
                None => {
                    let _ = write!(out, ", \"value\": {}", row.value);
                }
                Some(snap) => {
                    let _ = write!(
                        out,
                        ", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                        snap.total(),
                        snap.sum(),
                        snap.min(),
                        snap.max(),
                        snap.p50(),
                        snap.p99(),
                    );
                    for (j, (floor, ceil, count)) in snap.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{floor}, {ceil}, {count}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Zeroes every registered cell (entries stay registered). Tooling
    /// that wants a clean measurement window — `experiments metrics` —
    /// calls this before its run; nothing in the engines does.
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("registry poisoned");
        for e in &inner.entries {
            match &e.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every stack records into.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("pss_test_total", "a test counter");
        let b = r.counter("pss_test_total", "a test counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.rows().len(), 1);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let a = r.counter_with("pss_ops_total", &[("op", "kill")], "ops");
        let b = r.counter_with("pss_ops_total", &[("op", "join")], "ops");
        a.add(3);
        b.add(5);
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].labels, "op=kill");
        assert_eq!(rows[0].value, 3);
        assert_eq!(rows[1].value, 5);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("pss_conflicted", "first as counter");
        let _ = r.gauge("pss_conflicted", "then as gauge");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter_with("pss_frames_total", &[("dir", "in")], "frames")
            .add(7);
        let h = r.histogram_with("pss_rtt_ticks", &[("engine", "net")], "round trips");
        h.record(1);
        h.record(3);
        h.record(3);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE pss_frames_total counter"));
        assert!(text.contains("pss_frames_total{dir=\"in\"} 7"));
        assert!(text.contains("# TYPE pss_rtt_ticks histogram"));
        assert!(text.contains("pss_rtt_ticks_bucket{engine=\"net\",le=\"1\"} 1"));
        assert!(text.contains("pss_rtt_ticks_bucket{engine=\"net\",le=\"3\"} 3"));
        assert!(text.contains("pss_rtt_ticks_bucket{engine=\"net\",le=\"+Inf\"} 3"));
        assert!(text.contains("pss_rtt_ticks_sum{engine=\"net\"} 7"));
        assert!(text.contains("pss_rtt_ticks_count{engine=\"net\"} 3"));
    }

    #[test]
    fn json_rendering_shape() {
        let r = Registry::new();
        r.gauge("pss_live_nodes", "live population").set(42);
        let h = r.histogram("pss_phase_ns", "phase wall time");
        h.record(1000);
        let json = r.render_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\": \"pss_live_nodes\""));
        assert!(json.contains("\"value\": 42"));
        assert!(json.contains("\"kind\": \"histogram\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"p50\": 1000"));
    }

    #[test]
    fn reset_zeroes_but_keeps_series() {
        let r = Registry::new();
        let c = r.counter("pss_reset_me", "resettable");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.rows().len(), 1);
    }
}
