//! The three metric primitives: counter, gauge, log₂ histogram.
//!
//! Handles are cheap `Arc` clones of shared cells; the registry hands the
//! same cell back for repeated registrations of the same name+labels, so
//! engines constructed many times over a process lifetime (every test,
//! every experiment run) accumulate into one series. All mutation is
//! relaxed atomics — recording threads never contend on a lock and never
//! allocate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pss_stats::{log2_bucket, Log2Histogram, LOG2_BUCKETS};

use crate::enabled;

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not in any registry); mostly for tests.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        // fetch_update would loop; plain fetch_add is fine — counters count
        // events, and 2^64 events do not happen.
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A detached gauge (not in any registry); mostly for tests.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger (a high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; LOG2_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, virtual ticks, sizes). Recording is five relaxed atomic
/// RMWs; quantiles come from [`Histogram::snapshot`], which folds the
/// atomic cells into a [`pss_stats::Log2Histogram`].
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A detached histogram (not in any registry); mostly for tests.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let core = &*self.core;
        core.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy with quantile extraction. Concurrent recording
    /// makes the snapshot only approximately consistent (a racing record
    /// may appear in `count` but not yet in its bucket); totals are taken
    /// from the bucket counts so quantile ranks always add up.
    #[must_use]
    pub fn snapshot(&self) -> Log2Histogram {
        let core = &*self.core;
        let mut out = Log2Histogram::new();
        // record_n would recompute the sum from bucket values; instead
        // rebuild counts exactly and patch the saturating aggregates from
        // the dedicated cells, clamped to the observed extremes.
        let min = core.min.load(Ordering::Relaxed);
        let max = core.max.load(Ordering::Relaxed);
        for bucket in 0..LOG2_BUCKETS {
            let n = core.buckets[bucket].load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let representative = pss_stats::log2_bucket_ceil(bucket).clamp(min.min(max), max);
            out.record_n(representative, n);
        }
        out.set_aggregates(
            core.sum.load(Ordering::Relaxed),
            if out.is_empty() { u64::MAX } else { min },
            max,
        );
        out
    }

    /// Resets every cell to the empty state.
    pub fn reset(&self) {
        let core = &*self.core;
        for b in &core.buckets {
            b.store(0, Ordering::Relaxed);
        }
        core.count.store(0, Ordering::Relaxed);
        core.sum.store(0, Ordering::Relaxed);
        core.min.store(u64::MAX, Ordering::Relaxed);
        core.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.set_max(2);
        assert_eq!(g.get(), 3);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        let h = Histogram::new();
        for v in [5u64, 5, 5, 900, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let snap = h.snapshot();
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.min(), 5);
        assert_eq!(snap.max(), 1_000_000);
        assert_eq!(snap.sum(), 1_000_915);
        assert_eq!(snap.p50(), 7); // bucket [4,7], exact values were 5
        assert_eq!(snap.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_reset_clears_everything() {
        let h = Histogram::new();
        h.record(123);
        h.reset();
        assert_eq!(h.count(), 0);
        let snap = h.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().total(), 40_000);
        assert_eq!(h.snapshot().max(), 39_999);
    }
}
