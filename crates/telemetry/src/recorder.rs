//! The flight recorder: a bounded ring of structured events.
//!
//! Metrics answer "how much / how slow"; the flight recorder answers
//! "what just happened". Every stack appends fixed-size events — phase
//! boundaries, membership operations, gate evaluations, decode errors —
//! to a preallocated ring that keeps the most recent [`FLIGHT_CAPACITY`]
//! of them. When a health gate fails or the process panics, the ring is
//! dumped as JSON: the last few thousand structured steps leading up to
//! the failure, in order.
//!
//! Recording takes a mutex (uncontended in practice: one writer per
//! stack, microsecond hold times) and never allocates — events are plain
//! `Copy` structs written into storage reserved at construction. The
//! counting-allocator test pins that.

use std::fmt::Write as _;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::enabled;

/// Ring capacity of the global recorder: enough for several periods of a
/// sharded run (6 events per cycle) without growing past ~a quarter MB.
pub const FLIGHT_CAPACITY: usize = 4096;

/// What happened. The meaning of an event's `label` and payload fields is
/// fixed per kind; see the variant docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A timed phase began. `label` is `engine/phase` (e.g.
    /// `cycle/initiate`), `a` the cycle or period index, `b` unused.
    PhaseStart,
    /// A timed phase ended. Fields as [`EventKind::PhaseStart`], with `b`
    /// the elapsed nanoseconds.
    PhaseEnd,
    /// A membership operation was applied to a running target. `label` is
    /// the op (`kill`, `join`, `partition_on`, `partition_off`), `a` the
    /// node id (0 for partition ops), `b` the 1-based period.
    MembershipOp,
    /// An experiment health gate was evaluated. `label` is the experiment
    /// name, `a` is 1 for pass / 0 for fail, `b` unused.
    GateEval,
    /// A frame failed to decode in the network runtime. `label` is the
    /// decode stage or frame kind (`header`, `request`, `reply`, `app`),
    /// `a` the source address index if known, `b` the frame length.
    DecodeError,
}

impl EventKind {
    /// Stable lowercase name used in the JSON dump.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseStart => "phase_start",
            EventKind::PhaseEnd => "phase_end",
            EventKind::MembershipOp => "membership_op",
            EventKind::GateEval => "gate_eval",
            EventKind::DecodeError => "decode_error",
        }
    }
}

/// One recorded event. `Copy` and fixed-size by construction so the ring
/// never allocates after start-up.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Monotonic sequence number (total events ever recorded, 1-based).
    pub seq: u64,
    /// Microseconds since the recorder was constructed.
    pub at_micros: u64,
    /// Event kind; fixes the interpretation of the other fields.
    pub kind: EventKind,
    /// Static context string; per-kind meaning (see [`EventKind`]).
    pub label: &'static str,
    /// First payload word (per-kind meaning).
    pub a: u64,
    /// Second payload word (per-kind meaning).
    pub b: u64,
}

struct Ring {
    events: Vec<FlightEvent>,
    /// Next write position once the ring is full.
    head: usize,
    seq: u64,
}

/// Bounded, preallocated ring of [`FlightEvent`]s. Use [`flight()`] for
/// the process-global instance.
pub struct FlightRecorder {
    inner: Mutex<Ring>,
    epoch: Instant,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events. All event
    /// storage is reserved here, up front.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs room for events");
        Self {
            inner: Mutex::new(Ring {
                events: Vec::with_capacity(capacity),
                head: 0,
                seq: 0,
            }),
            epoch: Instant::now(),
            capacity,
        }
    }

    /// Appends an event, evicting the oldest once the ring is full.
    pub fn record(&self, kind: EventKind, label: &'static str, a: u64, b: u64) {
        if !enabled() {
            return;
        }
        let at_micros = self.epoch.elapsed().as_micros() as u64;
        let mut ring = self.inner.lock().expect("flight recorder poisoned");
        ring.seq += 1;
        let event = FlightEvent {
            seq: ring.seq,
            at_micros,
            kind,
            label,
            a,
            b,
        };
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let head = ring.head;
            ring.events[head] = event;
            ring.head = (head + 1) % self.capacity;
        }
    }

    /// Number of events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .events
            .len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").seq
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<FlightEvent> {
        let ring = self.inner.lock().expect("flight recorder poisoned");
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.head..]);
        out.extend_from_slice(&ring.events[..ring.head]);
        out
    }

    /// Empties the ring (sequence numbering continues).
    pub fn clear(&self) {
        let mut ring = self.inner.lock().expect("flight recorder poisoned");
        ring.events.clear();
        ring.head = 0;
    }

    /// The retained events as a JSON document: a header with totals, then
    /// one object per event, oldest first.
    #[must_use]
    pub fn dump_json(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"recorded_total\": {},", self.recorded());
        let _ = writeln!(out, "  \"retained\": {},", events.len());
        let _ = writeln!(out, "  \"events\": [");
        for (i, e) in events.iter().enumerate() {
            let comma = if i + 1 < events.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"seq\": {}, \"at_micros\": {}, \"kind\": \"{}\", \"label\": \"{}\", \"a\": {}, \"b\": {}}}{}",
                e.seq,
                e.at_micros,
                e.kind.name(),
                e.label,
                e.a,
                e.b,
                comma,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`FlightRecorder::dump_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the underlying file-system error.
    pub fn dump_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.dump_json())
    }
}

static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global flight recorder ([`FLIGHT_CAPACITY`] events).
#[must_use]
pub fn flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder::with_capacity(FLIGHT_CAPACITY))
}

/// Path the panic hook and gate-failure handlers dump to: the
/// `PSS_FLIGHT_DUMP` environment variable, or `flight-recorder.json` in
/// the working directory.
#[must_use]
pub fn dump_path() -> std::path::PathBuf {
    std::env::var_os("PSS_FLIGHT_DUMP")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("flight-recorder.json"))
}

/// Installs a panic hook (once; chains the previous hook) that dumps the
/// global flight recorder to [`dump_path()`] and prints the location on
/// stderr. Binaries that want post-mortem trails opt in by calling this
/// at start-up; libraries never install it behind anyone's back.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = dump_path();
            match flight().dump_to_file(&path) {
                Ok(()) => eprintln!("flight recorder dumped to {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_wraps() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..6u64 {
            r.record(EventKind::MembershipOp, "kill", i, 1);
        }
        assert_eq!(r.recorded(), 6);
        assert_eq!(r.len(), 4);
        let events = r.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
        let ids: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
    }

    #[test]
    fn dump_is_json_shaped() {
        let r = FlightRecorder::with_capacity(8);
        r.record(EventKind::PhaseStart, "cycle/initiate", 1, 0);
        r.record(EventKind::PhaseEnd, "cycle/initiate", 1, 12_345);
        r.record(EventKind::GateEval, "churn", 1, 0);
        let json = r.dump_json();
        assert!(json.contains("\"recorded_total\": 3"));
        assert!(json.contains("\"kind\": \"phase_start\""));
        assert!(json.contains("\"label\": \"cycle/initiate\""));
        assert!(json.contains("\"b\": 12345"));
        assert!(json.contains("\"kind\": \"gate_eval\""));
        // Balanced braces / brackets (cheap well-formedness check; the CI
        // smoke job parses a real dump with a real JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn clear_keeps_sequence_numbers() {
        let r = FlightRecorder::with_capacity(4);
        r.record(EventKind::GateEval, "a", 1, 0);
        r.clear();
        assert!(r.is_empty());
        r.record(EventKind::GateEval, "b", 1, 0);
        assert_eq!(r.events()[0].seq, 2);
    }
}
