//! **Extension X4** — ablation of the healer/swapper design space.
//!
//! The paper's conclusion calls for "combining different settings"; the
//! authors' follow-up work parameterizes view selection with H (healer) and
//! S (swapper). This ablation sweeps (H, S) corners and measures the two
//! properties the 2004 paper showed to be in tension:
//!
//! * healing speed after a 50 % failure (head-like behavior, large H),
//! * degree balance of the converged overlay (shuffle-like behavior,
//!   large S).

use pss_core::hs::{HsConfig, HsNode, HsPeerSelection};
use pss_core::NodeDescriptor;
use pss_sim::{BoxedNode, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the H&S ablation.
#[derive(Debug, Clone)]
pub struct HsAblationConfig {
    /// Common scale.
    pub scale: Scale,
    /// `(H, S)` pairs to test; defaults to the corners and midpoint of the
    /// valid triangle `H + S <= c/2`.
    pub corners: Vec<(usize, usize)>,
    /// Fraction killed for the healing measurement.
    pub kill_fraction: f64,
    /// Cycles allowed for healing.
    pub recovery_cycles: u64,
}

impl HsAblationConfig {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        let half = scale.view_size / 2;
        HsAblationConfig {
            scale,
            corners: vec![
                (0, 0),               // blind: random removals only
                (half, 0),            // healer corner
                (0, half),            // swapper (shuffler) corner
                (half / 2, half / 2), // balanced midpoint
            ],
            kill_fraction: 0.5,
            recovery_cycles: (scale.cycles / 3).max(30),
        }
    }
}

/// Measured qualities of one (H, S) point.
#[derive(Debug, Clone, PartialEq)]
pub struct HsPoint {
    /// Healer parameter.
    pub healer: usize,
    /// Swapper parameter.
    pub swapper: usize,
    /// Degree variance of the converged overlay (lower = more balanced).
    pub degree_variance: f64,
    /// Dead links remaining after the recovery window (0 = fully healed).
    pub dead_links_remaining: f64,
    /// First post-failure cycle with zero dead links, if reached.
    pub healed_at: Option<u64>,
    /// Whether the converged overlay was connected.
    pub connected: bool,
}

/// Result of the H&S ablation.
#[derive(Debug, Clone)]
pub struct HsAblationResult {
    /// One row per (H, S) corner.
    pub points: Vec<HsPoint>,
}

impl HsAblationResult {
    /// Renders the ablation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "H",
            "S",
            "degree variance",
            "healed at cycle",
            "dead links left",
            "connected",
        ]);
        for p in &self.points {
            t.row(vec![
                p.healer.to_string(),
                p.swapper.to_string(),
                fmt_f64(p.degree_variance, 1),
                p.healed_at.map_or("never".into(), |c| c.to_string()),
                fmt_f64(p.dead_links_remaining, 0),
                if p.connected { "yes" } else { "NO" }.into(),
            ]);
        }
        t
    }
}

/// Runs the ablation (corners in parallel).
pub fn run(config: &HsAblationConfig) -> HsAblationResult {
    let scale = config.scale;
    let kill_fraction = config.kill_fraction.clamp(0.0, 1.0);
    let recovery = config.recovery_cycles;

    let points = parallel_map(config.corners.clone(), move |(healer, swapper)| {
        let hs = HsConfig::new(scale.view_size, healer, swapper, HsPeerSelection::Rand)
            .expect("corner within the valid triangle");
        let mut sim = Simulation::with_factory(scale.seed ^ 0x45a, move |id, seed| {
            Box::new(HsNode::with_seed(id, hs, seed)) as BoxedNode
        });
        // Random bootstrap: every node knows `c` uniform-random others.
        let mut topo = SmallRng::seed_from_u64(scale.seed ^ 0x45b);
        for _ in 0..scale.nodes {
            sim.add_node([]);
        }
        let node_ids = sim.alive_ids();
        for &id in &node_ids {
            let seeds: Vec<NodeDescriptor> = (0..scale.view_size)
                .map(|_| loop {
                    let pick = node_ids[topo.random_range(0..node_ids.len())];
                    if pick != id {
                        break NodeDescriptor::fresh(pick);
                    }
                })
                .collect();
            // Re-initialize the node's view in place via the factory-made
            // node: Simulation::add_node already initialized empty views,
            // so feed seeds through a one-off init.
            sim.reinit_node(id, seeds);
        }
        sim.run_cycles(scale.cycles);

        let graph = sim.snapshot().undirected();
        let degree_variance = graph.degree_distribution().variance();
        let connected = pss_graph::components::is_connected(&graph);

        sim.kill_random_fraction(kill_fraction);
        let mut healed_at = None;
        for cycle in 1..=recovery {
            sim.run_cycle();
            if sim.dead_link_count() == 0 {
                healed_at = Some(cycle);
                break;
            }
        }
        HsPoint {
            healer,
            swapper,
            degree_variance,
            dead_links_remaining: sim.dead_link_count() as f64,
            healed_at,
            connected,
        }
    });

    HsAblationResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healer_corner_heals_blind_corner_does_not() {
        let scale = Scale {
            nodes: 300,
            cycles: 40,
            view_size: 16,
            seed: 91,
        };
        let config = HsAblationConfig {
            scale,
            corners: vec![(0, 0), (8, 0)],
            kill_fraction: 0.5,
            recovery_cycles: 40,
        };
        let result = run(&config);
        let blind = &result.points[0];
        let healer = &result.points[1];
        assert!(blind.connected && healer.connected);
        assert!(
            healer.healed_at.is_some(),
            "healer corner should fully heal, left {}",
            healer.dead_links_remaining
        );
        assert!(
            healer.dead_links_remaining < blind.dead_links_remaining,
            "healer {} should beat blind {}",
            healer.dead_links_remaining,
            blind.dead_links_remaining
        );
        assert_eq!(result.table().len(), 2);
    }

    #[test]
    fn swapper_corner_balances_degrees() {
        let scale = Scale {
            nodes: 300,
            cycles: 40,
            view_size: 16,
            seed: 92,
        };
        let config = HsAblationConfig {
            scale,
            corners: vec![(0, 0), (0, 8)],
            kill_fraction: 0.0,
            recovery_cycles: 1,
        };
        let result = run(&config);
        let blind = &result.points[0];
        let swapper = &result.points[1];
        assert!(
            swapper.degree_variance <= blind.degree_variance * 1.2,
            "swapper variance {} should not exceed blind {}",
            swapper.degree_variance,
            blind.degree_variance
        );
    }
}
