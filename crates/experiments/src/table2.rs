//! **Table 2** — statistics of the degree of individual nodes over time.
//!
//! Starting from the random topology, 50 nodes are traced for the full run.
//! Reported per protocol: `D_K` (mean degree over the whole overlay in the
//! final cycle), `d̄` (mean over traced nodes of their time-averaged
//! degree) and `√σ` (standard deviation over traced nodes of those time
//! averages). The paper's split: `head` view selection keeps `√σ` small
//! (1.4–2.7), `rand` view selection an order of magnitude larger (10–19).

use pss_core::{NodeId, PolicyTriple};
use pss_sim::observe::{run_observed, DegreeTracer};
use pss_sim::scenario;
use pss_stats::Summary;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Common scale.
    pub scale: Scale,
    /// Number of traced nodes (paper: 50).
    pub traced_nodes: usize,
    /// Protocols (default: the paper's eight, in Table 2's order).
    pub protocols: Vec<PolicyTriple>,
}

impl Table2Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Table2Config {
            scale,
            traced_nodes: 50,
            // Table 2 lists head view selection rows first.
            protocols: vec![
                "(rand,head,push)".parse().expect("valid"),
                "(tail,head,push)".parse().expect("valid"),
                "(rand,head,pushpull)".parse().expect("valid"),
                "(tail,head,pushpull)".parse().expect("valid"),
                "(rand,rand,push)".parse().expect("valid"),
                "(tail,rand,push)".parse().expect("valid"),
                "(rand,rand,pushpull)".parse().expect("valid"),
                "(tail,rand,pushpull)".parse().expect("valid"),
            ],
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStatsRow {
    /// The protocol.
    pub policy: PolicyTriple,
    /// Mean degree over all nodes in the final cycle (`D_K`).
    pub final_mean_degree: f64,
    /// Mean of the traced nodes' time-averaged degrees (`d̄`).
    pub traced_mean: f64,
    /// Standard deviation of the traced nodes' time averages (`√σ`).
    pub traced_std: f64,
}

/// Result of the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// One row per protocol, in input order.
    pub rows: Vec<DegreeStatsRow>,
}

impl Table2Result {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["protocol", "D_K", "dbar", "sqrt(sigma)"]);
        for row in &self.rows {
            t.row(vec![
                row.policy.to_string(),
                fmt_f64(row.final_mean_degree, 3),
                fmt_f64(row.traced_mean, 3),
                fmt_f64(row.traced_std, 3),
            ]);
        }
        t
    }
}

/// Runs the Table 2 experiment (protocols in parallel).
pub fn run(config: &Table2Config) -> Table2Result {
    let scale = config.scale;
    let traced_count = config.traced_nodes.min(scale.nodes);

    let rows = parallel_map(config.protocols.clone(), move |policy| {
        let protocol = scale.protocol(policy);
        let seed = scale.seed ^ 0x7ab1e2;
        let mut sim = scenario::random_overlay(&protocol, scale.nodes, seed);
        // Trace evenly spaced nodes — as good as random for a symmetric
        // random topology, and deterministic.
        let stride = (scale.nodes / traced_count.max(1)).max(1);
        let traced: Vec<NodeId> = (0..traced_count)
            .map(|i| NodeId::new((i * stride) as u64))
            .collect();
        let mut tracer = DegreeTracer::new(traced);
        run_observed(&mut sim, scale.cycles, &mut [&mut tracer]);

        let final_mean_degree = sim.snapshot().undirected().average_degree();
        let time_averages: Summary = tracer
            .all_series()
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.summary().mean())
            .collect();
        DegreeStatsRow {
            policy,
            final_mean_degree,
            traced_mean: time_averages.mean(),
            traced_std: time_averages.sample_std_dev(),
        }
    });

    Table2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_vs_rand_stability_split() {
        let scale = Scale {
            nodes: 400,
            cycles: 60,
            view_size: 15,
            seed: 21,
        };
        let config = Table2Config {
            scale,
            traced_nodes: 30,
            protocols: vec![
                "(rand,head,pushpull)".parse().unwrap(),
                "(rand,rand,pushpull)".parse().unwrap(),
            ],
        };
        let result = run(&config);
        assert_eq!(result.rows.len(), 2);
        let head = &result.rows[0];
        let rand = &result.rows[1];
        // Traced means sit near the overall mean for both.
        assert!((head.traced_mean - head.final_mean_degree).abs() < 5.0);
        // The paper's Table 2 split: rand view selection has much larger
        // variance of per-node time-averaged degrees.
        assert!(
            rand.traced_std > head.traced_std,
            "rand {} should exceed head {}",
            rand.traced_std,
            head.traced_std
        );
        let text = result.table().to_string();
        assert!(text.contains("sqrt(sigma)"));
    }
}
