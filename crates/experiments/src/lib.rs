//! Reproduction harness for every table and figure of the peer sampling
//! paper (Jelasity et al., Middleware 2004), plus extension experiments.
//!
//! Each experiment is a plain function from a configuration to a typed
//! result; the `experiments` binary wraps them in a CLI, and the bench crate
//! calls the same functions at reduced scale. The mapping to the paper:
//!
//! | module       | paper artifact | content |
//! |--------------|----------------|---------|
//! | [`table1`]   | Table 1        | partitioning of push protocols in the growing scenario |
//! | [`fig2`]     | Figure 2       | property dynamics while the overlay grows |
//! | [`fig3`]     | Figure 3       | convergence from lattice and random starts |
//! | [`fig4`]     | Figure 4       | degree distribution evolution (log-log) |
//! | [`table2`]   | Table 2        | degree statistics of traced nodes |
//! | [`fig5`]     | Figure 5       | autocorrelation of a node's degree series |
//! | [`fig6`]     | Figure 6       | connectivity under massive node removal |
//! | [`fig7`]     | Figure 7       | dead-link healing after 50 % node failure |
//! | [`policies`] | Section 4.3    | why `(head,*,*)`, `(*,tail,*)`, `(*,*,pull)` are degenerate |
//! | [`asynchrony`] | extension    | conclusions under the event-driven engine |
//! | [`apps`]     | extension      | broadcast & aggregation vs sampling quality |
//! | [`scaling`]  | extension      | sharded-engine throughput and overlay quality vs shard count |
//! | [`net`]      | extension      | live loopback UDP cluster: wire codec + runtimes end to end |
//! | [`workload`] | extension      | membership-dynamics schedules (churn, catastrophe, flash crowd, partition) cross-engine |
//! | [`adversary`] | extension     | Byzantine attack metrics per honest policy, cross-engine |
//! | [`metrics`]  | extension      | telemetry registry exercised across every stack (phase/RTT histograms, flight recorder) |
//!
//! All experiments are deterministic given their seed and parallelize
//! across protocols/runs with `std::thread::scope`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod apps;
pub mod asynchrony;
pub mod dynamics;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod hs_ablation;
pub mod metrics;
pub mod net;
pub mod policies;
pub mod protocols;
pub mod report;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod workload;

mod parallel;
mod scale;

pub use scale::Scale;
