//! **Table 1** — partitioning of push protocols in the growing overlay.
//!
//! The paper grows the overlay from one node (100 joiners per cycle up to
//! N = 10⁴, each knowing only the initial node) and reports, over 100 runs
//! at cycle 300, how often each push protocol partitioned, and the average
//! number of clusters and largest-cluster size *of the partitioned runs*.
//! Pushpull protocols never partition in this scenario.

use pss_core::PolicyTriple;
use pss_graph::components::connected_components;
use pss_sim::scenario;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, fmt_percent, Table};
use crate::Scale;

/// Configuration for the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Common scale (population, cycles, view size, seed).
    pub scale: Scale,
    /// Independent runs per protocol (the paper uses 100).
    pub runs: usize,
    /// Joiners per cycle; the paper's 100 makes growth end at cycle 100
    /// for N = 10⁴. Defaults keep the same ratio (`nodes / 100`).
    pub per_cycle: usize,
    /// Protocols to test; defaults to all eight of the paper (the four push
    /// rows of Table 1 plus the four pushpull protocols as controls).
    pub protocols: Vec<PolicyTriple>,
}

impl Table1Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Table1Config {
            scale,
            runs: 30,
            per_cycle: (scale.nodes / 100).max(1),
            protocols: PolicyTriple::paper_eight().to_vec(),
        }
    }
}

/// Partitioning statistics of one protocol (one row of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionRow {
    /// The protocol.
    pub policy: PolicyTriple,
    /// Total runs.
    pub runs: usize,
    /// Runs whose cycle-300 overlay was partitioned.
    pub partitioned_runs: usize,
    /// Mean cluster count over the partitioned runs (NaN if none).
    pub avg_clusters: f64,
    /// Mean largest-cluster size over the partitioned runs (NaN if none).
    pub avg_largest: f64,
}

impl PartitionRow {
    /// Fraction of runs that partitioned.
    pub fn partitioned_fraction(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.partitioned_runs as f64 / self.runs as f64
        }
    }
}

/// Result of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One row per protocol, in input order.
    pub rows: Vec<PartitionRow>,
}

impl Table1Result {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "partitioned runs",
            "avg number of clusters",
            "avg largest cluster",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.policy.to_string(),
                fmt_percent(row.partitioned_fraction()),
                fmt_f64(row.avg_clusters, 2),
                fmt_f64(row.avg_largest, 2),
            ]);
        }
        t
    }
}

/// Runs the experiment: every (protocol, run) pair is an independent
/// growing-overlay simulation measured at its final cycle.
pub fn run(config: &Table1Config) -> Table1Result {
    let jobs: Vec<(usize, PolicyTriple, u64)> = config
        .protocols
        .iter()
        .enumerate()
        .flat_map(|(pi, &policy)| {
            (0..config.runs).map(move |r| (pi, policy, (pi * 10_007 + r) as u64))
        })
        .collect();
    let scale = config.scale;
    let per_cycle = config.per_cycle;

    let outcomes = parallel_map(jobs, move |(pi, policy, run_idx)| {
        let protocol = scale.protocol(policy);
        let mut sim =
            scenario::growing_overlay(&protocol, scale.nodes, per_cycle, scale.run_seed(run_idx));
        sim.run_cycles(scale.cycles);
        let graph = sim.snapshot().undirected();
        let report = connected_components(&graph);
        (pi, report.count(), report.largest())
    });

    let rows = config
        .protocols
        .iter()
        .enumerate()
        .map(|(pi, &policy)| {
            let mine: Vec<&(usize, usize, usize)> =
                outcomes.iter().filter(|(p, _, _)| *p == pi).collect();
            let partitioned: Vec<&&(usize, usize, usize)> = mine
                .iter()
                .filter(|(_, clusters, _)| *clusters > 1)
                .collect();
            let (avg_clusters, avg_largest) = if partitioned.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                let n = partitioned.len() as f64;
                (
                    partitioned.iter().map(|(_, c, _)| *c as f64).sum::<f64>() / n,
                    partitioned.iter().map(|(_, _, l)| *l as f64).sum::<f64>() / n,
                )
            };
            PartitionRow {
                policy,
                runs: mine.len(),
                partitioned_runs: partitioned.len(),
                avg_clusters,
                avg_largest,
            }
        })
        .collect();

    Table1Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(runs: usize) -> Table1Config {
        let mut scale = Scale::tiny();
        scale.cycles = 40;
        let mut c = Table1Config::at_scale(scale);
        c.runs = runs;
        c
    }

    #[test]
    fn pushpull_protocols_never_partition_at_tiny_scale() {
        let mut config = tiny_config(3);
        config.protocols = vec![
            PolicyTriple::newscast(),
            "(tail,head,pushpull)".parse().unwrap(),
        ];
        let result = run(&config);
        for row in &result.rows {
            assert_eq!(row.partitioned_runs, 0, "{} partitioned", row.policy);
            assert!(row.avg_clusters.is_nan());
        }
    }

    #[test]
    fn rows_follow_input_order_and_count_runs() {
        let mut config = tiny_config(2);
        config.protocols = vec![PolicyTriple::lpbcast(), PolicyTriple::newscast()];
        let result = run(&config);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].policy, PolicyTriple::lpbcast());
        assert_eq!(result.rows[0].runs, 2);
    }

    #[test]
    fn table_renders_percentages() {
        let result = Table1Result {
            rows: vec![PartitionRow {
                policy: PolicyTriple::lpbcast(),
                runs: 100,
                partitioned_runs: 33,
                avg_clusters: 2.27,
                avg_largest: 9572.18,
            }],
        };
        let text = result.table().to_string();
        assert!(text.contains("33%"));
        assert!(text.contains("2.27"));
        assert!(text.contains("9572.18"));
    }

    #[test]
    fn partitioned_fraction_handles_zero_runs() {
        let row = PartitionRow {
            policy: PolicyTriple::lpbcast(),
            runs: 0,
            partitioned_runs: 0,
            avg_clusters: f64::NAN,
            avg_largest: f64::NAN,
        };
        assert_eq!(row.partitioned_fraction(), 0.0);
    }
}
