//! **Extension X6** — membership-dynamics workloads, cross-engine.
//!
//! Runs one declarative [`Workload`] schedule (churn phases, catastrophic
//! kills, flash crowds, partition/heal — see the `pss_sim::workload`
//! grammar) on **both** simulation stacks — the sharded cycle engine (the
//! paper's model) and the sharded event engine (jitter + latency + loss) —
//! through the same compiled per-period operations, and tabulates the two
//! recovery trajectories side by side: live population, full-view
//! fraction, in-degree mean, dead-link fraction, largest live component.
//!
//! This is the CLI face of the conformance suite: the same schedules that
//! `tests/workload_conformance.rs` and the `pss-net` loopback harness pin
//! are explorable at any scale with `--schedule`.

use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::workload::{run_workload, PeriodRecord, Workload};
use pss_sim::{EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation};

use crate::report::{fmt_f64, fmt_percent, Table};
use crate::Scale;

/// The default schedule: the conformance suite's headline — converge,
/// kill half, churn at 1%/period through recovery.
pub const DEFAULT_SCHEDULE: &str = "quiet:10,kill:0.5,churn:0.01x20";

/// Configuration of a cross-engine workload run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Population, view size and seed (`cycles` is ignored — the schedule
    /// fixes the period count).
    pub scale: Scale,
    /// The schedule string ([`pss_sim::workload`] grammar).
    pub schedule: String,
    /// Shard count for both engines.
    pub shards: usize,
    /// Worker-thread override (results are worker-invariant).
    pub workers: Option<usize>,
}

impl WorkloadConfig {
    /// Defaults at the given scale: the acceptance schedule, 2 shards.
    pub fn at_scale(scale: Scale) -> Self {
        WorkloadConfig {
            scale,
            schedule: DEFAULT_SCHEDULE.to_owned(),
            shards: 2,
            workers: None,
        }
    }
}

/// The two per-period trajectories of one schedule.
#[derive(Debug)]
pub struct WorkloadResult {
    /// The parsed schedule.
    pub workload: Workload,
    /// Cycle-engine records.
    pub cycle: Vec<PeriodRecord>,
    /// Event-engine records.
    pub event: Vec<PeriodRecord>,
    /// Population the schedule was compiled for.
    pub nodes: usize,
}

impl WorkloadResult {
    /// Side-by-side per-period table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "period",
            "live",
            "cyc full",
            "cyc in-deg",
            "cyc dead",
            "evt full",
            "evt in-deg",
            "evt dead",
            "largest comp",
        ]);
        for (c, e) in self.cycle.iter().zip(self.event.iter()) {
            table.row(vec![
                format!("{}{}", c.period, if c.partitioned { "*" } else { "" }),
                c.live.to_string(),
                fmt_percent(c.full_fraction()),
                fmt_f64(c.in_degree_mean, 2),
                fmt_percent(c.dead_link_fraction()),
                fmt_percent(e.full_fraction()),
                fmt_f64(e.in_degree_mean, 2),
                fmt_percent(e.dead_link_fraction()),
                fmt_percent(e.component_fraction()),
            ]);
        }
        table
    }

    /// True when both engines end healthy: largest component ≥ 95% of the
    /// live population and dead links ≤ 10% of view entries.
    pub fn healthy(&self) -> bool {
        [self.cycle.last(), self.event.last()]
            .into_iter()
            .flatten()
            .all(|r| r.component_fraction() >= 0.95 && r.dead_link_fraction() <= 0.10)
    }
}

/// Runs the schedule on both engines.
///
/// # Errors
///
/// Returns the schedule-parse error text verbatim.
pub fn run(config: &WorkloadConfig) -> Result<WorkloadResult, String> {
    let workload =
        Workload::parse(&config.schedule, config.scale.seed).map_err(|e| e.to_string())?;
    let compiled = workload.compile(config.scale.nodes);
    let c = config.scale.view_size;
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), c).map_err(|e| e.to_string())?;
    let seeds = |i: u64| -> Vec<NodeDescriptor> {
        if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        }
    };

    let mut cycle = ShardedSimulation::new(protocol.clone(), config.scale.seed, config.shards);
    for i in 0..config.scale.nodes as u64 {
        cycle.add_node(seeds(i));
    }
    if let Some(w) = config.workers {
        cycle.set_workers(w);
    }
    let cycle_records = run_workload(&mut cycle, &compiled, c);

    let event_config = EventConfig {
        period: 1000,
        jitter: 200,
        latency: LatencyModel::Uniform { min: 10, max: 200 },
        loss_probability: 0.01,
    };
    let mut event =
        ShardedEventSimulation::new(protocol, event_config, config.scale.seed, config.shards)
            .map_err(|e| e.to_string())?;
    for i in 0..config.scale.nodes as u64 {
        event.add_node(seeds(i));
    }
    if let Some(w) = config.workers {
        event.set_workers(w);
    }
    let event_records = run_workload(&mut event, &compiled, c);

    Ok(WorkloadResult {
        workload,
        cycle: cycle_records,
        event: event_records,
        nodes: config.scale.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_runs_both_engines() {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        scale.view_size = 12;
        let mut config = WorkloadConfig::at_scale(scale);
        config.schedule = "quiet:6,kill:0.5,churn:0.02x10".into();
        let result = run(&config).expect("valid schedule");
        assert_eq!(result.cycle.len(), 16);
        assert_eq!(result.event.len(), 16);
        // Identical compiled membership on both engines.
        for (c, e) in result.cycle.iter().zip(result.event.iter()) {
            assert_eq!((c.live, c.killed, c.joined), (e.live, e.killed, e.joined));
        }
        assert!(result.healthy(), "{result:?}");
        assert_eq!(result.table().len(), 16);
    }

    #[test]
    fn bad_schedule_is_reported() {
        let mut config = WorkloadConfig::at_scale(Scale::tiny());
        config.schedule = "bogus:1".into();
        let err = run(&config).unwrap_err();
        assert!(err.contains("bogus"));
    }
}
