//! **Extension X6** — membership-dynamics workloads, cross-engine.
//!
//! Runs one declarative [`Workload`] schedule (churn phases, catastrophic
//! kills, flash crowds, partition/heal — see the `pss_sim::workload`
//! grammar) on **both** simulation stacks — the sharded cycle engine (the
//! paper's model) and the sharded event engine (jitter + latency + loss) —
//! through the same compiled per-period operations, and tabulates the two
//! recovery trajectories side by side: live population, full-view
//! fraction, in-degree mean, dead-link fraction, largest live component.
//!
//! The run covers one or both **freshness modes** ([`FreshnessChoice`]):
//! hop-count age (the repo's historic default) and the paper's Newscast
//! timestamp age. Under lossy partitions the two modes diverge — hop-count
//! inflates trickle-delivered cross-partition descriptors one hop per
//! transfer until view selection evicts them, timestamp age is owner-clock
//! and survives relaying — so `--freshness both` on a partition schedule
//! gates on the *ordering* (timestamp end-component ≥ hop-count's) instead
//! of demanding that the hop-count overlay heal.
//!
//! [`matrix`] systematizes this into the failure-physics scenario matrix:
//! policy × freshness × failure family (churn, catastrophe, thundering
//! herd, lossy partition), one row per cell, gated on every non-partition
//! cell staying healthy and on Newscast timestamp healing the lossy long
//! partition that hop-count leaves split.
//!
//! This is the CLI face of the conformance suite: the same schedules that
//! `tests/workload_conformance.rs` and the `pss-net` loopback harness pin
//! are explorable at any scale with `--schedule`.

use pss_core::{Freshness, NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::workload::{run_workload, PeriodRecord, PhaseSpec, Workload};
use pss_sim::{EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation};

use crate::report::{fmt_f64, fmt_percent, Table};
use crate::Scale;

/// The default schedule: the conformance suite's headline — converge,
/// kill half, churn at 1%/period through recovery.
pub const DEFAULT_SCHEDULE: &str = "quiet:10,kill:0.5,churn:0.01x20";

/// Which freshness modes a workload run covers (`--freshness`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreshnessChoice {
    /// Hop-count transfer age only (the historic default).
    #[default]
    Hop,
    /// Timestamp (owner-clock) age only.
    Timestamp,
    /// Both modes, back to back, on identical compiled schedules.
    Both,
}

impl FreshnessChoice {
    /// Parses the `--freshness` flag value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hop" | "hopcount" => Ok(FreshnessChoice::Hop),
            "timestamp" | "ts" => Ok(FreshnessChoice::Timestamp),
            "both" => Ok(FreshnessChoice::Both),
            other => Err(format!(
                "unknown freshness `{other}` (expected hop, timestamp or both)"
            )),
        }
    }

    /// The concrete modes to run, in run order.
    pub fn modes(self) -> &'static [Freshness] {
        match self {
            FreshnessChoice::Hop => &[Freshness::HopCount],
            FreshnessChoice::Timestamp => &[Freshness::Timestamp],
            FreshnessChoice::Both => &[Freshness::HopCount, Freshness::Timestamp],
        }
    }
}

/// Short table/CSV label for a freshness mode.
fn mode_slug(freshness: Freshness) -> &'static str {
    match freshness {
        Freshness::HopCount => "hop",
        Freshness::Timestamp => "timestamp",
    }
}

/// Configuration of a cross-engine workload run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Population, view size and seed (`cycles` is ignored — the schedule
    /// fixes the period count).
    pub scale: Scale,
    /// The schedule string ([`pss_sim::workload`] grammar).
    pub schedule: String,
    /// Shard count for both engines.
    pub shards: usize,
    /// Worker-thread override (results are worker-invariant).
    pub workers: Option<usize>,
    /// Freshness mode(s) to run.
    pub freshness: FreshnessChoice,
}

impl WorkloadConfig {
    /// Defaults at the given scale: the acceptance schedule, 2 shards,
    /// hop-count freshness.
    pub fn at_scale(scale: Scale) -> Self {
        WorkloadConfig {
            scale,
            schedule: DEFAULT_SCHEDULE.to_owned(),
            shards: 2,
            workers: None,
            freshness: FreshnessChoice::default(),
        }
    }
}

/// The two per-period trajectories of one schedule under one freshness
/// mode.
#[derive(Debug)]
pub struct WorkloadResult {
    /// The parsed schedule.
    pub workload: Workload,
    /// The freshness mode this result ran under.
    pub freshness: Freshness,
    /// Cycle-engine records.
    pub cycle: Vec<PeriodRecord>,
    /// Event-engine records.
    pub event: Vec<PeriodRecord>,
    /// Population the schedule was compiled for.
    pub nodes: usize,
}

impl WorkloadResult {
    /// Side-by-side per-period table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "period",
            "live",
            "cyc full",
            "cyc in-deg",
            "cyc dead",
            "evt full",
            "evt in-deg",
            "evt dead",
            "largest comp",
        ]);
        for (c, e) in self.cycle.iter().zip(self.event.iter()) {
            table.row(vec![
                format!("{}{}", c.period, if c.partitioned { "*" } else { "" }),
                c.live.to_string(),
                fmt_percent(c.full_fraction()),
                fmt_f64(c.in_degree_mean, 2),
                fmt_percent(c.dead_link_fraction()),
                fmt_percent(e.full_fraction()),
                fmt_f64(e.in_degree_mean, 2),
                fmt_percent(e.dead_link_fraction()),
                fmt_percent(e.component_fraction()),
            ]);
        }
        table
    }

    /// CSV/emit label: `workload` for hop-count (historic name),
    /// `workload_timestamp` for timestamp mode.
    pub fn emit_name(&self) -> &'static str {
        match self.freshness {
            Freshness::HopCount => "workload",
            Freshness::Timestamp => "workload_timestamp",
        }
    }

    /// True when both engines end healthy: largest component ≥ 95% of the
    /// live population and dead links ≤ 10% of view entries.
    pub fn healthy(&self) -> bool {
        [self.cycle.last(), self.event.last()]
            .into_iter()
            .flatten()
            .all(|r| r.component_fraction() >= 0.95 && r.dead_link_fraction() <= 0.10)
    }

    /// Worst end-of-run largest-component fraction across the two engines.
    fn end_component(&self) -> f64 {
        [self.cycle.last(), self.event.last()]
            .into_iter()
            .flatten()
            .map(|r| r.component_fraction())
            .fold(1.0, f64::min)
    }

    /// Worst end-of-run dead-link fraction across the two engines.
    fn end_dead(&self) -> f64 {
        [self.cycle.last(), self.event.last()]
            .into_iter()
            .flatten()
            .map(|r| r.dead_link_fraction())
            .fold(0.0, f64::max)
    }
}

/// All freshness modes of one schedule, plus the health verdict inputs.
#[derive(Debug)]
pub struct WorkloadRun {
    /// One result per requested mode, in [`FreshnessChoice::modes`] order.
    pub results: Vec<WorkloadResult>,
    /// True when the schedule contains a partition phase — the regime
    /// where the freshness modes are *expected* to diverge.
    pub partitioned: bool,
}

impl WorkloadRun {
    /// The health gate across modes.
    ///
    /// A single-mode run keeps the historic full health gate
    /// ([`WorkloadResult::healthy`]: one component *and* dead links
    /// ≤ 10%). A `--freshness both` run gates each mode on connectivity
    /// only — schedules that end on an instantaneous kill legitimately
    /// leave fresh dead entries behind — with two exceptions on partition
    /// schedules: the hop-count side is exempt entirely (leaving the
    /// overlay split is its documented failure mode, not a harness bug),
    /// and the timestamp side must *fully* heal, plus satisfy the
    /// freshness *ordering* — on each engine its end component must be at
    /// least hop-count's.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated gate.
    pub fn verdict(&self) -> Result<(), String> {
        let both = self.results.len() == 2;
        for r in &self.results {
            if self.partitioned && both && r.freshness == Freshness::HopCount {
                continue;
            }
            let ok = if both && !(self.partitioned && r.freshness == Freshness::Timestamp) {
                r.end_component() >= 0.95
            } else {
                r.healthy()
            };
            if !ok {
                return Err(format!(
                    "{} mode left an unhealthy overlay \
                     (end component {:.2}, dead links {:.2})",
                    mode_slug(r.freshness),
                    r.end_component(),
                    r.end_dead()
                ));
            }
        }
        if self.partitioned && both {
            let hop = &self.results[0];
            let ts = &self.results[1];
            for (engine, h, t) in [
                ("cycle", hop.cycle.last(), ts.cycle.last()),
                ("event", hop.event.last(), ts.event.last()),
            ] {
                let (Some(h), Some(t)) = (h, t) else { continue };
                if t.component_fraction() + 1e-9 < h.component_fraction() {
                    return Err(format!(
                        "freshness ordering violated on the {engine} engine: \
                         timestamp ended at component {:.2} < hop-count {:.2}",
                        t.component_fraction(),
                        h.component_fraction()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runs the schedule on both engines under the configured freshness
/// mode(s).
///
/// # Errors
///
/// Returns the schedule-parse error text verbatim.
pub fn run(config: &WorkloadConfig) -> Result<WorkloadRun, String> {
    let workload =
        Workload::parse(&config.schedule, config.scale.seed).map_err(|e| e.to_string())?;
    let partitioned = workload
        .phases()
        .iter()
        .any(|p| matches!(p, PhaseSpec::Partition { .. }));
    let mut results = Vec::new();
    for &freshness in config.freshness.modes() {
        results.push(run_mode(config, &workload, freshness)?);
    }
    Ok(WorkloadRun {
        results,
        partitioned,
    })
}

/// Runs one freshness mode of the schedule on both engines.
fn run_mode(
    config: &WorkloadConfig,
    workload: &Workload,
    freshness: Freshness,
) -> Result<WorkloadResult, String> {
    let compiled = workload.compile(config.scale.nodes);
    let c = config.scale.view_size;
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), c)
        .map_err(|e| e.to_string())?
        .with_freshness(freshness);
    let seeds = |i: u64| -> Vec<NodeDescriptor> {
        if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        }
    };

    let mut cycle = ShardedSimulation::new(protocol.clone(), config.scale.seed, config.shards);
    for i in 0..config.scale.nodes as u64 {
        cycle.add_node(seeds(i));
    }
    if let Some(w) = config.workers {
        cycle.set_workers(w);
    }
    let cycle_records = run_workload(&mut cycle, &compiled, c);

    let event_config = EventConfig {
        period: 1000,
        jitter: 200,
        latency: LatencyModel::Uniform { min: 10, max: 200 },
        loss_probability: 0.01,
    };
    let mut event =
        ShardedEventSimulation::new(protocol, event_config, config.scale.seed, config.shards)
            .map_err(|e| e.to_string())?;
    for i in 0..config.scale.nodes as u64 {
        event.add_node(seeds(i));
    }
    if let Some(w) = config.workers {
        event.set_workers(w);
    }
    let event_records = run_workload(&mut event, &compiled, c);

    Ok(WorkloadResult {
        workload: workload.clone(),
        freshness,
        cycle: cycle_records,
        event: event_records,
        nodes: config.scale.nodes,
    })
}

/// Configuration of the failure-physics scenario matrix.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Population, view size and engine seed.
    pub scale: Scale,
    /// Shard count for both engines.
    pub shards: usize,
    /// Worker-thread override (results are worker-invariant).
    pub workers: Option<usize>,
}

impl MatrixConfig {
    /// Defaults at the given scale, 2 shards.
    pub fn at_scale(scale: Scale) -> Self {
        MatrixConfig {
            scale,
            shards: 2,
            workers: None,
        }
    }
}

/// One (failure family × policy × freshness) cell of the matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// Failure-family label (`churn`, `catastrophe`, `herd`, `partition`).
    pub family: &'static str,
    /// The gossip policy under test.
    pub policy: PolicyTriple,
    /// The freshness mode under test.
    pub freshness: Freshness,
    /// End-of-run cycle-engine record.
    pub cycle_end: PeriodRecord,
    /// End-of-run event-engine record.
    pub event_end: PeriodRecord,
}

impl MatrixCell {
    /// Worst end-of-run largest-component fraction across the engines.
    pub fn end_component(&self) -> f64 {
        self.cycle_end
            .component_fraction()
            .min(self.event_end.component_fraction())
    }

    /// Worst end-of-run dead-link fraction across the engines.
    pub fn end_dead(&self) -> f64 {
        self.cycle_end
            .dead_link_fraction()
            .max(self.event_end.dead_link_fraction())
    }
}

/// The full scenario matrix: one cell per (family, policy, freshness).
#[derive(Debug)]
pub struct MatrixResult {
    /// All cells, grouped by family then policy then freshness.
    pub cells: Vec<MatrixCell>,
    /// Population every schedule was compiled for.
    pub nodes: usize,
}

impl MatrixResult {
    /// One row per cell: end-of-run state on both engines.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "family",
            "policy",
            "freshness",
            "live",
            "cyc comp",
            "cyc dead",
            "evt comp",
            "evt dead",
        ]);
        for cell in &self.cells {
            table.row(vec![
                cell.family.to_owned(),
                cell.policy.to_string(),
                mode_slug(cell.freshness).to_owned(),
                cell.cycle_end.live.to_string(),
                fmt_percent(cell.cycle_end.component_fraction()),
                fmt_percent(cell.cycle_end.dead_link_fraction()),
                fmt_percent(cell.event_end.component_fraction()),
                fmt_percent(cell.event_end.dead_link_fraction()),
            ]);
        }
        table
    }

    /// The matrix gate.
    ///
    /// Every non-partition cell must keep one connected component
    /// (≥ 95% of the live population) in both modes — churn, catastrophe
    /// and thundering-herd recovery must not depend on the freshness
    /// dimension. The dead-link bound (≤ 10%) applies only to Newscast
    /// cells: head view selection is the paper's self-healing mechanism,
    /// and the `(rand,rand,pushpull)` control column retains stale
    /// entries by design. The partition family is the demonstration:
    /// Newscast under timestamp freshness must re-merge (component
    /// ≥ 98%, dead links ≤ 6%) while hop-count stays split below it —
    /// the marooning defect this axis fixes. The control column heals in
    /// both modes there (random view selection never age-evicts the
    /// surviving cross-group entries), so it falls under the component
    /// gate like any other cell.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated gate.
    pub fn verdict(&self) -> Result<(), String> {
        for cell in &self.cells {
            let label = format!(
                "{} × {} × {}",
                cell.family,
                cell.policy,
                mode_slug(cell.freshness)
            );
            let is_newscast = cell.policy == PolicyTriple::newscast();
            if cell.family != "partition" || !is_newscast {
                if cell.end_component() < 0.95 {
                    return Err(format!(
                        "{label} ended split: component {:.2}",
                        cell.end_component()
                    ));
                }
                if is_newscast && cell.end_dead() > 0.10 {
                    return Err(format!(
                        "{label} failed to self-heal: dead {:.2}",
                        cell.end_dead()
                    ));
                }
            } else {
                match cell.freshness {
                    Freshness::Timestamp => {
                        if cell.end_component() < 0.98 || cell.end_dead() > 0.06 {
                            return Err(format!(
                                "{label} failed to re-merge: component {:.2}, dead {:.2}",
                                cell.end_component(),
                                cell.end_dead()
                            ));
                        }
                    }
                    Freshness::HopCount => {
                        let ts = self
                            .cells
                            .iter()
                            .find(|c| {
                                c.family == "partition"
                                    && c.policy == cell.policy
                                    && c.freshness == Freshness::Timestamp
                            })
                            .ok_or("partition family missing its timestamp cell")?;
                        if cell.end_component() + 1e-9 >= ts.end_component() {
                            return Err(format!(
                                "{label} is not split below the timestamp cell: \
                                 hop component {:.2} ≥ timestamp {:.2}",
                                cell.end_component(),
                                ts.end_component()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs the scenario matrix: failure family × policy × freshness, each
/// cell a full cross-engine workload run.
///
/// The churn, catastrophe and herd families run at the configured scale.
/// The partition family replays the conformance suite's pinned regime
/// **verbatim** — 200 nodes, view size 15, engine seed 7, workload seed
/// 9, 2 shards — independent of the scale knobs: healing a loss-0.65
/// partition is percolation-marginal (20/40 timestamp heals vs 4/40
/// hop-count across a 20-seed sweep), so only the pinned point is a
/// deterministic differential and a gate anywhere else would flip with
/// (N, c, seed). All cells are bit-deterministic at any worker count, so
/// the gate is reproducible.
///
/// # Errors
///
/// Propagates schedule-parse or engine-construction errors.
pub fn matrix(config: &MatrixConfig) -> Result<MatrixResult, String> {
    let n = config.scale.nodes;
    let herd = (n / 2).max(1);
    let herd_schedule = format!("quiet:6,flash:{herd}[herd],quiet:12");
    // (family, schedule, workload seed, population, view size,
    //  engine seed, shards)
    type Family<'a> = (&'static str, &'a str, u64, usize, usize, u64, usize);
    let families: [Family; 4] = [
        (
            "churn",
            "quiet:6,(churn:0.02x5)x3",
            config.scale.seed,
            n,
            config.scale.view_size,
            config.scale.seed,
            config.shards,
        ),
        // Churned recovery after the kill: the paper's self-healing result
        // needs membership turnover to flush the dead half from views.
        (
            "catastrophe",
            "quiet:6,kill:0.5,churn:0.01x12",
            config.scale.seed,
            n,
            config.scale.view_size,
            config.scale.seed,
            config.shards,
        ),
        (
            "herd",
            &herd_schedule,
            config.scale.seed,
            n,
            config.scale.view_size,
            config.scale.seed,
            config.shards,
        ),
        // The pinned demonstration regime (see the function docs).
        (
            "partition",
            "quiet:6,part:2x20@0.65,quiet:15",
            9,
            200,
            15,
            7,
            2,
        ),
    ];
    let policies = [
        PolicyTriple::newscast(),
        "(rand,rand,pushpull)"
            .parse::<PolicyTriple>()
            .map_err(|e| e.to_string())?,
    ];

    let mut cells = Vec::new();
    for (family, schedule, wl_seed, n, c, engine_seed, shards) in families {
        let workload = Workload::parse(schedule, wl_seed).map_err(|e| e.to_string())?;
        let compiled = workload.compile(n);
        for policy in policies {
            for freshness in [Freshness::HopCount, Freshness::Timestamp] {
                let protocol = ProtocolConfig::new(policy, c)
                    .map_err(|e| e.to_string())?
                    .with_freshness(freshness);
                let seeds = |i: u64| -> Vec<NodeDescriptor> {
                    if i == 0 {
                        Vec::new()
                    } else {
                        vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
                    }
                };

                let mut cycle = ShardedSimulation::new(protocol.clone(), engine_seed, shards);
                for i in 0..n as u64 {
                    cycle.add_node(seeds(i));
                }
                if let Some(w) = config.workers {
                    cycle.set_workers(w);
                }
                let cycle_records = run_workload(&mut cycle, &compiled, c);

                let event_config = EventConfig {
                    period: 1000,
                    jitter: 200,
                    latency: LatencyModel::Uniform { min: 10, max: 200 },
                    loss_probability: 0.01,
                };
                let mut event =
                    ShardedEventSimulation::new(protocol, event_config, engine_seed, shards)
                        .map_err(|e| e.to_string())?;
                for i in 0..n as u64 {
                    event.add_node(seeds(i));
                }
                if let Some(w) = config.workers {
                    event.set_workers(w);
                }
                let event_records = run_workload(&mut event, &compiled, c);

                cells.push(MatrixCell {
                    family,
                    policy,
                    freshness,
                    cycle_end: cycle_records.last().cloned().ok_or("empty schedule")?,
                    event_end: event_records.last().cloned().ok_or("empty schedule")?,
                });
            }
        }
    }
    Ok(MatrixResult { cells, nodes: n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_runs_both_engines() {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        scale.view_size = 12;
        let mut config = WorkloadConfig::at_scale(scale);
        config.schedule = "quiet:6,kill:0.5,churn:0.02x10".into();
        let run = run(&config).expect("valid schedule");
        assert!(!run.partitioned);
        assert_eq!(run.results.len(), 1);
        let result = &run.results[0];
        assert_eq!(result.freshness, Freshness::HopCount);
        assert_eq!(result.cycle.len(), 16);
        assert_eq!(result.event.len(), 16);
        // Identical compiled membership on both engines.
        for (c, e) in result.cycle.iter().zip(result.event.iter()) {
            assert_eq!((c.live, c.killed, c.joined), (e.live, e.killed, e.joined));
        }
        assert!(result.healthy(), "{result:?}");
        assert_eq!(result.table().len(), 16);
        run.verdict().expect("healthy run passes the gate");
    }

    #[test]
    fn both_modes_run_and_gate_on_ordering() {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        scale.view_size = 12;
        let mut config = WorkloadConfig::at_scale(scale);
        config.schedule = "quiet:6,(churn:0.02x3)x2".into();
        config.freshness = FreshnessChoice::Both;
        let run = run(&config).expect("valid schedule");
        assert_eq!(run.results.len(), 2);
        assert_eq!(run.results[0].freshness, Freshness::HopCount);
        assert_eq!(run.results[1].freshness, Freshness::Timestamp);
        assert_eq!(run.results[0].emit_name(), "workload");
        assert_eq!(run.results[1].emit_name(), "workload_timestamp");
        run.verdict().expect("both modes healthy under plain churn");
    }

    #[test]
    fn freshness_flag_parses() {
        assert_eq!(FreshnessChoice::parse("hop"), Ok(FreshnessChoice::Hop));
        assert_eq!(FreshnessChoice::parse("ts"), Ok(FreshnessChoice::Timestamp));
        assert_eq!(FreshnessChoice::parse("both"), Ok(FreshnessChoice::Both));
        assert!(FreshnessChoice::parse("stale").is_err());
    }

    #[test]
    fn bad_schedule_is_reported() {
        let mut config = WorkloadConfig::at_scale(Scale::tiny());
        config.schedule = "bogus:1".into();
        let err = run(&config).unwrap_err();
        assert!(err.contains("bogus"));
    }
}
