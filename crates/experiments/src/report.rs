//! Plain-text tables and CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple fixed-width text table, printed like the paper's tables.
///
/// # Examples
///
/// ```
/// use pss_experiments::report::Table;
///
/// let mut t = Table::new(vec!["protocol", "partitioned"]);
/// t.row(vec!["(rand,head,push)".into(), "100%".into()]);
/// let text = t.to_string();
/// assert!(text.contains("protocol"));
/// assert!(text.contains("(rand,head,push)"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (headers + rows, comma-separated, quoted as needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places, rendering NaN as `-`.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:.digits$}")
    }
}

/// Formats a fraction as a percentage with no decimals (e.g. `0.33` → `33%`).
pub fn fmt_percent(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into()]); // padded
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["p", "v"]);
        t.row(vec!["(rand,head,push)".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"(rand,head,push)\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_written_to_disk() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("pss_report_test");
        let path = dir.join("nested").join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_percent(0.335), "34%");
        assert_eq!(fmt_percent(1.0), "100%");
    }
}
