//! **Extension X8** — the telemetry registry, end to end.
//!
//! Every stack in this workspace records into the global
//! [`pss_telemetry`] registry: the sharded cycle engine and the sharded
//! event engine time their phases and shard imbalance, the workload
//! driver stamps per-period wall time and membership ops, the UDP
//! runtime histograms exchange RTTs, timer-wheel lag and per-frame-kind
//! decode latency, the cluster harness times periods, and the
//! application layer times its rounds. This experiment exercises all of
//! them in one deterministic pass — a churned workload on both
//! simulation engines, a broadcast/aggregation run on top, and a tiny
//! loopback UDP cluster — then reports the registry: one row per metric
//! series with count, p50/p99 and max from the log2 histograms, plus
//! the full Prometheus text exposition.
//!
//! The health gate checks that every required metric family is present
//! and nonzero — the CI `obs-smoke` job scrapes exactly this. Telemetry
//! never feeds back into protocol state: the pinned determinism digests
//! hold with the registry recording (see `ROADMAP.md`).

use pss_telemetry::MetricRow;

use crate::report::Table;
use crate::Scale;
use crate::{net, protocols, workload};

/// Metric families the cross-stack run must populate (the `obs-smoke`
/// assertion list). Scalar families must be nonzero; histogram families
/// must have observations.
pub const REQUIRED_FAMILIES: &[&str] = &[
    "pss_phase_ns",
    "pss_cycles_total",
    "pss_shard_work_ns",
    "pss_workload_period_ns",
    "pss_workload_ops_total",
    "pss_app_round_ns",
    "pss_net_rtt_ticks",
    "pss_net_decode_ns",
    "pss_cluster_period_ms",
];

/// Configuration of the telemetry exercise.
#[derive(Debug, Clone)]
pub struct MetricsConfig {
    /// Population and seed (nodes are capped — this run measures the
    /// telemetry plumbing, not the protocol at scale).
    pub scale: Scale,
    /// Shard count for both simulation engines.
    pub shards: usize,
    /// Worker-thread override (results are worker-invariant).
    pub workers: Option<usize>,
}

impl MetricsConfig {
    /// Defaults at the given scale: nodes capped at 600, 2 shards.
    pub fn at_scale(scale: Scale) -> Self {
        let mut scale = scale;
        scale.nodes = scale.nodes.clamp(64, 600);
        MetricsConfig {
            scale,
            shards: 2,
            workers: None,
        }
    }
}

/// Result of the telemetry exercise: the registry contents after the
/// cross-stack run.
#[derive(Debug)]
pub struct MetricsResult {
    /// One row per registered metric series.
    pub rows: Vec<MetricRow>,
    /// Prometheus text exposition of the whole registry.
    pub prometheus: String,
    /// JSON exposition of the whole registry.
    pub json: String,
    /// Events currently buffered in the flight recorder.
    pub flight_len: usize,
    /// Total events ever recorded by the flight recorder (≥ `flight_len`).
    pub flight_recorded: u64,
    /// Population of the simulation runs.
    pub nodes: usize,
}

impl MetricsResult {
    /// Registry summary: one row per series with log2-histogram quantiles.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "metric", "labels", "kind", "count", "p50", "p99", "max",
        ]);
        for row in &self.rows {
            let (count, p50, p99, max) = match &row.histogram {
                Some(h) => (
                    h.total().to_string(),
                    h.p50().to_string(),
                    h.p99().to_string(),
                    h.max().to_string(),
                ),
                None => (row.value.to_string(), "-".into(), "-".into(), "-".into()),
            };
            table.row(vec![
                row.name.clone(),
                if row.labels.is_empty() {
                    "-".into()
                } else {
                    row.labels.clone()
                },
                row.kind.to_string(),
                count,
                p50,
                p99,
                max,
            ]);
        }
        table
    }

    /// Families from [`REQUIRED_FAMILIES`] that are missing or all-zero.
    pub fn missing_families(&self) -> Vec<&'static str> {
        REQUIRED_FAMILIES
            .iter()
            .filter(|family| {
                !self
                    .rows
                    .iter()
                    .any(|row| row.name == **family && row.value > 0)
            })
            .copied()
            .collect()
    }

    /// True when every required metric family recorded at least one
    /// nonzero observation and the flight recorder captured events.
    pub fn healthy(&self) -> bool {
        self.missing_families().is_empty() && self.flight_recorded > 0
    }
}

/// Runs the cross-stack telemetry exercise.
///
/// Forces telemetry on for the process (overriding `PSS_TELEMETRY=0` —
/// a metrics run with recording disabled would be vacuous), resets the
/// global registry and flight recorder, then drives every instrumented
/// stack once.
///
/// # Errors
///
/// Propagates schedule-parse or engine-construction errors verbatim.
pub fn run(config: &MetricsConfig) -> Result<MetricsResult, String> {
    pss_telemetry::set_enabled(true);
    pss_telemetry::global().reset();
    pss_telemetry::flight().clear();

    // Both simulation engines under a churned schedule: phase timings,
    // shard imbalance, workload period rows and membership-op events.
    let mut wl = workload::WorkloadConfig::at_scale(config.scale);
    wl.schedule = "quiet:4,kill:0.3,churn:0.02x8".into();
    wl.shards = config.shards;
    wl.workers = config.workers;
    workload::run(&wl)?;

    // The application layer on both engines: per-round timings.
    let mut app_scale = config.scale;
    app_scale.nodes = app_scale.nodes.min(200);
    let mut apps = protocols::ProtocolsConfig::at_scale(app_scale);
    apps.schedules = vec![("churn".into(), "quiet:3,kill:0.3,churn:0.02x5".into())];
    apps.policies = vec![pss_core::PolicyTriple::newscast()];
    apps.shards = config.shards;
    apps.workers = config.workers;
    protocols::run(&apps)?;

    // A tiny loopback UDP cluster: RTTs, decode latency, period wall time.
    let mut net_scale = config.scale;
    net_scale.nodes = net_scale.nodes.min(48);
    net_scale.cycles = net_scale.cycles.min(10);
    let mut cluster = net::NetConfig::at_scale(net_scale);
    cluster.runtimes = 2;
    cluster.period_ms = 40;
    cluster.jitter_ms = 10;
    net::run(&cluster);

    let registry = pss_telemetry::global();
    Ok(MetricsResult {
        rows: registry.rows(),
        prometheus: registry.render_prometheus(),
        json: registry.render_json(),
        flight_len: pss_telemetry::flight().len(),
        flight_recorded: pss_telemetry::flight().recorded(),
        nodes: config.scale.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_exercise_populates_every_family() {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        let config = MetricsConfig::at_scale(scale);
        let result = run(&config).expect("valid schedules");
        assert!(
            result.healthy(),
            "missing families: {:?}",
            result.missing_families()
        );
        assert!(!result.table().is_empty());
        for family in REQUIRED_FAMILIES {
            assert!(
                result.prometheus.contains(family),
                "{family} absent from Prometheus exposition"
            );
            assert!(
                result.json.contains(family),
                "{family} absent from JSON exposition"
            );
        }
        assert!(result.flight_recorded > 0);
    }
}
