//! **Extension X3** — sampling quality as seen by applications.
//!
//! The paper's motivation: gossip applications assume uniform sampling.
//! This experiment runs the two canonical consumers — epidemic broadcast
//! and push-pull averaging — over (a) the ideal uniform oracle and (b)
//! gossip overlays maintained by representative protocols, and compares
//! dissemination speed and aggregation convergence.

use pss_core::{NodeId, PolicyTriple};
use pss_protocols::broadcast::{self, BroadcastConfig};
use pss_protocols::{aggregation, OracleSource, SimSampleSource};
use pss_sim::scenario;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the applications experiment.
#[derive(Debug, Clone)]
pub struct AppsConfig {
    /// Common scale (cycles = overlay convergence budget before the
    /// workload starts).
    pub scale: Scale,
    /// Broadcast fanout.
    pub fanout: usize,
    /// Aggregation rounds.
    pub aggregation_rounds: usize,
    /// Gossip protocols to compare against the oracle.
    pub protocols: Vec<PolicyTriple>,
}

impl AppsConfig {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        AppsConfig {
            scale,
            fanout: 2,
            aggregation_rounds: 30,
            protocols: vec![
                PolicyTriple::newscast(),
                "(rand,rand,pushpull)".parse().expect("valid"),
                PolicyTriple::lpbcast(),
            ],
        }
    }
}

/// Application-level quality metrics of one sampler.
#[derive(Debug, Clone)]
pub struct SamplerQuality {
    /// Sampler label (`oracle` or the protocol triple).
    pub sampler: String,
    /// Broadcast coverage in `[0, 1]`.
    pub coverage: f64,
    /// Rounds to inform 99 % of the population, if reached.
    pub rounds_to_99: Option<usize>,
    /// Aggregation variance decay factor per round (lower = faster;
    /// uniform sampling theory gives ≈ 0.303).
    pub aggregation_decay: f64,
}

/// Result of the applications experiment.
#[derive(Debug, Clone)]
pub struct AppsResult {
    /// One row per sampler; the oracle row comes first.
    pub rows: Vec<SamplerQuality>,
}

impl AppsResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "sampler",
            "broadcast coverage",
            "rounds to 99%",
            "aggregation decay/round",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.sampler.clone(),
                fmt_f64(r.coverage, 4),
                r.rounds_to_99.map_or("-".into(), |x| x.to_string()),
                fmt_f64(r.aggregation_decay, 3),
            ]);
        }
        t
    }
}

fn initial_values(n: usize) -> Vec<f64> {
    // A bimodal load: half the nodes at 0, half at 100 — variance 2500.
    (0..n)
        .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
        .collect()
}

/// Runs the applications experiment.
pub fn run(config: &AppsConfig) -> AppsResult {
    let scale = config.scale;
    let fanout = config.fanout;
    let rounds = config.aggregation_rounds;
    let broadcast_config = BroadcastConfig {
        fanout,
        max_rounds: 200,
        stop_when_quiescent: true,
    };

    // Jobs: None = oracle, Some(policy) = gossip overlay.
    let mut jobs: Vec<Option<PolicyTriple>> = vec![None];
    jobs.extend(config.protocols.iter().copied().map(Some));

    let rows = parallel_map(jobs, move |job| match job {
        None => {
            let mut oracle = OracleSource::new(scale.nodes, scale.seed ^ 0xa991);
            let report =
                broadcast::run(&mut oracle, scale.nodes, NodeId::new(0), &broadcast_config);
            let mut values = initial_values(scale.nodes);
            let mut oracle2 = OracleSource::new(scale.nodes, scale.seed ^ 0xa992);
            let agg = aggregation::run(&mut oracle2, &mut values, rounds);
            SamplerQuality {
                sampler: "uniform oracle".into(),
                coverage: report.coverage(),
                rounds_to_99: report.rounds_to_reach(0.99),
                aggregation_decay: agg.decay_factor(),
            }
        }
        Some(policy) => {
            let protocol = scale.protocol(policy);
            let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0xa993);
            sim.run_cycles(scale.cycles);
            let report = broadcast::run(
                &mut SimSampleSource::new(&mut sim),
                scale.nodes,
                NodeId::new(0),
                &broadcast_config,
            );
            let mut values = initial_values(scale.nodes);
            let agg = aggregation::run(&mut SimSampleSource::new(&mut sim), &mut values, rounds);
            SamplerQuality {
                sampler: policy.to_string(),
                coverage: report.coverage(),
                rounds_to_99: report.rounds_to_reach(0.99),
                aggregation_decay: agg.decay_factor(),
            }
        }
    });

    AppsResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_samplers_approach_oracle_quality() {
        let scale = Scale {
            nodes: 300,
            cycles: 30,
            view_size: 15,
            seed: 81,
        };
        let config = AppsConfig {
            scale,
            fanout: 2,
            aggregation_rounds: 25,
            protocols: vec![PolicyTriple::newscast()],
        };
        let result = run(&config);
        assert_eq!(result.rows.len(), 2);
        let oracle = &result.rows[0];
        let newscast = &result.rows[1];
        assert_eq!(oracle.sampler, "uniform oracle");
        assert!(oracle.coverage > 0.999);
        assert!(newscast.coverage > 0.95, "coverage {}", newscast.coverage);
        // Both converge; the oracle is at least as fast.
        assert!(oracle.aggregation_decay < 0.5);
        assert!(newscast.aggregation_decay < 0.7);
        assert!(
            oracle.aggregation_decay <= newscast.aggregation_decay + 0.1,
            "oracle {} vs newscast {}",
            oracle.aggregation_decay,
            newscast.aggregation_decay
        );
        assert!(!result.table().is_empty());
    }
}
