//! Experiment scale: the knobs shared by all experiments.

use pss_core::{PolicyTriple, ProtocolConfig};

/// The shared experiment scale: population, cycle budget, view size, seed.
///
/// [`Scale::paper`] reproduces the published setup (N = 10⁴, c = 30,
/// 300 cycles). Smaller presets keep the same shape at lower cost for
/// benches and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of nodes N.
    pub nodes: usize,
    /// Cycles to run before measuring (the paper's 300).
    pub cycles: u64,
    /// View size c.
    pub view_size: usize,
    /// Master seed; every derived run seed is a deterministic function of
    /// this and the run index.
    pub seed: u64,
}

impl Scale {
    /// The paper's setup: N = 10⁴, 300 cycles, c = 30.
    pub fn paper() -> Self {
        Scale {
            nodes: 10_000,
            cycles: 300,
            view_size: 30,
            seed: 20040601,
        }
    }

    /// A laptop-friendly scale preserving the qualitative shape:
    /// N = 2000, 150 cycles, c = 30.
    pub fn small() -> Self {
        Scale {
            nodes: 2000,
            cycles: 150,
            view_size: 30,
            seed: 20040601,
        }
    }

    /// A smoke-test scale for CI and benches: N = 300, 60 cycles, c = 15.
    pub fn tiny() -> Self {
        Scale {
            nodes: 300,
            cycles: 60,
            view_size: 15,
            seed: 20040601,
        }
    }

    /// The million-node scale for the sharded engine: N = 10⁶, c = 30,
    /// 20 cycles — two orders of magnitude beyond the paper's populations,
    /// enough cycles for the in-degree distribution to converge from the
    /// random start (the paper's random-start runs converge within ~20
    /// cycles at every N it studied). Used by the `scaling` experiment and
    /// the `sharded_throughput` bench.
    pub fn million() -> Self {
        Scale {
            nodes: 1_000_000,
            cycles: 20,
            view_size: 30,
            seed: 20040601,
        }
    }

    /// The throughput-benchmark scale: the paper's population and view size
    /// (N = 10⁴, c = 30) with a short cycle budget, for measuring
    /// steady-state cycles/second (see `pss-bench`'s `throughput` bench and
    /// `BENCH_throughput.json`).
    pub fn throughput_bench() -> Self {
        Scale {
            nodes: 10_000,
            cycles: 5,
            view_size: 30,
            seed: 42,
        }
    }

    /// Protocol configuration for `policy` at this scale's view size.
    ///
    /// # Panics
    ///
    /// Panics if the view size is 0 (scales are assumed validated).
    pub fn protocol(&self, policy: PolicyTriple) -> ProtocolConfig {
        ProtocolConfig::new(policy, self.view_size).expect("non-zero view size")
    }

    /// Deterministically derives an independent seed for run `index`
    /// (SplitMix64 of `seed ⊕ index`).
    pub fn run_seed(&self, index: u64) -> u64 {
        let mut z = self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Scale::paper().nodes, 10_000);
        assert_eq!(Scale::paper().view_size, 30);
        assert_eq!(Scale::paper().cycles, 300);
        assert!(Scale::small().nodes < Scale::paper().nodes);
        assert!(Scale::tiny().nodes < Scale::small().nodes);
        assert_eq!(Scale::default(), Scale::paper());
    }

    #[test]
    fn run_seeds_are_distinct_and_deterministic() {
        let s = Scale::tiny();
        assert_eq!(s.run_seed(3), s.run_seed(3));
        let mut seeds: Vec<u64> = (0..100).map(|i| s.run_seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn protocol_uses_scale_view_size() {
        let s = Scale::tiny();
        let c = s.protocol(PolicyTriple::newscast());
        assert_eq!(c.view_size(), 15);
    }
}
