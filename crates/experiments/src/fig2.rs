//! **Figure 2** — dynamics of graph properties in the growing scenario.
//!
//! Six protocols are plotted (the four pushpull variants plus
//! non-partitioned runs of `(rand,rand,push)` and `(tail,rand,push)`;
//! `(rand,head,push)` and `(tail,head,push)` are excluded because they
//! partition in this scenario, see Table 1). Each subplot shows one
//! property per cycle against the uniform random baseline.

use pss_core::PolicyTriple;
use pss_graph::GraphMetrics;

use crate::dynamics::{random_baseline, run_dynamics, ProtocolDynamics, ScenarioKind};
use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Common scale; `cycles` is the full run length (paper: 300).
    pub scale: Scale,
    /// Joiners per cycle (paper: 100).
    pub per_cycle: usize,
    /// Seeds to retry for the partitioning push protocols until a connected
    /// run is found.
    pub connect_attempts: u32,
}

impl Fig2Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Fig2Config {
            scale,
            per_cycle: (scale.nodes / 100).max(1),
            connect_attempts: 5,
        }
    }

    /// The six protocols of Figure 2, in the paper's legend order.
    pub fn protocols() -> [PolicyTriple; 6] {
        [
            "(rand,rand,push)".parse().expect("valid"),
            "(tail,rand,push)".parse().expect("valid"),
            "(rand,rand,pushpull)".parse().expect("valid"),
            "(tail,rand,pushpull)".parse().expect("valid"),
            "(rand,head,pushpull)".parse().expect("valid"),
            "(tail,head,pushpull)".parse().expect("valid"),
        ]
    }
}

/// Result of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Per-protocol property series.
    pub dynamics: Vec<ProtocolDynamics>,
    /// Uniform random baseline at the same scale.
    pub baseline: GraphMetrics,
}

impl Fig2Result {
    /// Summary table: final values vs the random baseline.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "clustering coeff",
            "avg degree",
            "avg path length",
            "connected",
        ]);
        t.row(vec![
            "uniform random baseline".into(),
            fmt_f64(self.baseline.clustering_coefficient, 4),
            fmt_f64(self.baseline.average_degree, 2),
            fmt_f64(self.baseline.path_lengths.average, 3),
            "yes".into(),
        ]);
        for d in &self.dynamics {
            t.row(vec![
                d.policy.to_string(),
                fmt_f64(d.clustering.values().last().copied().unwrap_or(f64::NAN), 4),
                fmt_f64(d.degree.values().last().copied().unwrap_or(f64::NAN), 2),
                fmt_f64(
                    d.path_length.values().last().copied().unwrap_or(f64::NAN),
                    3,
                ),
                if d.connected_at_end { "yes" } else { "NO" }.into(),
            ]);
        }
        t
    }

    /// Long-format series table (CSV-friendly): one row per
    /// (protocol, cycle).
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "cycle",
            "clustering",
            "avg_degree",
            "avg_path_length",
        ]);
        for d in &self.dynamics {
            for ((cycle, cc), (deg, apl)) in d
                .clustering
                .iter()
                .zip(d.degree.values().iter().zip(d.path_length.values()))
            {
                t.row(vec![
                    d.policy.to_string(),
                    cycle.to_string(),
                    fmt_f64(cc, 6),
                    fmt_f64(*deg, 4),
                    fmt_f64(*apl, 4),
                ]);
            }
        }
        t
    }
}

/// Runs the Figure 2 experiment (protocols in parallel).
pub fn run(config: &Fig2Config) -> Fig2Result {
    let scale = config.scale;
    let per_cycle = config.per_cycle;
    let attempts = config.connect_attempts;
    let dynamics = parallel_map(Fig2Config::protocols().to_vec(), move |policy| {
        run_dynamics(
            policy,
            scale,
            ScenarioKind::Growing { per_cycle },
            scale.cycles,
            attempts,
        )
    });
    Fig2Result {
        dynamics,
        baseline: random_baseline(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        scale.cycles = 25;
        let mut config = Fig2Config::at_scale(scale);
        config.connect_attempts = 2;
        let result = run(&config);
        assert_eq!(result.dynamics.len(), 6);
        for d in &result.dynamics {
            assert_eq!(d.clustering.len(), 25);
        }
        // Pushpull protocols converge and stay connected at this scale.
        for d in result
            .dynamics
            .iter()
            .filter(|d| d.policy.propagation == pss_core::ViewPropagation::PushPull)
        {
            assert!(d.connected_at_end, "{} disconnected", d.policy);
        }
        let text = result.table().to_string();
        assert!(text.contains("uniform random baseline"));
        let series = result.series_table();
        assert_eq!(series.len(), 6 * 25);
    }
}
