//! **Scaling extension** — throughput and overlay quality vs shard count.
//!
//! The paper's experiments stop at N = 10⁴; this experiment drives the
//! sharded engine ([`pss_sim::ShardedSimulation`]) through the same
//! newscast workload at arbitrary N (the [`Scale::million`] preset is the
//! headline configuration) across a sweep of shard counts, reporting:
//!
//! * **node-cycles per second** — the throughput metric tracked since PR 1
//!   (`BENCH_throughput.json`), now as a function of parallelism, and
//! * the **converged in-degree distribution** (mean/σ/min/max) plus sampled
//!   path-length and clustering estimates from the CSR snapshot — evidence
//!   the parallel runs still produce the paper's overlay, not just a fast
//!   one.
//!
//! Shard count legitimately changes the trajectory (cross-shard exchanges
//! resolve in mailbox order), so per-shard-count results differ in the
//! decimals exactly like reseeded runs; the invariant worth watching is
//! that the *distribution statistics* agree across the sweep.

use std::time::Instant;

use pss_core::PolicyTriple;
use pss_sim::scenario;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the shard-count sweep.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Population, cycles, view size and seed.
    pub scale: Scale,
    /// Shard counts to sweep.
    pub shard_counts: Vec<usize>,
    /// Protocol under test (newscast, as in the throughput bench).
    pub policy: PolicyTriple,
    /// BFS sources / clustering samples for the sampled overlay metrics
    /// (0 disables the estimates — they cost a few BFS sweeps each).
    pub metric_samples: usize,
    /// Worker-thread override (`None` = available parallelism, capped at
    /// the shard count). Results are identical for any value — this knob
    /// exists so CI can pin both ends of the determinism contract.
    pub workers: Option<usize>,
}

impl ScalingConfig {
    /// Default sweep at the given scale: shard counts {1, 2, 4} plus the
    /// available core count when it exceeds 4.
    pub fn at_scale(scale: Scale) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut shard_counts = vec![1, 2, 4];
        if cores > 4 {
            shard_counts.push(cores);
        }
        shard_counts.retain(|&s| s <= scale.nodes.max(1));
        ScalingConfig {
            scale,
            shard_counts,
            policy: PolicyTriple::newscast(),
            metric_samples: 16,
            workers: None,
        }
    }
}

/// One row of the sweep: a complete run at one shard count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock seconds for the cycle loop.
    pub seconds: f64,
    /// N × cycles / seconds.
    pub node_cycles_per_sec: f64,
    /// Mean in-degree of the converged overlay (= c when views are full).
    pub in_degree_mean: f64,
    /// In-degree standard deviation (population).
    pub in_degree_std: f64,
    /// Smallest in-degree.
    pub in_degree_min: f64,
    /// Largest in-degree.
    pub in_degree_max: f64,
    /// Sampled average path length (NaN when sampling is disabled).
    pub path_length: f64,
    /// Sampled clustering coefficient (NaN when sampling is disabled).
    pub clustering: f64,
}

/// Result of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// One row per shard count, in sweep order.
    pub rows: Vec<ScalingRow>,
    /// The configuration that produced it.
    pub nodes: usize,
    /// Cycles each run executed.
    pub cycles: u64,
}

impl ScalingResult {
    /// Throughput speedup of the best row over the 1-shard row (NaN if the
    /// sweep had no 1-shard baseline).
    pub fn best_speedup(&self) -> f64 {
        let base = self
            .rows
            .iter()
            .find(|r| r.shards == 1)
            .map(|r| r.node_cycles_per_sec);
        match base {
            Some(base) if base > 0.0 => self
                .rows
                .iter()
                .map(|r| r.node_cycles_per_sec / base)
                .fold(f64::NAN, f64::max),
            _ => f64::NAN,
        }
    }

    /// Renders the sweep as the report table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "shards",
            "workers",
            "seconds",
            "node-cycles/s",
            "in-deg mean",
            "in-deg std",
            "in-deg min",
            "in-deg max",
            "~path len",
            "~clustering",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.shards.to_string(),
                r.workers.to_string(),
                fmt_f64(r.seconds, 2),
                format!("{:.0}", r.node_cycles_per_sec),
                fmt_f64(r.in_degree_mean, 2),
                fmt_f64(r.in_degree_std, 2),
                fmt_f64(r.in_degree_min, 0),
                fmt_f64(r.in_degree_max, 0),
                fmt_f64(r.path_length, 3),
                fmt_f64(r.clustering, 4),
            ]);
        }
        t
    }
}

/// Runs the sweep. Each shard count gets a fresh overlay from the same
/// `(seed, N)` (identical initial topology), runs `scale.cycles` cycles,
/// and is measured through the CSR snapshot.
pub fn run(config: &ScalingConfig) -> ScalingResult {
    let scale = config.scale;
    let protocol = scale.protocol(config.policy);
    let mut rows = Vec::with_capacity(config.shard_counts.len());
    for &shards in &config.shard_counts {
        let mut sim = scenario::random_overlay_sharded(&protocol, scale.nodes, scale.seed, shards);
        if let Some(workers) = config.workers {
            sim.set_workers(workers);
        }
        let workers = sim.workers();
        let started = Instant::now();
        sim.run_cycles(scale.cycles);
        let seconds = started.elapsed().as_secs_f64();
        let node_cycles = scale.nodes as f64 * scale.cycles as f64;

        let snapshot = sim.csr_snapshot();
        let csr = snapshot.graph();
        let mut in_deg = pss_stats::Summary::new();
        for d in csr.in_degrees() {
            in_deg.push(d as f64);
        }
        let (path_length, clustering) = if config.metric_samples > 0 {
            let rev = csr.reverse();
            let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x5ca1_ab1e);
            (
                csr.sampled_path_length(&rev, config.metric_samples, &mut rng)
                    .average,
                csr.sampled_clustering(&rev, config.metric_samples * 8, &mut rng),
            )
        } else {
            (f64::NAN, f64::NAN)
        };

        rows.push(ScalingRow {
            shards,
            workers,
            seconds,
            node_cycles_per_sec: if seconds > 0.0 {
                node_cycles / seconds
            } else {
                f64::INFINITY
            },
            in_degree_mean: in_deg.mean(),
            in_degree_std: in_deg.population_std_dev(),
            in_degree_min: in_deg.min().unwrap_or(f64::NAN),
            in_degree_max: in_deg.max().unwrap_or(f64::NAN),
            path_length,
            clustering,
        });
    }
    ScalingResult {
        rows,
        nodes: scale.nodes,
        cycles: scale.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_reports_converged_overlay() {
        let mut scale = Scale::tiny();
        scale.nodes = 250;
        scale.cycles = 25;
        let mut config = ScalingConfig::at_scale(scale);
        config.shard_counts = vec![1, 2];
        config.workers = Some(2);
        let result = run(&config);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].workers, 1); // clamped to the shard count
        assert_eq!(result.rows[1].workers, 2);
        assert_eq!(result.nodes, 250);
        for row in &result.rows {
            assert!(row.node_cycles_per_sec > 0.0);
            // Every view holds c = 15 live entries, so the mean in-degree
            // must be exactly c.
            assert!(
                (row.in_degree_mean - 15.0).abs() < 1e-9,
                "mean in-degree {}",
                row.in_degree_mean
            );
            assert!(row.in_degree_std > 0.0);
            assert!(row.in_degree_max >= row.in_degree_mean);
            assert!(row.path_length > 1.0 && row.path_length < 4.0);
            assert!(row.clustering.is_finite());
        }
        let table = result.table();
        assert_eq!(table.len(), 2);
        assert!(result.best_speedup().is_finite());
    }

    #[test]
    fn at_scale_includes_required_shard_counts() {
        let config = ScalingConfig::at_scale(Scale::tiny());
        assert!(config.shard_counts.starts_with(&[1, 2, 4]));
    }

    #[test]
    fn disabled_metrics_are_nan() {
        let mut scale = Scale::tiny();
        scale.nodes = 60;
        scale.cycles = 3;
        let mut config = ScalingConfig::at_scale(scale);
        config.shard_counts = vec![2];
        config.metric_samples = 0;
        let result = run(&config);
        assert!(result.rows[0].path_length.is_nan());
        assert!(result.rows[0].clustering.is_nan());
        assert!(result.best_speedup().is_nan()); // no 1-shard baseline
    }
}
