//! **Extension X7** — Byzantine robustness: attack metrics per honest
//! policy, cross-engine.
//!
//! Runs one adversarial [`Workload`] schedule (`adv:` verbs — hub, age
//! liar, reply forger, eclipse; see the `pss_sim::workload` grammar) over
//! a sweep of honest-policy corners, on **both** simulation stacks, and
//! tabulates the final attack observables side by side: in-degree capture
//! (skew), attacker-edge fraction, in-degree Gini, eclipsed victims,
//! largest attacker-free component — plus a PeerSwap-style randomness
//! audit of the aggregate sample stream (attacker sample share and a
//! chi-square uniformity p-value).
//!
//! The policy corners are chosen to show *which* honest dimension defends:
//! newscast's freshness-greedy selection is exactly what age-forging
//! attackers exploit, the H&S *healer* shares that failure mode (removing
//! the oldest entries is a freshness preference), and the H&S *swapper*
//! bounds the capture. This is the CLI face of
//! `tests/adversary_conformance.rs`.

use pss_core::hs::{HsConfig, HsPeerSelection};
use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::audit::{audit_rows, role_factory, AttackRecord, HonestPolicy, SampleAudit};
use pss_sim::workload::{run_workload_observed, Workload};
use pss_sim::{BoxedNode, EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation};

use crate::report::{fmt_f64, fmt_percent, Table};
use crate::Scale;

/// The default schedule: the headline hub attack — 2 % colluders forging
/// fresh self-descriptors through 30 quiet periods.
pub const DEFAULT_SCHEDULE: &str = "adv:hub@0.02,quiet:30";

/// Configuration of a cross-engine adversary sweep.
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// Population, view size and seed (`cycles` is ignored — the schedule
    /// fixes the period count).
    pub scale: Scale,
    /// The schedule string; must place an adversary (`adv:` verb).
    pub schedule: String,
    /// Shard count for both engines.
    pub shards: usize,
    /// Worker-thread override (results are worker-invariant).
    pub workers: Option<usize>,
}

impl AdversaryConfig {
    /// Defaults at the given scale: the headline hub schedule, 2 shards.
    pub fn at_scale(scale: Scale) -> Self {
        AdversaryConfig {
            scale,
            schedule: DEFAULT_SCHEDULE.to_owned(),
            shards: 2,
            workers: None,
        }
    }
}

/// One policy × engine cell of the sweep.
#[derive(Debug)]
pub struct PolicyOutcome {
    /// Human-readable policy label.
    pub policy: String,
    /// `"cycle"` or `"event"`.
    pub engine: &'static str,
    /// The last period's attack observables.
    pub final_record: AttackRecord,
    /// Share of the aggregate honest sample stream that landed on
    /// attacker ids (clean share ≈ the attacker fraction).
    pub attacker_sample_share: f64,
    /// Chi-square uniformity p-value of the aggregate sample stream, if
    /// computable.
    pub uniformity_p: Option<f64>,
}

/// Result of the sweep: one [`PolicyOutcome`] per policy per engine.
#[derive(Debug)]
pub struct AdversaryResult {
    /// The parsed schedule.
    pub workload: Workload,
    /// Population the schedule was compiled for.
    pub nodes: usize,
    /// Outcomes, grouped by policy in sweep order, cycle before event.
    pub outcomes: Vec<PolicyOutcome>,
}

impl AdversaryResult {
    /// Per-policy side-by-side table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "policy",
            "engine",
            "skew",
            "atk edge",
            "gini",
            "honest comp",
            "eclipsed",
            "atk samples",
            "uniform p",
        ]);
        for o in &self.outcomes {
            let f = &o.final_record;
            table.row(vec![
                o.policy.clone(),
                o.engine.to_owned(),
                fmt_f64(f.skew(), 2),
                fmt_percent(f.attacker_edge_fraction),
                fmt_f64(f.in_degree_gini, 3),
                fmt_percent(f.honest_component_fraction()),
                f.eclipsed_victims.to_string(),
                fmt_percent(o.attacker_sample_share),
                o.uniformity_p.map_or("n/a".into(), |p| format!("{p:.1e}")),
            ]);
        }
        table
    }

    fn skew_of(&self, engine: &str, policy_prefix: &str) -> Option<f64> {
        self.outcomes
            .iter()
            .find(|o| o.engine == engine && o.policy.starts_with(policy_prefix))
            .map(|o| o.final_record.skew())
    }

    /// True when the honest overlay survived everywhere (largest
    /// attacker-free component ≥ 50 % of live honest nodes — captured
    /// policies shed real connectivity, that is the attack working) and,
    /// per engine, the swapper's capture never exceeds newscast's — the
    /// defense ordering the CI smoke pins. The `max(2.0)` floor keeps
    /// near-benign schedules (where both skews sit around 1) from
    /// flickering the gate.
    pub fn healthy(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.final_record.honest_component_fraction() >= 0.50)
            && ["cycle", "event"].iter().all(|engine| {
                match (
                    self.skew_of(engine, "newscast"),
                    self.skew_of(engine, "hs swapper"),
                ) {
                    (Some(news), Some(swap)) => swap <= news.max(2.0),
                    _ => true,
                }
            })
    }
}

/// The policy corners of the sweep; see the [module docs](self).
///
/// # Errors
///
/// Returns an error when the view size cannot host an H&S configuration
/// (H + S must not exceed `c / 2`).
fn policy_corners(c: usize) -> Result<Vec<(String, HonestPolicy)>, String> {
    let sampling = |triple: PolicyTriple| {
        ProtocolConfig::new(triple, c)
            .map(HonestPolicy::Sampling)
            .map_err(|e| e.to_string())
    };
    let hs = |h: usize, s: usize| {
        HsConfig::new(c, h, s, HsPeerSelection::Rand)
            .map(HonestPolicy::Hs)
            .map_err(|e| e.to_string())
    };
    let half = c / 2;
    Ok(vec![
        (
            "newscast (rand,head,pushpull)".into(),
            sampling(PolicyTriple::newscast())?,
        ),
        (
            "blind (rand,rand,pushpull)".into(),
            sampling(
                "(rand,rand,pushpull)"
                    .parse::<PolicyTriple>()
                    .map_err(|e| e.to_string())?,
            )?,
        ),
        (format!("hs healer (H={half},S=0)"), hs(half, 0)?),
        (format!("hs swapper (H=0,S={half})"), hs(0, half)?),
    ])
}

/// Runs the schedule for one policy on one engine, auditing every period
/// and feeding every honest node's per-period view into the sample audit.
fn run_one(
    policy: &HonestPolicy,
    engine: &'static str,
    label: &str,
    workload: &Workload,
    config: &AdversaryConfig,
) -> Result<PolicyOutcome, String> {
    let nodes = config.scale.nodes;
    let compiled = workload.compile(nodes);
    let roles = compiled.adversary.ok_or_else(|| {
        format!(
            "schedule `{}` places no adversary (adv: verb)",
            config.schedule
        )
    })?;
    let c = policy.view_size();
    let seeds = |i: u64| -> Vec<NodeDescriptor> {
        if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        }
    };

    let factory = role_factory(policy.clone(), Some(roles));
    let mut final_record = None;
    let mut audit = SampleAudit::new(config.scale.seed ^ 0xa0d1);
    let mut observe =
        |period: u64, rows: &[(NodeId, Vec<NodeId>)], _is_live: &dyn Fn(NodeId) -> bool| {
            for (id, targets) in rows {
                if !roles.is_attacker(*id) {
                    audit.observe(targets);
                }
            }
            final_record = Some(audit_rows(&roles, compiled.id_space, rows, period));
        };

    match engine {
        "cycle" => {
            let mut sim =
                ShardedSimulation::with_factory(config.scale.seed, config.shards, factory);
            for i in 0..nodes as u64 {
                sim.add_node(seeds(i));
            }
            if let Some(w) = config.workers {
                sim.set_workers(w);
            }
            run_workload_observed(&mut sim, &compiled, c, &mut observe);
        }
        _ => {
            let event_config = EventConfig {
                period: 1000,
                jitter: 200,
                latency: LatencyModel::Uniform { min: 10, max: 200 },
                loss_probability: 0.01,
            };
            let mut sim: ShardedEventSimulation<BoxedNode> = ShardedEventSimulation::with_factory(
                event_config,
                config.scale.seed,
                config.shards,
                factory,
            )
            .map_err(|e| e.to_string())?;
            for i in 0..nodes as u64 {
                sim.add_node(seeds(i));
            }
            if let Some(w) = config.workers {
                sim.set_workers(w);
            }
            run_workload_observed(&mut sim, &compiled, c, &mut observe);
        }
    }

    let final_record = final_record.ok_or("schedule ran zero periods")?;
    let attacker_sample_share = if audit.samples() == 0 {
        0.0
    } else {
        audit.samples_matching(|id| roles.is_attacker(id)) as f64 / audit.samples() as f64
    };
    let uniformity_p = audit
        .chi_square((0..nodes as u64).map(NodeId::new))
        .map(|v| v.p_value);
    Ok(PolicyOutcome {
        policy: label.to_owned(),
        engine,
        final_record,
        attacker_sample_share,
        uniformity_p,
    })
}

/// Runs the sweep: every policy corner on both engines.
///
/// # Errors
///
/// Returns the schedule-parse error verbatim, an error when the schedule
/// places no adversary, or an invalid-policy error for view sizes the H&S
/// corners cannot host.
pub fn run(config: &AdversaryConfig) -> Result<AdversaryResult, String> {
    let workload =
        Workload::parse(&config.schedule, config.scale.seed).map_err(|e| e.to_string())?;
    let corners = policy_corners(config.scale.view_size)?;
    let mut outcomes = Vec::with_capacity(corners.len() * 2);
    for (label, policy) in &corners {
        for engine in ["cycle", "event"] {
            outcomes.push(run_one(policy, engine, label, &workload, config)?);
        }
    }
    Ok(AdversaryResult {
        workload,
        nodes: config.scale.nodes,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AdversaryConfig {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        scale.view_size = 12;
        let mut config = AdversaryConfig::at_scale(scale);
        config.schedule = "adv:hub@0.02,quiet:12".into();
        config
    }

    #[test]
    fn tiny_sweep_runs_all_corners_on_both_engines() {
        let config = tiny_config();
        let result = run(&config).expect("valid schedule");
        assert_eq!(result.outcomes.len(), 8);
        assert_eq!(result.table().len(), 8);
        assert!(result.healthy(), "{result:?}");
        // The headline ordering: newscast is captured, the swapper bounds
        // it — on both engines.
        for engine in ["cycle", "event"] {
            let news = result.skew_of(engine, "newscast").unwrap();
            let swap = result.skew_of(engine, "hs swapper").unwrap();
            assert!(news > 2.0, "{engine}: newscast not captured: {news}");
            assert!(
                swap < news,
                "{engine}: swapper did not bound: {swap} vs {news}"
            );
        }
        // The sample audit saw the attack: attacker share above the 2 %
        // clean share for the captured policy.
        let news_cycle = result
            .outcomes
            .iter()
            .find(|o| o.engine == "cycle" && o.policy.starts_with("newscast"))
            .unwrap();
        assert!(news_cycle.attacker_sample_share > 0.05, "{news_cycle:?}");
        assert!(news_cycle.uniformity_p.is_some());
    }

    #[test]
    fn adversary_free_schedule_is_rejected() {
        let mut config = tiny_config();
        config.schedule = "quiet:5".into();
        let err = run(&config).unwrap_err();
        assert!(err.contains("no adversary"), "{err}");
    }

    #[test]
    fn bad_schedule_is_reported() {
        let mut config = tiny_config();
        config.schedule = "adv:bogus@0.1,quiet:5".into();
        assert!(run(&config).is_err());
    }
}
