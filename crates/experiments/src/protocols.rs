//! **Extension X7** — applications under membership schedules, cross-engine.
//!
//! The `apps` experiment measures sampling quality on a *static* overlay;
//! this one puts the same two consumers — epidemic broadcast and push-pull
//! averaging — under full membership dynamics. One compiled workload
//! schedule drives the sharded cycle engine and the sharded event engine,
//! and on each the application layer runs with both peer supplies: the
//! node's own overlay view (dead links and all) and the uniform live
//! oracle. The sweep crosses policy × sampler × engine per schedule, so
//! every delivery/decay number is attributable to exactly one of those
//! axes under an identical membership trajectory.
//!
//! The default schedule list pairs the conformance churn schedule with a
//! Table-1-style partition schedule: the overlay splits in two, and the
//! application rows show coverage stalling at the cut (blocked messages
//! counted) and re-flooding after the heal.

use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_protocols::{run_under_workload, AppConfig, AppReport, Sampler};
use pss_sim::workload::{PeriodRecord, Workload};
use pss_sim::{EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation};

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, fmt_percent, Table};
use crate::Scale;

/// Configuration of the application-protocols sweep.
#[derive(Debug, Clone)]
pub struct ProtocolsConfig {
    /// Population, view size and seed (`cycles` is ignored — each schedule
    /// fixes its own period count).
    pub scale: Scale,
    /// `(label, schedule)` pairs ([`pss_sim::workload`] grammar).
    pub schedules: Vec<(String, String)>,
    /// Overlay policies to host the applications on.
    pub policies: Vec<PolicyTriple>,
    /// Shard count for both engines.
    pub shards: usize,
    /// Worker-thread override (results are worker-invariant).
    pub workers: Option<usize>,
    /// Broadcast fanout.
    pub fanout: usize,
}

impl ProtocolsConfig {
    /// Defaults at the given scale: the conformance churn schedule plus a
    /// two-group partition schedule, newscast and `(rand,rand,pushpull)`.
    pub fn at_scale(scale: Scale) -> Self {
        ProtocolsConfig {
            scale,
            schedules: vec![
                ("churn".into(), "quiet:5,kill:0.3,churn:0.01x15".into()),
                ("partition".into(), "part:2x6,quiet:14".into()),
            ],
            // Both heal dead links through head view selection (keep the
            // freshest); rand view selection holds stale entries past the
            // 10% dead-link health gate under sustained churn.
            policies: vec![
                PolicyTriple::newscast(),
                "(tail,head,pushpull)".parse().expect("valid"),
            ],
            shards: 2,
            workers: None,
            fanout: 2,
        }
    }
}

/// One cell of the sweep: a (schedule, engine, policy, sampler) run.
#[derive(Debug)]
pub struct ProtocolRun {
    /// Schedule label from the config.
    pub schedule: String,
    /// `cycle` or `event`.
    pub engine: &'static str,
    /// Overlay policy hosting the applications.
    pub policy: PolicyTriple,
    /// Peer supply the applications drew from.
    pub sampler: Sampler,
    /// Overlay trajectory (the same records the workload experiment pins).
    pub records: Vec<PeriodRecord>,
    /// Application rows and derived metrics.
    pub report: AppReport,
}

/// Result of the sweep.
#[derive(Debug)]
pub struct ProtocolsResult {
    /// All runs, grouped by schedule, then engine, policy, sampler.
    pub runs: Vec<ProtocolRun>,
    /// Population every schedule was compiled for.
    pub nodes: usize,
}

impl ProtocolsResult {
    /// Summary table: one row per run.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "schedule",
            "engine",
            "policy",
            "sampler",
            "delivery",
            "rounds to 99%",
            "redundancy",
            "wasted",
            "blocked",
            "agg decay",
            "final live",
            "largest comp",
        ]);
        for r in &self.runs {
            let last = r.records.last();
            table.row(vec![
                r.schedule.clone(),
                r.engine.into(),
                r.policy.to_string(),
                r.sampler.label().into(),
                fmt_percent(r.report.delivery_ratio()),
                r.report
                    .rounds_to_99()
                    .map_or("-".into(), |p| p.to_string()),
                fmt_f64(r.report.redundancy(), 3),
                r.report.wasted().to_string(),
                r.report.blocked().to_string(),
                fmt_f64(r.report.decay_factor(), 3),
                last.map_or(0, |l| l.live).to_string(),
                fmt_percent(last.map_or(0.0, PeriodRecord::component_fraction)),
            ]);
        }
        table
    }

    /// Per-period series of every run — application rows alongside the
    /// overlay health they rode on.
    pub fn series_table(&self) -> Table {
        let mut table = Table::new(vec![
            "schedule",
            "engine",
            "policy",
            "sampler",
            "period",
            "live",
            "informed",
            "delivered",
            "redundant",
            "wasted",
            "blocked",
            "variance",
            "largest comp",
        ]);
        for r in &self.runs {
            for (row, rec) in r.report.rows().iter().zip(r.records.iter()) {
                table.row(vec![
                    r.schedule.clone(),
                    r.engine.into(),
                    r.policy.to_string(),
                    r.sampler.label().into(),
                    row.period.to_string(),
                    row.live.to_string(),
                    row.informed.to_string(),
                    row.delivered.to_string(),
                    row.redundant.to_string(),
                    row.wasted.to_string(),
                    row.blocked.to_string(),
                    fmt_f64(row.variance, 2),
                    fmt_percent(rec.component_fraction()),
                ]);
            }
        }
        table
    }

    /// True when every run ends on a healthy overlay (largest component
    /// ≥ 95% of live, dead links ≤ 10%) with the rumor delivered to
    /// ≥ 90% of the surviving population.
    pub fn healthy(&self) -> bool {
        self.runs.iter().all(|r| {
            let overlay_ok = r.records.last().is_some_and(|rec| {
                rec.component_fraction() >= 0.95 && rec.dead_link_fraction() <= 0.10
            });
            overlay_ok && r.report.delivery_ratio() >= 0.90
        })
    }
}

/// Runs the sweep.
///
/// # Errors
///
/// Returns schedule-parse or configuration error text verbatim.
pub fn run(config: &ProtocolsConfig) -> Result<ProtocolsResult, String> {
    // Validate every schedule up front so a typo fails fast, not after
    // half the sweep has run.
    for (label, schedule) in &config.schedules {
        Workload::parse(schedule, config.scale.seed)
            .map_err(|e| format!("schedule `{label}`: {e}"))?;
    }
    let mut jobs: Vec<(String, String, PolicyTriple, Sampler, &'static str)> = Vec::new();
    for (label, schedule) in &config.schedules {
        for &policy in &config.policies {
            for sampler in [Sampler::Overlay, Sampler::Oracle] {
                for engine in ["cycle", "event"] {
                    jobs.push((label.clone(), schedule.clone(), policy, sampler, engine));
                }
            }
        }
    }

    let scale = config.scale;
    let shards = config.shards;
    let workers = config.workers;
    let fanout = config.fanout;
    let runs = parallel_map(jobs, move |(label, schedule, policy, sampler, engine)| {
        run_one(
            scale, &schedule, policy, sampler, engine, shards, workers, fanout,
        )
        .map(|(records, report)| ProtocolRun {
            schedule: label,
            engine,
            policy,
            sampler,
            records,
            report,
        })
    });
    let runs = runs.into_iter().collect::<Result<Vec<_>, String>>()?;
    Ok(ProtocolsResult {
        runs,
        nodes: config.scale.nodes,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    scale: Scale,
    schedule: &str,
    policy: PolicyTriple,
    sampler: Sampler,
    engine: &'static str,
    shards: usize,
    workers: Option<usize>,
    fanout: usize,
) -> Result<(Vec<PeriodRecord>, AppReport), String> {
    let compiled = Workload::parse(schedule, scale.seed)
        .map_err(|e| e.to_string())?
        .compile(scale.nodes);
    let c = scale.view_size;
    let protocol = ProtocolConfig::new(policy, c).map_err(|e| e.to_string())?;
    let app = AppConfig {
        fanout,
        sampler,
        seed: scale.seed ^ 0x0a99_5eed,
        ..AppConfig::default()
    };
    let seeds = |i: u64| -> Vec<NodeDescriptor> {
        if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        }
    };
    Ok(match engine {
        "cycle" => {
            let mut sim = ShardedSimulation::new(protocol, scale.seed, shards);
            for i in 0..scale.nodes as u64 {
                sim.add_node(seeds(i));
            }
            if let Some(w) = workers {
                sim.set_workers(w);
            }
            run_under_workload(&mut sim, &compiled, c, &app)
        }
        _ => {
            let event_config = EventConfig {
                period: 1000,
                jitter: 200,
                latency: LatencyModel::Uniform { min: 10, max: 200 },
                loss_probability: 0.01,
            };
            let mut sim = ShardedEventSimulation::new(protocol, event_config, scale.seed, shards)
                .map_err(|e| e.to_string())?;
            for i in 0..scale.nodes as u64 {
                sim.add_node(seeds(i));
            }
            if let Some(w) = workers {
                sim.set_workers(w);
            }
            run_under_workload(&mut sim, &compiled, c, &app)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_covers_all_axes_and_is_healthy() {
        let mut scale = Scale::tiny();
        scale.nodes = 150;
        scale.view_size = 12;
        let mut config = ProtocolsConfig::at_scale(scale);
        // One policy keeps the test at 8 runs (2 schedules × 2 samplers ×
        // 2 engines).
        config.policies = vec![PolicyTriple::newscast()];
        let result = run(&config).expect("valid config");
        assert_eq!(result.runs.len(), 8);
        assert!(result.healthy(), "{}", result.table());
        // The partition schedule must show blocked app traffic; the churn
        // schedule must show wasted deliveries on the overlay sampler.
        let blocked: u64 = result
            .runs
            .iter()
            .filter(|r| r.schedule == "partition")
            .map(|r| r.report.blocked())
            .sum();
        assert!(blocked > 0);
        let churn_overlay_wasted: u64 = result
            .runs
            .iter()
            .filter(|r| r.schedule == "churn" && r.sampler == Sampler::Overlay)
            .map(|r| r.report.wasted() + r.report.agg_wasted())
            .sum();
        assert!(churn_overlay_wasted > 0);
        // The oracle is never slower than the overlay on the same axis.
        for r in result.runs.iter().filter(|r| r.sampler == Sampler::Oracle) {
            let twin = result
                .runs
                .iter()
                .find(|t| {
                    t.sampler == Sampler::Overlay
                        && t.schedule == r.schedule
                        && t.engine == r.engine
                        && t.policy == r.policy
                })
                .expect("paired run");
            assert!(
                r.report.decay_factor() <= twin.report.decay_factor() + 0.05,
                "oracle decays slower than overlay on {}/{}",
                r.schedule,
                r.engine
            );
        }
        assert!(!result.table().is_empty());
        assert!(result.series_table().len() > 100);
    }

    #[test]
    fn bad_schedule_fails_fast() {
        let mut config = ProtocolsConfig::at_scale(Scale::tiny());
        config.schedules = vec![("bad".into(), "bogus:1".into())];
        let err = run(&config).unwrap_err();
        assert!(err.contains("bad"));
    }
}
