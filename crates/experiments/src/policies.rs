//! **Section 4.3** — why 19 of the 27 policy combinations are degenerate.
//!
//! The paper discards `(head,*,*)` (severe clustering), `(*,tail,*)`
//! (cannot absorb joining nodes) and `(*,*,pull)` (converges to a star
//! topology) after preliminary experiments. This experiment reruns those
//! preliminaries: every combination is run from a random start, then a
//! batch of fresh nodes joins, and the resulting overlay is classified.

use pss_core::{NodeId, PolicyTriple};
use pss_sim::scenario;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the policy-space sweep.
#[derive(Debug, Clone)]
pub struct PoliciesConfig {
    /// Common scale (kept small: 27 simulations run).
    pub scale: Scale,
    /// Fresh nodes that join after convergence.
    pub joiners: usize,
    /// Cycles run after the join batch.
    pub join_cycles: u64,
}

impl PoliciesConfig {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        PoliciesConfig {
            scale,
            joiners: (scale.nodes / 10).max(5),
            join_cycles: (scale.cycles / 3).max(10),
        }
    }
}

/// Observed pathologies of one policy combination.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDiagnosis {
    /// The policy.
    pub policy: PolicyTriple,
    /// Components in the converged overlay (1 = connected).
    pub components: usize,
    /// Clustering coefficient of the converged overlay.
    pub clustering: f64,
    /// Largest degree divided by (N − 1): 1.0 for a perfect star hub.
    pub max_degree_fraction: f64,
    /// Mean undirected degree of the joiner batch after the join cycles.
    pub joiner_degree: f64,
    /// Mean in-degree of the joiner batch (0 ⇒ nobody learned about them).
    pub joiner_in_degree: f64,
}

impl PolicyDiagnosis {
    /// Classifies the pathology, mirroring the paper's exclusion rules.
    pub fn verdict(&self, baseline_clustering: f64) -> &'static str {
        if self.components > 1 {
            "PARTITIONED"
        } else if self.max_degree_fraction > 0.5 {
            "STAR"
        } else if self.joiner_in_degree < 1.0 {
            "JOIN-DEAF"
        } else if self.clustering > 10.0 * baseline_clustering.max(1e-6) {
            "CLUSTERED"
        } else {
            "ok"
        }
    }
}

/// Result of the policy sweep.
#[derive(Debug, Clone)]
pub struct PoliciesResult {
    /// One diagnosis per combination (paper order: ps, vs, vp).
    pub diagnoses: Vec<PolicyDiagnosis>,
    /// Clustering of the uniform random baseline at the same scale.
    pub baseline_clustering: f64,
}

impl PoliciesResult {
    /// Renders the classification table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "policy",
            "components",
            "clustering",
            "maxdeg/N",
            "joiner deg",
            "joiner indeg",
            "verdict",
            "paper verdict",
        ]);
        for d in &self.diagnoses {
            t.row(vec![
                d.policy.to_string(),
                d.components.to_string(),
                fmt_f64(d.clustering, 4),
                fmt_f64(d.max_degree_fraction, 3),
                fmt_f64(d.joiner_degree, 2),
                fmt_f64(d.joiner_in_degree, 2),
                d.verdict(self.baseline_clustering).into(),
                if d.policy.is_degenerate() {
                    "degenerate".into()
                } else {
                    "kept".into()
                },
            ]);
        }
        t
    }
}

/// Runs the sweep over all 27 combinations (in parallel).
pub fn run(config: &PoliciesConfig) -> PoliciesResult {
    let scale = config.scale;
    let joiners = config.joiners;
    let join_cycles = config.join_cycles;

    let diagnoses = parallel_map(PolicyTriple::all(), move |policy| {
        let protocol = scale.protocol(policy);
        let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0x901);
        sim.run_cycles(scale.cycles);

        let joined_from = sim.node_count();
        sim.add_nodes_with_random_contacts(joiners, 1);
        sim.run_cycles(join_cycles);

        let snap = sim.snapshot();
        let graph = snap.undirected();
        let report = pss_graph::components::connected_components(&graph);
        let clustering = pss_graph::clustering::estimate_clustering(
            &graph,
            1000.min(graph.node_count()),
            &mut rand::rngs::SmallRng::seed_from_u64(scale.seed),
        );
        let n = graph.node_count().max(2);
        let in_degrees = snap.directed().in_degrees();
        let joiner_ids: Vec<NodeId> = (joined_from..joined_from + joiners)
            .map(|i| NodeId::new(i as u64))
            .collect();
        let (mut deg_sum, mut indeg_sum, mut count) = (0.0, 0.0, 0usize);
        for id in joiner_ids {
            if let Some(idx) = snap.index_of(id) {
                deg_sum += graph.degree(idx) as f64;
                indeg_sum += in_degrees[idx as usize] as f64;
                count += 1;
            }
        }
        let count = count.max(1) as f64;
        PolicyDiagnosis {
            policy,
            components: report.count(),
            clustering,
            max_degree_fraction: graph.max_degree() as f64 / (n - 1) as f64,
            joiner_degree: deg_sum / count,
            joiner_in_degree: indeg_sum / count,
        }
    });

    PoliciesResult {
        diagnoses,
        baseline_clustering: crate::dynamics::random_baseline(scale).clustering_coefficient,
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PoliciesConfig {
        // View size 15 keeps even this small overlay comfortably above the
        // connectivity threshold (c = 10 overlays of ~200 nodes can split).
        PoliciesConfig {
            scale: Scale {
                nodes: 200,
                cycles: 40,
                view_size: 15,
                seed: 61,
            },
            joiners: 20,
            join_cycles: 15,
        }
    }

    #[test]
    fn sweep_reproduces_paper_exclusions() {
        let result = run(&tiny());
        assert_eq!(result.diagnoses.len(), 27);
        let find = |s: &str| {
            let policy: PolicyTriple = s.parse().unwrap();
            result
                .diagnoses
                .iter()
                .find(|d| d.policy == policy)
                .unwrap()
        };

        // (*,*,pull) converges to a star-like topology.
        let pull = find("(rand,head,pull)");
        assert!(
            pull.max_degree_fraction > 0.3,
            "pull max degree fraction {}",
            pull.max_degree_fraction
        );

        // (*,tail,*) cannot absorb joining nodes: nobody stores them.
        let tail = find("(rand,tail,pushpull)");
        assert!(
            tail.joiner_in_degree < 1.0,
            "tail joiner in-degree {}",
            tail.joiner_in_degree
        );

        // (head,*,*) clusters severely relative to the kept protocols.
        let head_ps = find("(head,rand,pushpull)");
        let kept = find("(rand,rand,pushpull)");
        assert!(
            head_ps.clustering > kept.clustering,
            "head-ps clustering {} vs kept {}",
            head_ps.clustering,
            kept.clustering
        );

        // The kept protocols look healthy.
        let newscast = find("(rand,head,pushpull)");
        assert_eq!(newscast.components, 1);
        assert_eq!(newscast.verdict(result.baseline_clustering), "ok");

        assert_eq!(result.table().len(), 27);
    }
}
