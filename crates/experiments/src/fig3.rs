//! **Figure 3** — convergence from lattice and random starts.
//!
//! All eight protocols run from both a ring-lattice and a uniform-random
//! initial topology; the paper plots the first 100 of 300 cycles of average
//! path length, clustering coefficient and average degree, showing
//! convergence to the same values regardless of the start.

use pss_core::PolicyTriple;
use pss_graph::GraphMetrics;

use crate::dynamics::{random_baseline, run_dynamics, ProtocolDynamics, ScenarioKind};
use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Common scale.
    pub scale: Scale,
    /// Cycles to plot (the paper shows 100 of its 300-cycle runs).
    pub cycles: u64,
    /// Protocols (default: the paper's eight).
    pub protocols: Vec<PolicyTriple>,
}

impl Fig3Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Fig3Config {
            scale,
            cycles: scale.cycles.min(100),
            protocols: PolicyTriple::paper_eight().to_vec(),
        }
    }
}

/// Result of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Series per protocol, lattice start.
    pub lattice: Vec<ProtocolDynamics>,
    /// Series per protocol, random start.
    pub random: Vec<ProtocolDynamics>,
    /// Uniform random baseline.
    pub baseline: GraphMetrics,
}

impl Fig3Result {
    /// Summary table of final values from both starts — the convergence
    /// claim is that the two columns agree per protocol.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "cc (lattice)",
            "cc (random)",
            "deg (lattice)",
            "deg (random)",
            "apl (lattice)",
            "apl (random)",
        ]);
        t.row(vec![
            "uniform random baseline".into(),
            String::new(),
            fmt_f64(self.baseline.clustering_coefficient, 4),
            String::new(),
            fmt_f64(self.baseline.average_degree, 2),
            String::new(),
            fmt_f64(self.baseline.path_lengths.average, 3),
        ]);
        for (l, r) in self.lattice.iter().zip(&self.random) {
            let last = |s: &pss_stats::TimeSeries| s.values().last().copied().unwrap_or(f64::NAN);
            t.row(vec![
                l.policy.to_string(),
                fmt_f64(last(&l.clustering), 4),
                fmt_f64(last(&r.clustering), 4),
                fmt_f64(last(&l.degree), 2),
                fmt_f64(last(&r.degree), 2),
                fmt_f64(last(&l.path_length), 3),
                fmt_f64(last(&r.path_length), 3),
            ]);
        }
        t
    }

    /// Long-format series table covering both scenarios.
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(vec![
            "scenario",
            "protocol",
            "cycle",
            "clustering",
            "avg_degree",
            "avg_path_length",
        ]);
        for d in self.lattice.iter().chain(&self.random) {
            for ((cycle, cc), (deg, apl)) in d
                .clustering
                .iter()
                .zip(d.degree.values().iter().zip(d.path_length.values()))
            {
                t.row(vec![
                    d.scenario.label().to_owned(),
                    d.policy.to_string(),
                    cycle.to_string(),
                    fmt_f64(cc, 6),
                    fmt_f64(*deg, 4),
                    fmt_f64(*apl, 4),
                ]);
            }
        }
        t
    }
}

/// Runs the Figure 3 experiment: 2 scenarios × all protocols in parallel.
pub fn run(config: &Fig3Config) -> Fig3Result {
    let scale = config.scale;
    let cycles = config.cycles;
    let jobs: Vec<(PolicyTriple, ScenarioKind)> = config
        .protocols
        .iter()
        .flat_map(|&p| [(p, ScenarioKind::Lattice), (p, ScenarioKind::Random)])
        .collect();
    let results = parallel_map(jobs, move |(policy, kind)| {
        run_dynamics(policy, scale, kind, cycles, 1)
    });
    let (lattice, random): (Vec<_>, Vec<_>) = results
        .into_iter()
        .partition(|d| d.scenario == ScenarioKind::Lattice);
    Fig3Result {
        lattice,
        random,
        baseline: random_baseline(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_from_both_starts_at_tiny_scale() {
        let scale = Scale {
            nodes: 200,
            cycles: 30,
            view_size: 10,
            seed: 99,
        };
        let mut config = Fig3Config::at_scale(scale);
        config.protocols = vec![PolicyTriple::newscast()];
        let result = run(&config);
        assert_eq!(result.lattice.len(), 1);
        assert_eq!(result.random.len(), 1);
        let last = |s: &pss_stats::TimeSeries| *s.values().last().unwrap();
        let cc_l = last(&result.lattice[0].clustering);
        let cc_r = last(&result.random[0].clustering);
        // The paper's claim: properties converge to the same value from
        // radically different starts.
        assert!(
            (cc_l - cc_r).abs() < 0.08,
            "lattice {cc_l} vs random {cc_r}"
        );
        let deg_l = last(&result.lattice[0].degree);
        let deg_r = last(&result.random[0].degree);
        assert!((deg_l - deg_r).abs() < 3.0, "degree {deg_l} vs {deg_r}");
        let text = result.table().to_string();
        assert!(text.contains("(rand,head,pushpull)"));
        assert!(!result.series_table().is_empty());
    }
}
