//! **Figure 4** — evolution of the degree distribution (log-log).
//!
//! Starting from the random topology, the degree distribution is captured
//! at exponentially spaced cycles (0, 3, 30, 300). The paper's key split:
//! `head` view selection yields a balanced, fast-converging distribution,
//! `rand` view selection an unbalanced, heavy-tailed, slowly converging one.

use pss_core::PolicyTriple;
use pss_sim::scenario;
use pss_stats::CountDistribution;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Figure 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Common scale.
    pub scale: Scale,
    /// Cycles at which to capture the distribution (cycle 0 = the initial
    /// random topology). Defaults to `{0, 1%, 10%, 100%}` of the cycle
    /// budget, matching the paper's 0/3/30/300.
    pub capture_at: Vec<u64>,
    /// Protocols (default: the paper's eight).
    pub protocols: Vec<PolicyTriple>,
}

impl Fig4Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Fig4Config {
            scale,
            capture_at: vec![0, scale.cycles / 100, scale.cycles / 10, scale.cycles],
            protocols: PolicyTriple::paper_eight().to_vec(),
        }
    }
}

/// Degree distributions of one protocol at the capture cycles.
#[derive(Debug, Clone)]
pub struct DegreeEvolution {
    /// The protocol.
    pub policy: PolicyTriple,
    /// `(cycle, distribution)` pairs in capture order.
    pub captures: Vec<(u64, CountDistribution)>,
}

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// One evolution per protocol.
    pub evolutions: Vec<DegreeEvolution>,
}

impl Fig4Result {
    /// Summary table: distribution shape at the final capture.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "mean degree",
            "max degree",
            "degree variance",
            "p99 degree",
        ]);
        for e in &self.evolutions {
            if let Some((_, dist)) = e.captures.last() {
                t.row(vec![
                    e.policy.to_string(),
                    fmt_f64(dist.mean(), 2),
                    dist.max().map_or("-".into(), |m| m.to_string()),
                    fmt_f64(dist.variance(), 1),
                    dist.quantile(0.99).map_or("-".into(), |q| q.to_string()),
                ]);
            }
        }
        t
    }

    /// Long-format table: one row per (protocol, cycle, degree).
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(vec!["protocol", "cycle", "degree", "frequency"]);
        for e in &self.evolutions {
            for (cycle, dist) in &e.captures {
                for (degree, count) in dist.iter() {
                    t.row(vec![
                        e.policy.to_string(),
                        cycle.to_string(),
                        degree.to_string(),
                        count.to_string(),
                    ]);
                }
            }
        }
        t
    }
}

/// Runs the Figure 4 experiment (protocols in parallel).
pub fn run(config: &Fig4Config) -> Fig4Result {
    let scale = config.scale;
    let mut capture_at = config.capture_at.clone();
    capture_at.sort_unstable();
    capture_at.dedup();

    let evolutions = parallel_map(config.protocols.clone(), move |policy| {
        let protocol = scale.protocol(policy);
        let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0xf14);
        let mut captures = Vec::with_capacity(capture_at.len());
        for &cycle in &capture_at {
            let to_run = cycle - sim.cycle();
            sim.run_cycles(to_run);
            let dist = sim.snapshot().undirected().degree_distribution();
            captures.push((cycle, dist));
        }
        DegreeEvolution { policy, captures }
    });

    Fig4Result { evolutions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_selection_is_more_balanced_than_rand() {
        let scale = Scale {
            nodes: 800,
            cycles: 80,
            view_size: 20,
            seed: 11,
        };
        let config = Fig4Config {
            scale,
            capture_at: vec![0, 80],
            protocols: vec![
                "(rand,head,pushpull)".parse().unwrap(),
                "(rand,rand,pushpull)".parse().unwrap(),
            ],
        };
        let result = run(&config);
        assert_eq!(result.evolutions.len(), 2);
        let var = |i: usize| result.evolutions[i].captures.last().unwrap().1.variance();
        // The paper's headline split: head view selection balances degrees,
        // rand view selection produces a much wider distribution.
        assert!(
            var(1) > 2.0 * var(0),
            "rand variance {} should dwarf head variance {}",
            var(1),
            var(0)
        );
        // Capture at cycle 0 is the initial random graph for both.
        let init0 = &result.evolutions[0].captures[0].1;
        assert_eq!(init0.total(), 800);
        assert!(!result.table().is_empty());
        assert!(!result.series_table().is_empty());
    }
}
