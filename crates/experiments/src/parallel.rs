//! A tiny deterministic parallel-map over scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a scoped thread pool and returns the results
/// in input order.
///
/// Work items are heavyweight (whole simulation runs), so a shared atomic
/// index plus a mutex-guarded result vector is plenty. Determinism: each
/// item carries its own seed, so scheduling order cannot affect results.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("unpoisoned")
                    .take()
                    .expect("taken once");
                let out = f(item);
                *results[i].lock().expect("unpoisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned")
                .expect("worker filled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![41], |i: i32| i + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let out = parallel_map((0..50).collect(), |i: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }
}
