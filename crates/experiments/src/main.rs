//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! experiments <command> [options]
//!
//! commands:
//!   table1   partitioning of push protocols (growing overlay)
//!   fig2     property dynamics in the growing scenario
//!   fig3     convergence from lattice and random starts
//!   fig4     degree distribution evolution
//!   table2   degree statistics of traced nodes
//!   fig5     degree autocorrelation of a fixed node
//!   fig6     robustness to massive node removal
//!   fig7     self-healing after 50% node failure
//!   policies sweep of all 27 policy combinations (Section 4.3)
//!   async    event-driven engine comparison (extension; --shards runs the
//!            sharded event engine per shard count, enabling --scale million)
//!   apps     broadcast/aggregation sampling-quality comparison (extension)
//!   hs       healer/swapper (H,S) ablation (extension)
//!   scaling  sharded-engine throughput vs shard count (extension)
//!   net      live loopback UDP cluster: convergence + throughput through
//!            the wire codec (--workers sets the runtime-thread count)
//!   workload membership-dynamics schedule on the cycle AND event engines
//!            (--schedule "quiet:10,kill:0.5,churn:0.01x20"; the grammar
//!            also has flash:N[herd], part:GxP@L lossy partitions, (…)xR
//!            repetition — see pss_sim::workload); --freshness both runs
//!            hop-count and timestamp age back to back and gates on the
//!            freshness ordering under partition schedules
//!   matrix   failure-physics scenario matrix: policy × freshness ×
//!            failure family (churn, catastrophe, herd, lossy partition),
//!            gated on timestamp freshness healing the lossy long
//!            partition that hop-count leaves split
//!   adversary Byzantine attack sweep: one adv: schedule across the honest
//!            policy corners (newscast, blind, H&S healer, H&S swapper)
//!            on both engines (--schedule "adv:hub@0.02,quiet:30")
//!   protocols broadcast + aggregation under membership schedules: policy ×
//!            sampler (overlay vs oracle) × engine per schedule, including
//!            a Table-1-style partition schedule under application load
//!            (--schedule overrides the schedule list)
//!   metrics  exercise the telemetry registry across every stack and print
//!            the per-series quantile table plus the Prometheus exposition
//!            (--out writes metrics.prom and metrics.json)
//!   all      everything above, in order
//!
//! options:
//!   --scale paper|small|tiny|million  preset scale     [default: paper]
//!   --nodes N                  override population size
//!   --cycles N                 override cycle budget
//!   --view-size C              override view size
//!   --runs R                   override runs/repetitions (table1, fig6)
//!   --shards LIST              comma-separated shard counts (scaling, async;
//!                              workload uses the first entry)
//!   --workers N                worker-pool width override (scaling, async,
//!                              workload); set PSS_PIN_WORKERS=1 to pin pool
//!                              threads to cores
//!   --schedule S               workload schedule string (workload)
//!   --freshness hop|timestamp|both  descriptor-age mode (workload)
//!   --seed S                   override master seed
//!   --out DIR                  also write CSV series under DIR
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pss_experiments::report::Table;
use pss_experiments::{
    adversary, apps, asynchrony, fig2, fig3, fig4, fig5, fig6, fig7, hs_ablation, metrics, net,
    policies, protocols, scaling, table1, table2, workload, Scale,
};
use pss_telemetry::EventKind;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: String,
    scale: Scale,
    runs: Option<usize>,
    shards: Option<Vec<usize>>,
    workers: Option<usize>,
    schedule: Option<String>,
    freshness: workload::FreshnessChoice,
    out: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut command = None;
    let mut scale = Scale::paper();
    let mut nodes = None;
    let mut cycles = None;
    let mut view_size = None;
    let mut seed = None;
    let mut runs = None;
    let mut shards = None;
    let mut workers = None;
    let mut schedule = None;
    let mut freshness = workload::FreshnessChoice::default();
    let mut out = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => {
                scale = match grab("--scale")?.as_str() {
                    "paper" => Scale::paper(),
                    "small" => Scale::small(),
                    "tiny" => Scale::tiny(),
                    "million" => Scale::million(),
                    other => return Err(format!("unknown scale preset `{other}`")),
                }
            }
            "--nodes" => nodes = Some(parse_num(&grab("--nodes")?)?),
            "--cycles" => cycles = Some(parse_num(&grab("--cycles")?)? as u64),
            "--view-size" => view_size = Some(parse_num(&grab("--view-size")?)?),
            "--seed" => seed = Some(parse_num(&grab("--seed")?)? as u64),
            "--runs" => runs = Some(parse_num(&grab("--runs")?)?),
            "--shards" => {
                let list = grab("--shards")?
                    .split(',')
                    .map(parse_num)
                    .collect::<Result<Vec<usize>, String>>()?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--shards needs positive counts".into());
                }
                shards = Some(list);
            }
            "--workers" => {
                let n = parse_num(&grab("--workers")?)?;
                if n == 0 {
                    return Err("--workers needs a positive count".into());
                }
                workers = Some(n);
            }
            "--schedule" => schedule = Some(grab("--schedule")?),
            "--freshness" => freshness = workload::FreshnessChoice::parse(&grab("--freshness")?)?,
            "--out" => out = Some(PathBuf::from(grab("--out")?)),
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if command.is_some() {
                    return Err(format!("unexpected extra argument `{other}`"));
                }
                command = Some(other.to_owned());
            }
        }
    }

    if let Some(n) = nodes {
        scale.nodes = n;
    }
    if let Some(c) = cycles {
        scale.cycles = c;
    }
    if let Some(v) = view_size {
        scale.view_size = v;
    }
    if let Some(s) = seed {
        scale.seed = s;
    }
    if scale.nodes < 2 || scale.view_size == 0 {
        return Err("need at least 2 nodes and a positive view size".into());
    }

    Ok(Options {
        command: command.ok_or_else(|| "no command given (try --help)".to_owned())?,
        scale,
        runs,
        shards,
        workers,
        schedule,
        freshness,
        out,
    })
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("invalid number `{s}`"))
}

fn emit(opts: &Options, name: &str, summary: &Table, series: Option<&Table>) {
    println!("== {name} ==");
    print!("{summary}");
    println!();
    if let Some(dir) = &opts.out {
        let write = |suffix: &str, table: &Table| {
            let path = dir.join(format!("{name}{suffix}.csv"));
            match table.write_csv(&path) {
                Ok(()) => println!("   wrote {}", path.display()),
                Err(e) => eprintln!("   failed to write {}: {e}", path.display()),
            }
        };
        write("", summary);
        if let Some(series) = series {
            write("_series", series);
        }
    }
    telemetry_footer(name);
}

/// One-line registry digest after every experiment's summary table:
/// series count and total timed observations. Silent when telemetry is
/// off (`PSS_TELEMETRY=0`) or nothing recorded yet.
fn telemetry_footer(name: &str) {
    if !pss_telemetry::enabled() {
        return;
    }
    let rows = pss_telemetry::global().rows();
    if rows.is_empty() {
        return;
    }
    let observations: u64 = rows
        .iter()
        .filter(|r| r.kind == "histogram")
        .map(|r| r.value)
        .sum();
    eprintln!(
        "   [telemetry after {name}: {} series, {observations} timed observations — \
         run `experiments metrics` for quantiles]",
        rows.len()
    );
}

/// Records a health-gate evaluation in the flight recorder and passes
/// the verdict through (`a` = 1 pass / 0 fail).
fn gate(name: &'static str, pass: bool) -> bool {
    pss_telemetry::flight().record(EventKind::GateEval, name, u64::from(pass), 0);
    pass
}

fn run_command(opts: &Options, command: &str) -> Result<(), String> {
    let scale = opts.scale;
    let started = Instant::now();
    match command {
        "table1" => {
            let mut config = table1::Table1Config::at_scale(scale);
            if let Some(r) = opts.runs {
                config.runs = r;
            }
            let result = table1::run(&config);
            emit(opts, "table1", &result.table(), None);
        }
        "fig2" => {
            let config = fig2::Fig2Config::at_scale(scale);
            let result = fig2::run(&config);
            emit(opts, "fig2", &result.table(), Some(&result.series_table()));
        }
        "fig3" => {
            let config = fig3::Fig3Config::at_scale(scale);
            let result = fig3::run(&config);
            emit(opts, "fig3", &result.table(), Some(&result.series_table()));
        }
        "fig4" => {
            let config = fig4::Fig4Config::at_scale(scale);
            let result = fig4::run(&config);
            emit(opts, "fig4", &result.table(), Some(&result.series_table()));
        }
        "table2" => {
            let config = table2::Table2Config::at_scale(scale);
            let result = table2::run(&config);
            emit(opts, "table2", &result.table(), None);
        }
        "fig5" => {
            let config = fig5::Fig5Config::at_scale(scale);
            let result = fig5::run(&config);
            emit(opts, "fig5", &result.table(), Some(&result.series_table()));
        }
        "fig6" => {
            let mut config = fig6::Fig6Config::at_scale(scale);
            if let Some(r) = opts.runs {
                config.repetitions = r;
            }
            let result = fig6::run(&config);
            emit(opts, "fig6", &result.table(), Some(&result.series_table()));
        }
        "fig7" => {
            let config = fig7::Fig7Config::at_scale(scale);
            let result = fig7::run(&config);
            emit(opts, "fig7", &result.table(), Some(&result.series_table()));
        }
        "policies" => {
            // The sweep runs 27 simulations; cap the default cost.
            let mut sweep_scale = scale;
            sweep_scale.nodes = sweep_scale.nodes.min(1000);
            sweep_scale.cycles = sweep_scale.cycles.min(100);
            let config = policies::PoliciesConfig::at_scale(sweep_scale);
            let result = policies::run(&config);
            emit(opts, "policies", &result.table(), None);
        }
        "async" => {
            let mut async_scale = scale;
            if opts.shards.is_none() {
                // The sequential event engine caps out around here; the
                // sharded path (--shards) is the large-N route.
                async_scale.nodes = async_scale.nodes.min(2000);
            }
            async_scale.cycles = async_scale.cycles.min(100);
            let mut config = asynchrony::AsyncConfig::at_scale(async_scale);
            config.shard_counts = opts.shards.clone();
            config.workers = opts.workers;
            let result = asynchrony::run(&config);
            emit(opts, "async", &result.table(), None);
        }
        "apps" => {
            let mut apps_scale = scale;
            apps_scale.nodes = apps_scale.nodes.min(2000);
            apps_scale.cycles = apps_scale.cycles.min(100);
            let config = apps::AppsConfig::at_scale(apps_scale);
            let result = apps::run(&config);
            emit(opts, "apps", &result.table(), None);
        }
        "hs" => {
            let mut hs_scale = scale;
            hs_scale.nodes = hs_scale.nodes.min(2000);
            hs_scale.cycles = hs_scale.cycles.min(100);
            let config = hs_ablation::HsAblationConfig::at_scale(hs_scale);
            let result = hs_ablation::run(&config);
            emit(opts, "hs", &result.table(), None);
        }
        "scaling" => {
            let mut config = scaling::ScalingConfig::at_scale(scale);
            if let Some(shards) = &opts.shards {
                config.shard_counts = shards.clone();
            }
            config.workers = opts.workers;
            let result = scaling::run(&config);
            emit(opts, "scaling", &result.table(), None);
            eprintln!(
                "   best speedup over 1 shard: {:.2}x (N = {}, {} cycles)",
                result.best_speedup(),
                result.nodes,
                result.cycles
            );
        }
        "net" => {
            let mut config = net::NetConfig::at_scale(scale);
            if let Some(workers) = opts.workers {
                config.runtimes = workers;
            }
            let result = net::run(&config);
            emit(opts, "net", &result.table(), None);
            eprintln!(
                "   {} nodes on {} runtimes: {} frames/s, {} exchanges/s, healthy = {}",
                result.nodes,
                result.runtimes,
                fmt_num(result.report.frames_per_sec()),
                fmt_num(result.report.exchanges_per_sec()),
                result.healthy()
            );
            if !gate("net", result.healthy()) {
                return Err("loopback cluster failed to converge cleanly".into());
            }
        }
        "workload" => {
            let mut wl_scale = scale;
            // Two engines × full per-period metrics: cap the population
            // and say so, rather than silently measuring a different N.
            wl_scale.nodes = wl_scale.nodes.min(20_000);
            if wl_scale.nodes < scale.nodes {
                eprintln!(
                    "   note: workload caps the population at {} nodes ({} requested)",
                    wl_scale.nodes, scale.nodes
                );
            }
            let mut config = workload::WorkloadConfig::at_scale(wl_scale);
            if let Some(schedule) = &opts.schedule {
                config.schedule = schedule.clone();
            }
            if let Some(shards) = &opts.shards {
                config.shards = shards[0];
            }
            config.workers = opts.workers;
            config.freshness = opts.freshness;
            let run = workload::run(&config)?;
            for result in &run.results {
                emit(opts, result.emit_name(), &result.table(), None);
                eprintln!(
                    "   {} nodes, schedule `{}`, {} shards, {} freshness: healthy = {} \
                     (periods marked * ran under a partition)",
                    result.nodes,
                    config.schedule,
                    config.shards,
                    match result.freshness {
                        pss_core::Freshness::HopCount => "hop-count",
                        pss_core::Freshness::Timestamp => "timestamp",
                    },
                    result.healthy()
                );
            }
            let verdict = run.verdict();
            eprintln!(
                "   gate = {}{}",
                if verdict.is_ok() { "pass" } else { "FAIL" },
                if run.partitioned && run.results.len() == 2 {
                    " (cross-mode freshness ordering asserted)"
                } else {
                    ""
                }
            );
            if !gate("workload", verdict.is_ok()) {
                return Err(format!("workload gate failed: {}", verdict.unwrap_err()));
            }
        }
        "matrix" => {
            let mut mx_scale = scale;
            // Sixteen cross-engine runs: cap the population and say so.
            mx_scale.nodes = mx_scale.nodes.min(2_000);
            if mx_scale.nodes < scale.nodes {
                eprintln!(
                    "   note: matrix caps the population at {} nodes ({} requested)",
                    mx_scale.nodes, scale.nodes
                );
            }
            let mut config = workload::MatrixConfig::at_scale(mx_scale);
            if let Some(shards) = &opts.shards {
                config.shards = shards[0];
            }
            config.workers = opts.workers;
            let result = workload::matrix(&config)?;
            emit(opts, "matrix", &result.table(), None);
            let verdict = result.verdict();
            eprintln!(
                "   {} nodes, {} cells: gate = {}",
                result.nodes,
                result.cells.len(),
                if verdict.is_ok() { "pass" } else { "FAIL" }
            );
            if !gate("matrix", verdict.is_ok()) {
                return Err(format!("matrix gate failed: {}", verdict.unwrap_err()));
            }
        }
        "adversary" => {
            let mut adv_scale = scale;
            // Four policy corners × two engines with full per-period
            // audits: cap the population and say so.
            adv_scale.nodes = adv_scale.nodes.min(10_000);
            if adv_scale.nodes < scale.nodes {
                eprintln!(
                    "   note: adversary caps the population at {} nodes ({} requested)",
                    adv_scale.nodes, scale.nodes
                );
            }
            let mut config = adversary::AdversaryConfig::at_scale(adv_scale);
            if let Some(schedule) = &opts.schedule {
                config.schedule = schedule.clone();
            }
            if let Some(shards) = &opts.shards {
                config.shards = shards[0];
            }
            config.workers = opts.workers;
            let result = adversary::run(&config)?;
            emit(opts, "adversary", &result.table(), None);
            eprintln!(
                "   {} nodes, schedule `{}`, {} shards: healthy = {}",
                result.nodes,
                config.schedule,
                config.shards,
                result.healthy()
            );
            if !gate("adversary", result.healthy()) {
                return Err(
                    "adversary sweep broke the honest overlay or the defense ordering".into(),
                );
            }
        }
        "protocols" => {
            let mut app_scale = scale;
            // Sixteen runs × two protocols per run: cap the population
            // and say so, the workload/adversary convention.
            app_scale.nodes = app_scale.nodes.min(10_000);
            if app_scale.nodes < scale.nodes {
                eprintln!(
                    "   note: protocols caps the population at {} nodes ({} requested)",
                    app_scale.nodes, scale.nodes
                );
            }
            let mut config = protocols::ProtocolsConfig::at_scale(app_scale);
            if let Some(schedule) = &opts.schedule {
                config.schedules = vec![("custom".into(), schedule.clone())];
            }
            if let Some(shards) = &opts.shards {
                config.shards = shards[0];
            }
            config.workers = opts.workers;
            let result = protocols::run(&config)?;
            emit(
                opts,
                "protocols",
                &result.table(),
                Some(&result.series_table()),
            );
            eprintln!(
                "   {} nodes, {} runs: healthy = {}",
                result.nodes,
                result.runs.len(),
                result.healthy()
            );
            if !gate("protocols", result.healthy()) {
                return Err(
                    "an application run missed delivery or left an unhealthy overlay".into(),
                );
            }
        }
        "metrics" => {
            let mut config = metrics::MetricsConfig::at_scale(scale);
            if let Some(shards) = &opts.shards {
                config.shards = shards[0];
            }
            config.workers = opts.workers;
            let result = metrics::run(&config)?;
            emit(opts, "metrics", &result.table(), None);
            print!("{}", result.prometheus);
            if let Some(dir) = &opts.out {
                for (suffix, body) in [("prom", &result.prometheus), ("json", &result.json)] {
                    let path = dir.join(format!("metrics.{suffix}"));
                    match std::fs::write(&path, body) {
                        Ok(()) => println!("   wrote {}", path.display()),
                        Err(e) => eprintln!("   failed to write {}: {e}", path.display()),
                    }
                }
            }
            eprintln!(
                "   {} series, flight recorder {}/{} events buffered, healthy = {}",
                result.rows.len(),
                result.flight_len,
                result.flight_recorded,
                result.healthy()
            );
            if !gate("metrics", result.healthy()) {
                return Err(format!(
                    "telemetry exercise left metric families empty: {:?}",
                    result.missing_families()
                ));
            }
        }
        "all" => {
            for c in [
                "table1",
                "fig2",
                "fig3",
                "fig4",
                "table2",
                "fig5",
                "fig6",
                "fig7",
                "policies",
                "async",
                "apps",
                "hs",
                "scaling",
                "net",
                "workload",
                "matrix",
                "adversary",
                "protocols",
                // Last: the telemetry exercise resets the global registry.
                "metrics",
            ] {
                run_command(opts, c)?;
            }
            return Ok(());
        }
        other => return Err(format!("unknown command `{other}` (try --help)")),
    }
    eprintln!("[{command} finished in {:.1?}]", started.elapsed());
    Ok(())
}

fn main() -> ExitCode {
    pss_telemetry::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg == "help" {
                eprintln!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run_command(&opts, &opts.command.clone()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            // A failed health gate is exactly what the flight recorder
            // is for: dump the event trail next to the error.
            let flight = pss_telemetry::flight();
            if !flight.is_empty() {
                let path = pss_telemetry::dump_path();
                match flight.dump_to_file(&path) {
                    Ok(()) => eprintln!("flight recorder dumped to {}", path.display()),
                    Err(e) => eprintln!("flight recorder dump failed: {e}"),
                }
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: experiments \
       <table1|fig2|fig3|fig4|table2|fig5|fig6|fig7|policies|async|apps|hs|scaling|net|workload|matrix|adversary|protocols|metrics|all>
       [--scale paper|small|tiny|million] [--nodes N] [--cycles N] [--view-size C]
       [--runs R] [--shards LIST] [--workers N] [--schedule S]
       [--freshness hop|timestamp|both] [--seed S] [--out DIR]";

/// Human throughput formatting for the `net` summary line.
fn fmt_num(x: f64) -> String {
    if x >= 1000.0 {
        format!("{:.1}k", x / 1000.0)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_defaults() {
        let o = parse_args(&args("table1")).unwrap();
        assert_eq!(o.command, "table1");
        assert_eq!(o.scale, Scale::paper());
        assert_eq!(o.runs, None);
        assert_eq!(o.out, None);
    }

    #[test]
    fn parses_scale_presets_and_overrides() {
        let o = parse_args(&args("fig7 --scale tiny --nodes 500 --cycles 70 --seed 9")).unwrap();
        assert_eq!(o.scale.nodes, 500);
        assert_eq!(o.scale.cycles, 70);
        assert_eq!(o.scale.seed, 9);
        assert_eq!(o.scale.view_size, Scale::tiny().view_size);
    }

    #[test]
    fn parses_runs_and_out() {
        let o = parse_args(&args("fig6 --runs 100 --out /tmp/results")).unwrap();
        assert_eq!(o.runs, Some(100));
        assert_eq!(o.out, Some(PathBuf::from("/tmp/results")));
    }

    #[test]
    fn parses_shards_and_workers() {
        let o = parse_args(&args("scaling --scale tiny --shards 1,2,4 --workers 2")).unwrap();
        assert_eq!(o.shards, Some(vec![1, 2, 4]));
        assert_eq!(o.workers, Some(2));
        assert!(parse_args(&args("scaling --shards 0,2")).is_err());
        assert!(parse_args(&args("scaling --shards 1,x")).is_err());
        assert!(parse_args(&args("scaling --workers 0")).is_err());
    }

    #[test]
    fn parses_schedule() {
        let o = parse_args(&args("workload --schedule quiet:5,kill:0.5 --shards 2")).unwrap();
        assert_eq!(o.schedule.as_deref(), Some("quiet:5,kill:0.5"));
        assert!(parse_args(&args("workload --schedule")).is_err());
    }

    #[test]
    fn parses_freshness() {
        let o = parse_args(&args("workload --freshness both")).unwrap();
        assert_eq!(o.freshness, workload::FreshnessChoice::Both);
        let o = parse_args(&args("workload --freshness timestamp")).unwrap();
        assert_eq!(o.freshness, workload::FreshnessChoice::Timestamp);
        let o = parse_args(&args("workload")).unwrap();
        assert_eq!(o.freshness, workload::FreshnessChoice::Hop);
        assert!(parse_args(&args("workload --freshness stale")).is_err());
        assert!(parse_args(&args("workload --freshness")).is_err());
    }

    #[test]
    fn numbers_allow_underscores() {
        let o = parse_args(&args("fig2 --nodes 10_000")).unwrap();
        assert_eq!(o.scale.nodes, 10_000);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("")).is_err());
        assert!(parse_args(&args("--scale tiny")).is_err()); // no command
        assert!(parse_args(&args("fig2 --scale huge")).is_err());
        assert!(parse_args(&args("fig2 --nodes abc")).is_err());
        assert!(parse_args(&args("fig2 extra")).is_err());
        assert!(parse_args(&args("fig2 --nodes")).is_err());
        assert!(parse_args(&args("fig2 --bogus 1")).is_err());
        assert!(parse_args(&args("fig2 --nodes 1")).is_err()); // too small
    }

    #[test]
    fn unknown_command_is_rejected_late() {
        let o = parse_args(&args("nonsense --scale tiny")).unwrap();
        assert!(run_command(&o, "nonsense").is_err());
    }

    #[test]
    fn tiny_end_to_end_policies() {
        // Smoke: run the cheapest real command end-to-end.
        let mut o = parse_args(&args("apps --scale tiny")).unwrap();
        o.scale.nodes = 120;
        o.scale.cycles = 15;
        assert!(run_command(&o, "apps").is_ok());
    }
}
