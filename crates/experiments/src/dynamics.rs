//! Shared machinery for the per-cycle dynamics experiments (Figures 2, 3).

use pss_core::PolicyTriple;
use pss_graph::{gen, GraphMetrics, MetricsConfig};
use pss_sim::observe::{run_observed, MetricsRecorder};
use pss_sim::{scenario, Simulation};
use pss_stats::TimeSeries;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::Scale;

/// Which bootstrap scenario a dynamics run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Growing overlay with `per_cycle` joiners (Section 5.1).
    Growing {
        /// Joiners per cycle.
        per_cycle: usize,
    },
    /// Ring lattice start (Section 5.2).
    Lattice,
    /// Uniform random start (Section 5.3).
    Random,
}

impl ScenarioKind {
    /// Short label used in CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Growing { .. } => "growing",
            ScenarioKind::Lattice => "lattice",
            ScenarioKind::Random => "random",
        }
    }

    fn build(&self, policy: PolicyTriple, scale: Scale, seed: u64) -> Simulation {
        let protocol = scale.protocol(policy);
        match *self {
            ScenarioKind::Growing { per_cycle } => {
                scenario::growing_overlay(&protocol, scale.nodes, per_cycle, seed)
            }
            ScenarioKind::Lattice => scenario::lattice_overlay(&protocol, scale.nodes, seed),
            ScenarioKind::Random => scenario::random_overlay(&protocol, scale.nodes, seed),
        }
    }
}

/// The three per-cycle property series of one protocol in one scenario.
#[derive(Debug, Clone)]
pub struct ProtocolDynamics {
    /// The protocol.
    pub policy: PolicyTriple,
    /// The scenario it ran in.
    pub scenario: ScenarioKind,
    /// Clustering coefficient per cycle.
    pub clustering: TimeSeries,
    /// Average node degree per cycle.
    pub degree: TimeSeries,
    /// Average path length per cycle.
    pub path_length: TimeSeries,
    /// Whether the final overlay was connected.
    pub connected_at_end: bool,
    /// Seeds tried until a connected run was found (1 = first try).
    pub attempts: u32,
}

/// Runs one protocol through `cycles` cycles of a scenario, recording the
/// three headline properties each cycle.
///
/// If `require_connected` is positive, up to that many seeds are tried until
/// the final overlay is connected — the paper plots non-partitioned runs of
/// the push protocols in Figure 2 ("a non partitioned run of both
/// (rand,rand,push) and (tail,rand,push) is included").
pub fn run_dynamics(
    policy: PolicyTriple,
    scale: Scale,
    kind: ScenarioKind,
    cycles: u64,
    require_connected: u32,
) -> ProtocolDynamics {
    let attempts_allowed = require_connected.max(1);
    let mut last = None;
    for attempt in 0..attempts_allowed {
        let seed = scale.run_seed(u64::from(attempt) * 7919 + 1);
        let mut sim = kind.build(policy, scale, seed);
        let mut recorder = MetricsRecorder::new(MetricsConfig::sampled(), seed ^ 0xabcd);
        run_observed(&mut sim, cycles, &mut [&mut recorder]);
        let connected = {
            let graph = sim.snapshot().undirected();
            pss_graph::components::is_connected(&graph)
        };
        let dynamics = ProtocolDynamics {
            policy,
            scenario: kind,
            clustering: recorder.clustering().clone(),
            degree: recorder.average_degree().clone(),
            path_length: recorder.path_length().clone(),
            connected_at_end: connected,
            attempts: attempt + 1,
        };
        if connected || attempt + 1 == attempts_allowed {
            return dynamics;
        }
        last = Some(dynamics);
    }
    last.expect("loop executed at least once")
}

/// Measures the paper's uniform random baseline (each view a uniform random
/// sample) at the given scale — the horizontal reference lines of
/// Figures 2 and 3.
pub fn random_baseline(scale: Scale) -> GraphMetrics {
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xba5e_b411);
    let g = gen::uniform_view_digraph(scale.nodes, scale.view_size, &mut rng).to_undirected();
    let config = MetricsConfig {
        clustering_samples: Some(2000.min(scale.nodes)),
        path_sources: Some(50.min(scale.nodes)),
    };
    GraphMetrics::measure(&g, &config, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ScenarioKind::Growing { per_cycle: 5 }.label(), "growing");
        assert_eq!(ScenarioKind::Lattice.label(), "lattice");
        assert_eq!(ScenarioKind::Random.label(), "random");
    }

    #[test]
    fn dynamics_records_every_cycle() {
        let scale = Scale {
            nodes: 120,
            cycles: 10,
            view_size: 10,
            seed: 5,
        };
        let d = run_dynamics(PolicyTriple::newscast(), scale, ScenarioKind::Random, 10, 1);
        assert_eq!(d.clustering.len(), 10);
        assert_eq!(d.degree.len(), 10);
        assert_eq!(d.path_length.len(), 10);
        assert!(d.connected_at_end);
        assert_eq!(d.attempts, 1);
    }

    #[test]
    fn growing_dynamics_reaches_target() {
        let scale = Scale {
            nodes: 100,
            cycles: 20,
            view_size: 8,
            seed: 6,
        };
        let d = run_dynamics(
            PolicyTriple::newscast(),
            scale,
            ScenarioKind::Growing { per_cycle: 10 },
            20,
            1,
        );
        // Degree series grows as the population does.
        let first = d.degree.values()[0];
        let last = *d.degree.values().last().unwrap();
        assert!(last > first);
    }

    #[test]
    fn baseline_close_to_theory() {
        let scale = Scale {
            nodes: 1000,
            cycles: 1,
            view_size: 20,
            seed: 7,
        };
        let b = random_baseline(scale);
        // Average degree just under 2c (duplicate edges), clustering near
        // 2c/n, path length around log(n)/log(degree).
        assert!(b.average_degree > 38.0 && b.average_degree <= 40.0);
        assert!(b.clustering_coefficient < 0.08);
        assert!(b.path_lengths.average > 1.5 && b.path_lengths.average < 3.5);
    }
}
