//! **Figure 6** — robustness of the converged overlays to massive node
//! removal.
//!
//! The cycle-300 overlay of the random-init scenario is damaged by removing
//! a growing fraction of random nodes; the plot shows the average number of
//! nodes left outside the largest connected cluster. The paper observed no
//! partitioning at all below 69 % removal, and a single dominant cluster
//! even beyond.

use pss_core::PolicyTriple;
use pss_graph::components::connected_components;
use pss_graph::UGraph;
use pss_sim::scenario;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Common scale (cycles = convergence budget before damaging).
    pub scale: Scale,
    /// Removal percentages to test (paper x-axis: 65–95).
    pub removal_percents: Vec<f64>,
    /// Removal repetitions per point (paper: 100).
    pub repetitions: usize,
    /// Protocols (default: the paper's eight).
    pub protocols: Vec<PolicyTriple>,
}

impl Fig6Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Fig6Config {
            scale,
            removal_percents: vec![65.0, 70.0, 75.0, 80.0, 85.0, 90.0, 95.0],
            repetitions: 30,
            protocols: PolicyTriple::paper_eight().to_vec(),
        }
    }
}

/// Robustness curve of one protocol.
#[derive(Debug, Clone)]
pub struct RemovalCurve {
    /// The protocol.
    pub policy: PolicyTriple,
    /// `(percent_removed, avg nodes outside largest cluster)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Smallest tested removal percentage at which any repetition
    /// partitioned the overlay, if any.
    pub first_partition_percent: Option<f64>,
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// One curve per protocol.
    pub curves: Vec<RemovalCurve>,
}

impl Fig6Result {
    /// Table with one row per (protocol, percent) — the plotted series.
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "removed %",
            "avg nodes outside largest cluster",
        ]);
        for c in &self.curves {
            for &(pct, avg) in &c.points {
                t.row(vec![c.policy.to_string(), fmt_f64(pct, 1), fmt_f64(avg, 2)]);
            }
        }
        t
    }

    /// Summary: first partitioning percentage per protocol.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "first partition at (%)",
            "avg outside largest @95%",
        ]);
        for c in &self.curves {
            let at95 = c
                .points
                .iter()
                .find(|(p, _)| (*p - 95.0).abs() < 1e-9)
                .map(|(_, v)| *v);
            t.row(vec![
                c.policy.to_string(),
                c.first_partition_percent
                    .map_or("never".into(), |p| fmt_f64(p, 1)),
                at95.map_or("-".into(), |v| fmt_f64(v, 2)),
            ]);
        }
        t
    }
}

fn damage_and_measure(graph: &UGraph, percent: f64, repetitions: usize, seed: u64) -> (f64, bool) {
    let n = graph.node_count();
    let remove = ((percent / 100.0) * n as f64).round() as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total_outside = 0usize;
    let mut any_partition = false;
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..repetitions {
        order.shuffle(&mut rng);
        let mut keep = vec![true; n];
        for &victim in order.iter().take(remove) {
            keep[victim] = false;
        }
        let sub = graph.induced_subgraph(&keep);
        let report = connected_components(&sub);
        total_outside += report.nodes_outside_largest();
        if report.count() > 1 {
            any_partition = true;
        }
    }
    (total_outside as f64 / repetitions as f64, any_partition)
}

/// Runs the Figure 6 experiment (protocols in parallel; each protocol
/// converges once and is then damaged `repetitions` times per percentage).
pub fn run(config: &Fig6Config) -> Fig6Result {
    let scale = config.scale;
    let percents = config.removal_percents.clone();
    let repetitions = config.repetitions;

    let curves = parallel_map(config.protocols.clone(), move |policy| {
        let protocol = scale.protocol(policy);
        let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0xf16);
        sim.run_cycles(scale.cycles);
        let graph = sim.snapshot().undirected();
        let mut points = Vec::with_capacity(percents.len());
        let mut first_partition_percent = None;
        for (i, &pct) in percents.iter().enumerate() {
            let (avg_outside, partitioned) =
                damage_and_measure(&graph, pct, repetitions, scale.run_seed(9000 + i as u64));
            points.push((pct, avg_outside));
            if partitioned && first_partition_percent.is_none() {
                first_partition_percent = Some(pct);
            }
        }
        RemovalCurve {
            policy,
            points,
            first_partition_percent,
        }
    });

    Fig6Result { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_below_seventy_percent_at_tiny_scale() {
        let scale = Scale {
            nodes: 500,
            cycles: 40,
            view_size: 20,
            seed: 41,
        };
        let config = Fig6Config {
            scale,
            removal_percents: vec![50.0, 65.0, 90.0],
            repetitions: 10,
            protocols: vec![PolicyTriple::newscast()],
        };
        let result = run(&config);
        let curve = &result.curves[0];
        assert_eq!(curve.points.len(), 3);
        // At 50% removal the overlay should be essentially intact.
        assert!(curve.points[0].1 < 1.0, "damage at 50%: {:?}", curve.points);
        // Monotone damage.
        assert!(curve.points[2].1 >= curve.points[0].1);
        // 90% removal of a c=20 overlay usually leaves stragglers.
        assert!(!result.table().is_empty());
        assert_eq!(result.series_table().len(), 3);
    }

    #[test]
    fn damage_helper_counts_outsiders() {
        // A 10-node ring: removing 50% will partition it almost surely.
        let g = pss_graph::gen::ring_lattice(10, 2).to_undirected();
        let (avg, partitioned) = damage_and_measure(&g, 50.0, 20, 1);
        assert!(avg > 0.0);
        assert!(partitioned);
        // Removing 0% leaves everyone inside the largest cluster.
        let (avg0, part0) = damage_and_measure(&g, 0.0, 5, 2);
        assert_eq!(avg0, 0.0);
        assert!(!part0);
    }
}
