//! **Extension X2** — do the cycle-model conclusions survive asynchrony?
//!
//! The paper simulates an idealized synchronous cycle model. This
//! experiment reruns representative protocols on the event-driven engine —
//! timer jitter, message latency, message loss — and compares the converged
//! overlay properties against the cycle-driven run at the same scale.
//!
//! With `shard_counts` set (the CLI's `--shards`), the event rows run on
//! the **sharded** event engine ([`pss_sim::ShardedEventSimulation`],
//! conservative lookahead = minimum latency) across the requested shard
//! counts, reporting node-cycles/s per row — which opens the asynchrony
//! comparison at `Scale::million()`: beyond ~10⁵ nodes the overlay metrics
//! switch to the sampled CSR estimators (exact connectivity is skipped),
//! the same large-N path the `scaling` experiment uses.

use std::time::Instant;

use pss_core::PolicyTriple;
use pss_graph::{GraphMetrics, MetricsConfig};
use pss_sim::{scenario, EventConfig, EventSimulation, LatencyModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Above this population the overlay metrics come from the sampled CSR
/// estimators instead of the full undirected graph.
const SAMPLED_METRICS_THRESHOLD: usize = 100_000;

/// Configuration for the asynchrony experiment.
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Common scale (cycles ≈ gossip periods for the event engine).
    pub scale: Scale,
    /// Relative timer jitter (fraction of the period).
    pub jitter_fraction: f64,
    /// Message latency as a fraction of the period (uniform up to this).
    pub latency_fraction: f64,
    /// Message loss probabilities to test.
    pub loss_levels: Vec<f64>,
    /// Protocols to test (default: one per view-selection × propagation
    /// corner).
    pub protocols: Vec<PolicyTriple>,
    /// Shard counts for the event rows: `None` runs the sequential
    /// [`EventSimulation`]; `Some(list)` runs the sharded engine once per
    /// count (and the cycle baseline on the sharded cycle engine at the
    /// largest count).
    pub shard_counts: Option<Vec<usize>>,
    /// Worker-thread override for sharded rows (`None` = available
    /// parallelism). Affects wall-clock only, never results.
    pub workers: Option<usize>,
}

impl AsyncConfig {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        AsyncConfig {
            scale,
            jitter_fraction: 0.2,
            latency_fraction: 0.1,
            loss_levels: vec![0.0, 0.05],
            protocols: vec![
                PolicyTriple::newscast(),
                "(rand,rand,pushpull)".parse().expect("valid"),
                PolicyTriple::lpbcast(),
            ],
            shard_counts: None,
            workers: None,
        }
    }

    fn event_config(&self, loss: f64) -> EventConfig {
        let period = 1000u64;
        let jitter = (self.jitter_fraction * period as f64) as u64;
        let latency = (self.latency_fraction * period as f64) as u64;
        // The latency floor (1% of the period) is the sharded engine's
        // lookahead window; a 1-tick floor would force a bucket exchange
        // every tick, all overhead at small N.
        let min = (period / 100).max(1);
        EventConfig {
            period,
            jitter: jitter.min(period - 1),
            latency: LatencyModel::Uniform {
                min,
                max: latency.max(min),
            },
            loss_probability: loss,
        }
    }
}

/// Converged overlay statistics of one run. Exact or sampled depending on
/// scale; `connected` is `None` when the exact check was skipped (CSR
/// sampled path at large N).
#[derive(Debug, Clone, Copy)]
pub struct OverlayStats {
    /// Mean degree of the communication graph (in-degree mean on the CSR
    /// path — identical in expectation, since out-degrees are `c`).
    pub average_degree: f64,
    /// (Sampled) clustering coefficient.
    pub clustering: f64,
    /// (Sampled) average shortest-path length.
    pub path_length: f64,
    /// Exact connectivity, when measured.
    pub connected: Option<bool>,
}

impl From<GraphMetrics> for OverlayStats {
    fn from(m: GraphMetrics) -> Self {
        OverlayStats {
            average_degree: m.average_degree,
            clustering: m.clustering_coefficient,
            path_length: m.path_lengths.average,
            connected: Some(m.is_connected()),
        }
    }
}

/// One comparison row: a protocol under one engine/loss/sharding setting.
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// The protocol.
    pub policy: PolicyTriple,
    /// Engine label (`cycle` or `event`).
    pub engine: &'static str,
    /// Shard count the row ran on (1 = sequential).
    pub shards: usize,
    /// Loss probability used (0 for the cycle engine).
    pub loss: f64,
    /// Simulation throughput of the run, N × cycles / seconds.
    pub node_cycles_per_sec: f64,
    /// Converged overlay statistics.
    pub stats: OverlayStats,
}

/// Result of the asynchrony experiment.
#[derive(Debug, Clone)]
pub struct AsyncResult {
    /// All comparison rows.
    pub rows: Vec<EngineComparison>,
}

impl AsyncResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "engine",
            "shards",
            "loss",
            "node-cycles/s",
            "avg degree",
            "clustering",
            "path length",
            "connected",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.policy.to_string(),
                r.engine.into(),
                r.shards.to_string(),
                fmt_f64(r.loss, 2),
                format!("{:.0}", r.node_cycles_per_sec),
                fmt_f64(r.stats.average_degree, 2),
                fmt_f64(r.stats.clustering, 4),
                fmt_f64(r.stats.path_length, 3),
                match r.stats.connected {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                }
                .into(),
            ]);
        }
        t
    }
}

enum Job {
    Cycle(PolicyTriple),
    Event(PolicyTriple, f64),
}

/// Exact(ish) metrics on the full undirected graph: the small-N path.
fn measure_graph(graph: &pss_graph::UGraph, seed: u64) -> OverlayStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    GraphMetrics::measure(
        graph,
        &MetricsConfig {
            clustering_samples: Some(1000.min(graph.node_count())),
            path_sources: Some(50.min(graph.node_count())),
        },
        &mut rng,
    )
    .into()
}

/// Sampled metrics from a CSR snapshot: the large-N path (no full graph
/// materialization, no exact connectivity sweep).
fn measure_csr(snapshot: &pss_sim::CsrSnapshot, seed: u64) -> OverlayStats {
    let csr = snapshot.graph();
    let mut in_deg = pss_stats::Summary::new();
    for d in csr.in_degrees() {
        in_deg.push(d as f64);
    }
    let rev = csr.reverse();
    let mut rng = SmallRng::seed_from_u64(seed);
    OverlayStats {
        average_degree: in_deg.mean(),
        clustering: csr.sampled_clustering(&rev, 256, &mut rng),
        path_length: csr.sampled_path_length(&rev, 16, &mut rng).average,
        connected: None,
    }
}

/// Runs the asynchrony experiment.
pub fn run(config: &AsyncConfig) -> AsyncResult {
    match &config.shard_counts {
        None => run_sequential(config),
        Some(shards) => run_sharded(config, shards),
    }
}

/// The historical path: sequential engines, one thread per job.
fn run_sequential(config: &AsyncConfig) -> AsyncResult {
    let scale = config.scale;

    let mut jobs: Vec<Job> = Vec::new();
    for &policy in &config.protocols {
        jobs.push(Job::Cycle(policy));
        for &loss in &config.loss_levels {
            jobs.push(Job::Event(policy, loss));
        }
    }

    let rows = parallel_map(jobs, move |job| match job {
        Job::Cycle(policy) => {
            let protocol = scale.protocol(policy);
            let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0xa51);
            let started = Instant::now();
            sim.run_cycles(scale.cycles);
            let seconds = started.elapsed().as_secs_f64();
            let graph = sim.snapshot().undirected();
            EngineComparison {
                policy,
                engine: "cycle",
                shards: 1,
                loss: 0.0,
                node_cycles_per_sec: throughput(scale, seconds),
                stats: measure_graph(&graph, scale.seed),
            }
        }
        Job::Event(policy, loss) => {
            let protocol = scale.protocol(policy);
            let event = config.event_config(loss);
            let mut sim = EventSimulation::new(protocol, event, scale.seed ^ 0xa52)
                .expect("asynchrony sweep uses a validated event config");
            // Same random bootstrap graph as the cycle scenario.
            let mut topo_rng = SmallRng::seed_from_u64(scale.seed ^ 0xa53);
            let digraph =
                pss_graph::gen::uniform_view_digraph(scale.nodes, scale.view_size, &mut topo_rng);
            for v in 0..scale.nodes as u32 {
                sim.add_node(
                    digraph
                        .out_neighbors(v)
                        .iter()
                        .map(|&t| pss_core::NodeDescriptor::fresh(pss_core::NodeId::new(t as u64))),
                );
            }
            let started = Instant::now();
            sim.run_for(scale.cycles * event.period);
            let seconds = started.elapsed().as_secs_f64();
            let graph = sim.snapshot().undirected();
            EngineComparison {
                policy,
                engine: "event",
                shards: 1,
                loss,
                node_cycles_per_sec: throughput(scale, seconds),
                stats: measure_graph(&graph, scale.seed ^ 1),
            }
        }
    });

    AsyncResult { rows }
}

/// The sharded path: event rows on [`pss_sim::ShardedEventSimulation`] per
/// shard count, the cycle baseline on the sharded cycle engine at the
/// largest count. Rows run one after another — each run parallelizes
/// internally across its worker threads.
fn run_sharded(config: &AsyncConfig, shard_counts: &[usize]) -> AsyncResult {
    let scale = config.scale;
    let sampled = scale.nodes >= SAMPLED_METRICS_THRESHOLD;
    let cycle_shards = shard_counts.iter().copied().max().unwrap_or(1);
    let mut rows = Vec::new();

    for &policy in &config.protocols {
        let protocol = scale.protocol(policy);

        // Cycle baseline.
        let mut sim =
            scenario::random_overlay_sharded(&protocol, scale.nodes, scale.seed, cycle_shards);
        if let Some(w) = config.workers {
            sim.set_workers(w);
        }
        let started = Instant::now();
        sim.run_cycles(scale.cycles);
        let seconds = started.elapsed().as_secs_f64();
        let stats = if sampled {
            measure_csr(&sim.csr_snapshot(), scale.seed)
        } else {
            measure_graph(&sim.snapshot().undirected(), scale.seed)
        };
        rows.push(EngineComparison {
            policy,
            engine: "cycle",
            shards: cycle_shards,
            loss: 0.0,
            node_cycles_per_sec: throughput(scale, seconds),
            stats,
        });

        // Event rows: loss sweep × shard counts, identical initial overlay
        // per (seed, N, c) across all of them.
        for &loss in &config.loss_levels {
            let event = config.event_config(loss);
            for &shards in shard_counts {
                let mut sim = scenario::event_random_overlay_sharded(
                    &protocol,
                    event,
                    scale.nodes,
                    scale.seed,
                    shards,
                )
                .expect("asynchrony sweep uses a validated event config");
                if let Some(w) = config.workers {
                    sim.set_workers(w);
                }
                let started = Instant::now();
                sim.run_for(scale.cycles * event.period);
                let seconds = started.elapsed().as_secs_f64();
                let stats = if sampled {
                    measure_csr(&sim.csr_snapshot(), scale.seed ^ 1)
                } else {
                    measure_graph(&sim.snapshot().undirected(), scale.seed ^ 1)
                };
                rows.push(EngineComparison {
                    policy,
                    engine: "event",
                    shards,
                    loss,
                    node_cycles_per_sec: throughput(scale, seconds),
                    stats,
                });
            }
        }
    }

    AsyncResult { rows }
}

fn throughput(scale: Scale, seconds: f64) -> f64 {
    if seconds > 0.0 {
        scale.nodes as f64 * scale.cycles as f64 / seconds
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_engine_matches_cycle_engine_shape() {
        let scale = Scale {
            nodes: 250,
            cycles: 40,
            view_size: 12,
            seed: 71,
        };
        let mut config = AsyncConfig::at_scale(scale);
        config.loss_levels = vec![0.0];
        config.protocols = vec![PolicyTriple::newscast()];
        let result = run(&config);
        assert_eq!(result.rows.len(), 2);
        let cycle = result.rows.iter().find(|r| r.engine == "cycle").unwrap();
        let event = result.rows.iter().find(|r| r.engine == "event").unwrap();
        assert_eq!(cycle.stats.connected, Some(true));
        assert_eq!(event.stats.connected, Some(true));
        // Converged degree within 25% between engines.
        let rel = (cycle.stats.average_degree - event.stats.average_degree).abs()
            / cycle.stats.average_degree;
        assert!(rel < 0.25, "engines disagree on degree: {rel}");
        assert!(cycle.node_cycles_per_sec > 0.0);
        assert!(!result.table().is_empty());
    }

    #[test]
    fn sharded_path_sweeps_shard_counts() {
        let scale = Scale {
            nodes: 200,
            cycles: 25,
            view_size: 12,
            seed: 71,
        };
        let mut config = AsyncConfig::at_scale(scale);
        config.loss_levels = vec![0.05];
        config.protocols = vec![PolicyTriple::newscast()];
        config.shard_counts = Some(vec![1, 2]);
        config.workers = Some(2);
        let result = run(&config);
        // One cycle baseline + one event row per shard count.
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.rows[0].engine, "cycle");
        assert_eq!(result.rows[0].shards, 2);
        let event_shards: Vec<usize> = result
            .rows
            .iter()
            .filter(|r| r.engine == "event")
            .map(|r| r.shards)
            .collect();
        assert_eq!(event_shards, vec![1, 2]);
        for row in &result.rows {
            assert!(row.node_cycles_per_sec > 0.0);
            assert!(row.stats.average_degree > 10.0);
            assert_eq!(row.stats.connected, Some(true), "{row:?}");
        }
        let table = result.table();
        assert_eq!(table.len(), 3);
    }
}
