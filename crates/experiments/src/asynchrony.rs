//! **Extension X2** — do the cycle-model conclusions survive asynchrony?
//!
//! The paper simulates an idealized synchronous cycle model. This
//! experiment reruns representative protocols on the event-driven engine —
//! timer jitter, message latency, message loss — and compares the converged
//! overlay properties against the cycle-driven run at the same scale.

use pss_core::PolicyTriple;
use pss_graph::{GraphMetrics, MetricsConfig};
use pss_sim::{scenario, EventConfig, EventSimulation, LatencyModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the asynchrony experiment.
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Common scale (cycles ≈ gossip periods for the event engine).
    pub scale: Scale,
    /// Relative timer jitter (fraction of the period).
    pub jitter_fraction: f64,
    /// Message latency as a fraction of the period (uniform up to this).
    pub latency_fraction: f64,
    /// Message loss probabilities to test.
    pub loss_levels: Vec<f64>,
    /// Protocols to test (default: one per view-selection × propagation
    /// corner).
    pub protocols: Vec<PolicyTriple>,
}

impl AsyncConfig {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        AsyncConfig {
            scale,
            jitter_fraction: 0.2,
            latency_fraction: 0.1,
            loss_levels: vec![0.0, 0.05],
            protocols: vec![
                PolicyTriple::newscast(),
                "(rand,rand,pushpull)".parse().expect("valid"),
                PolicyTriple::lpbcast(),
            ],
        }
    }
}

/// One comparison row: a protocol under one engine/loss setting.
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// The protocol.
    pub policy: PolicyTriple,
    /// Engine label (`cycle` or `event`).
    pub engine: &'static str,
    /// Loss probability used (0 for the cycle engine).
    pub loss: f64,
    /// Converged overlay metrics.
    pub metrics: GraphMetrics,
}

/// Result of the asynchrony experiment.
#[derive(Debug, Clone)]
pub struct AsyncResult {
    /// All comparison rows.
    pub rows: Vec<EngineComparison>,
}

impl AsyncResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "engine",
            "loss",
            "avg degree",
            "clustering",
            "path length",
            "connected",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.policy.to_string(),
                r.engine.into(),
                fmt_f64(r.loss, 2),
                fmt_f64(r.metrics.average_degree, 2),
                fmt_f64(r.metrics.clustering_coefficient, 4),
                fmt_f64(r.metrics.path_lengths.average, 3),
                if r.metrics.is_connected() {
                    "yes"
                } else {
                    "NO"
                }
                .into(),
            ]);
        }
        t
    }
}

enum Job {
    Cycle(PolicyTriple),
    Event(PolicyTriple, f64),
}

/// Runs the asynchrony experiment.
pub fn run(config: &AsyncConfig) -> AsyncResult {
    let scale = config.scale;
    let period = 1000u64;
    let event_config_for = {
        let jitter = (config.jitter_fraction * period as f64) as u64;
        let latency = (config.latency_fraction * period as f64) as u64;
        move |loss: f64| EventConfig {
            period,
            jitter: jitter.min(period - 1),
            latency: LatencyModel::Uniform {
                min: 1,
                max: latency.max(1),
            },
            loss_probability: loss,
        }
    };

    let mut jobs: Vec<Job> = Vec::new();
    for &policy in &config.protocols {
        jobs.push(Job::Cycle(policy));
        for &loss in &config.loss_levels {
            jobs.push(Job::Event(policy, loss));
        }
    }

    let measure = move |graph: &pss_graph::UGraph, seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        GraphMetrics::measure(
            graph,
            &MetricsConfig {
                clustering_samples: Some(1000.min(graph.node_count())),
                path_sources: Some(50.min(graph.node_count())),
            },
            &mut rng,
        )
    };

    let rows = parallel_map(jobs, move |job| match job {
        Job::Cycle(policy) => {
            let protocol = scale.protocol(policy);
            let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0xa51);
            sim.run_cycles(scale.cycles);
            let graph = sim.snapshot().undirected();
            EngineComparison {
                policy,
                engine: "cycle",
                loss: 0.0,
                metrics: measure(&graph, scale.seed),
            }
        }
        Job::Event(policy, loss) => {
            let protocol = scale.protocol(policy);
            let mut sim =
                EventSimulation::new(protocol, event_config_for(loss), scale.seed ^ 0xa52)
                    .expect("asynchrony sweep uses a validated event config");
            // Same random bootstrap graph as the cycle scenario.
            let mut topo_rng = SmallRng::seed_from_u64(scale.seed ^ 0xa53);
            let digraph =
                pss_graph::gen::uniform_view_digraph(scale.nodes, scale.view_size, &mut topo_rng);
            for v in 0..scale.nodes as u32 {
                sim.add_node(
                    digraph
                        .out_neighbors(v)
                        .iter()
                        .map(|&t| pss_core::NodeDescriptor::fresh(pss_core::NodeId::new(t as u64))),
                );
            }
            sim.run_for(scale.cycles * period);
            let graph = sim.snapshot().undirected();
            EngineComparison {
                policy,
                engine: "event",
                loss,
                metrics: measure(&graph, scale.seed ^ 1),
            }
        }
    });

    AsyncResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_engine_matches_cycle_engine_shape() {
        let scale = Scale {
            nodes: 250,
            cycles: 40,
            view_size: 12,
            seed: 71,
        };
        let config = AsyncConfig {
            scale,
            jitter_fraction: 0.2,
            latency_fraction: 0.1,
            loss_levels: vec![0.0],
            protocols: vec![PolicyTriple::newscast()],
        };
        let result = run(&config);
        assert_eq!(result.rows.len(), 2);
        let cycle = result.rows.iter().find(|r| r.engine == "cycle").unwrap();
        let event = result.rows.iter().find(|r| r.engine == "event").unwrap();
        assert!(cycle.metrics.is_connected());
        assert!(event.metrics.is_connected());
        // Converged degree within 25% between engines.
        let rel = (cycle.metrics.average_degree - event.metrics.average_degree).abs()
            / cycle.metrics.average_degree;
        assert!(rel < 0.25, "engines disagree on degree: {rel}");
        assert!(!result.table().is_empty());
    }
}
