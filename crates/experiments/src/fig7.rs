//! **Figure 7** — self-healing after catastrophic failure.
//!
//! After converging from the random start, 50 % of all nodes crash at once;
//! the plot tracks the number of dead links (descriptors of dead nodes held
//! by live ones) over the following cycles. The paper's split: `head` view
//! selection heals exponentially fast (dead links hit zero within tens of
//! cycles; the pushpull variants overlap), `rand` view selection is linear
//! at best, with `(tail,rand,push)` even slowly accumulating dead links.

use pss_core::PolicyTriple;
use pss_sim::observe::{run_observed, DeadLinkCounter};
use pss_sim::scenario;
use pss_stats::TimeSeries;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Common scale (cycles = convergence budget before the failure).
    pub scale: Scale,
    /// Fraction of nodes killed at the failure cycle (paper: 0.5).
    pub kill_fraction: f64,
    /// Cycles simulated after the failure (the paper plots 70 for the head
    /// protocols and 200 for the rand ones; we run the maximum for all).
    pub recovery_cycles: u64,
    /// Protocols (default: the paper's eight).
    pub protocols: Vec<PolicyTriple>,
}

impl Fig7Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Fig7Config {
            scale,
            kill_fraction: 0.5,
            recovery_cycles: (scale.cycles * 2 / 3).max(40),
            protocols: PolicyTriple::paper_eight().to_vec(),
        }
    }
}

/// Healing trajectory of one protocol.
#[derive(Debug, Clone)]
pub struct HealingCurve {
    /// The protocol.
    pub policy: PolicyTriple,
    /// Dead links per cycle after the failure.
    pub dead_links: TimeSeries,
    /// Dead links immediately after the failure (before any healing cycle).
    pub initial_dead_links: usize,
    /// First post-failure cycle with zero dead links, if reached.
    pub healed_at_cycle: Option<u64>,
}

impl HealingCurve {
    /// Dead links remaining at the end of the recovery window.
    pub fn remaining(&self) -> f64 {
        self.dead_links.values().last().copied().unwrap_or(f64::NAN)
    }
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One curve per protocol.
    pub curves: Vec<HealingCurve>,
    /// The cycle at which the failure was injected.
    pub failure_cycle: u64,
}

impl Fig7Result {
    /// Summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "dead links at failure",
            "healed at cycle",
            "remaining at end",
        ]);
        for c in &self.curves {
            t.row(vec![
                c.policy.to_string(),
                c.initial_dead_links.to_string(),
                c.healed_at_cycle
                    .map_or("not healed".into(), |c| c.to_string()),
                fmt_f64(c.remaining(), 0),
            ]);
        }
        t
    }

    /// Long-format table: one row per (protocol, cycle).
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(vec!["protocol", "cycle", "dead links"]);
        for c in &self.curves {
            for (cycle, v) in c.dead_links.iter() {
                t.row(vec![c.policy.to_string(), cycle.to_string(), fmt_f64(v, 0)]);
            }
        }
        t
    }
}

/// Runs the Figure 7 experiment (protocols in parallel).
pub fn run(config: &Fig7Config) -> Fig7Result {
    let scale = config.scale;
    let kill_fraction = config.kill_fraction.clamp(0.0, 1.0);
    let recovery = config.recovery_cycles;

    let curves = parallel_map(config.protocols.clone(), move |policy| {
        let protocol = scale.protocol(policy);
        let mut sim = scenario::random_overlay(&protocol, scale.nodes, scale.seed ^ 0xf17);
        sim.run_cycles(scale.cycles);
        sim.kill_random_fraction(kill_fraction);
        let initial_dead_links = sim.dead_link_count();
        let mut counter = DeadLinkCounter::new();
        run_observed(&mut sim, recovery, &mut [&mut counter]);
        let healed_at_cycle = counter
            .series()
            .iter()
            .find(|&(_, v)| v == 0.0)
            .map(|(c, _)| c);
        HealingCurve {
            policy,
            dead_links: counter.series().clone(),
            initial_dead_links,
            healed_at_cycle,
        }
    });

    Fig7Result {
        curves,
        failure_cycle: config.scale.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_heals_rand_does_not_at_tiny_scale() {
        let scale = Scale {
            nodes: 400,
            cycles: 40,
            view_size: 15,
            seed: 51,
        };
        let config = Fig7Config {
            scale,
            kill_fraction: 0.5,
            recovery_cycles: 40,
            protocols: vec![
                "(rand,head,pushpull)".parse().unwrap(),
                "(rand,rand,pushpull)".parse().unwrap(),
            ],
        };
        let result = run(&config);
        let head = &result.curves[0];
        let rand = &result.curves[1];
        assert!(head.initial_dead_links > 0);
        // The paper's claim: head view selection heals completely (and
        // fast); rand view selection retains most dead links in the same
        // window.
        assert_eq!(head.remaining(), 0.0, "head kept {}", head.remaining());
        assert!(head.healed_at_cycle.is_some());
        assert!(
            rand.remaining() > head.initial_dead_links as f64 * 0.3,
            "rand healed suspiciously fast: {} of {}",
            rand.remaining(),
            rand.initial_dead_links
        );
        assert_eq!(result.failure_cycle, 40);
        assert!(!result.table().is_empty());
        assert!(!result.series_table().is_empty());
    }
}
