//! **Figure 5** — autocorrelation of a fixed node's degree time series.
//!
//! Starting from the random topology, one node's degree is recorded for the
//! full run and its autocorrelation computed up to lag 140, with the 99 %
//! white-noise confidence band. The paper's reading:
//! `(rand,head,pushpull)` is statistically indistinguishable from white
//! noise, `(rand,head,push)` shows weak high-frequency periodicity, and the
//! `(*,rand,*)` protocols show slow oscillations with strong short-term
//! correlation.

use pss_core::{NodeId, PolicyTriple};
use pss_sim::observe::{run_observed, DegreeTracer};
use pss_sim::scenario;
use pss_stats::Autocorrelation;

use crate::parallel::parallel_map;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Configuration for the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Common scale (the series length is the cycle count).
    pub scale: Scale,
    /// Maximum lag (paper: 140).
    pub max_lag: usize,
    /// Confidence level of the white-noise band (paper: 0.99).
    pub confidence: f64,
    /// Protocols; the paper plots the four `rand` peer-selection variants
    /// and omits `(tail,*,*)` "for clarity".
    pub protocols: Vec<PolicyTriple>,
}

impl Fig5Config {
    /// Default configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Fig5Config {
            scale,
            max_lag: 140.min(scale.cycles as usize / 2),
            confidence: 0.99,
            protocols: vec![
                "(rand,rand,push)".parse().expect("valid"),
                "(rand,rand,pushpull)".parse().expect("valid"),
                "(rand,head,push)".parse().expect("valid"),
                "(rand,head,pushpull)".parse().expect("valid"),
            ],
        }
    }
}

/// Autocorrelation of one protocol's traced node.
#[derive(Debug, Clone)]
pub struct ProtocolAutocorrelation {
    /// The protocol.
    pub policy: PolicyTriple,
    /// The autocorrelation function of the traced node's degree series.
    pub autocorrelation: Autocorrelation,
    /// Largest lag whose coefficient escapes the confidence band.
    pub last_significant_lag: Option<usize>,
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One entry per protocol.
    pub protocols: Vec<ProtocolAutocorrelation>,
    /// Half-width of the white-noise confidence band.
    pub band: f64,
}

impl Fig5Result {
    /// Summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "r_1",
            "r_5",
            "r_20",
            "last significant lag",
            "99% band",
        ]);
        for p in &self.protocols {
            t.row(vec![
                p.policy.to_string(),
                fmt_f64(p.autocorrelation.at(1).unwrap_or(f64::NAN), 3),
                fmt_f64(p.autocorrelation.at(5).unwrap_or(f64::NAN), 3),
                fmt_f64(p.autocorrelation.at(20).unwrap_or(f64::NAN), 3),
                p.last_significant_lag
                    .map_or("none".into(), |l| l.to_string()),
                fmt_f64(self.band, 4),
            ]);
        }
        t
    }

    /// Long-format table: one row per (protocol, lag).
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(vec!["protocol", "lag", "autocorrelation"]);
        for p in &self.protocols {
            for (lag, &r) in p.autocorrelation.values().iter().enumerate() {
                t.row(vec![p.policy.to_string(), lag.to_string(), fmt_f64(r, 6)]);
            }
        }
        t
    }
}

/// Runs the Figure 5 experiment (protocols in parallel).
pub fn run(config: &Fig5Config) -> Fig5Result {
    let scale = config.scale;
    let max_lag = config.max_lag;
    let confidence = config.confidence;
    let band = pss_stats::white_noise_band(scale.cycles as usize, confidence);

    let protocols = parallel_map(config.protocols.clone(), move |policy| {
        let protocol = scale.protocol(policy);
        let seed = scale.seed ^ 0xf15;
        let mut sim = scenario::random_overlay(&protocol, scale.nodes, seed);
        // "a fixed random node" — any node is statistically equivalent in
        // the random topology; take the middle one deterministically.
        let mut tracer = DegreeTracer::new(vec![NodeId::new((scale.nodes / 2) as u64)]);
        run_observed(&mut sim, scale.cycles, &mut [&mut tracer]);
        let autocorrelation = tracer.series(0).autocorrelation(max_lag);
        let last_significant_lag = autocorrelation.last_significant_lag(band);
        ProtocolAutocorrelation {
            policy,
            autocorrelation,
            last_significant_lag,
        }
    });

    Fig5Result { protocols, band }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_view_selection_has_longer_memory() {
        let scale = Scale {
            nodes: 400,
            cycles: 120,
            view_size: 15,
            seed: 31,
        };
        let config = Fig5Config {
            scale,
            max_lag: 40,
            confidence: 0.99,
            protocols: vec![
                "(rand,head,pushpull)".parse().unwrap(),
                "(rand,rand,pushpull)".parse().unwrap(),
            ],
        };
        let result = run(&config);
        assert_eq!(result.protocols.len(), 2);
        assert!(result.band > 0.0);
        let head_r1 = result.protocols[0].autocorrelation.at(1).unwrap();
        let rand_r1 = result.protocols[1].autocorrelation.at(1).unwrap();
        // The paper's qualitative claim: rand view selection produces strong
        // short-term correlation, head view selection does not.
        assert!(
            rand_r1 > head_r1,
            "rand r_1 {rand_r1} should exceed head r_1 {head_r1}"
        );
        assert!(
            rand_r1 > 0.3,
            "rand r_1 {rand_r1} should be clearly positive"
        );
        assert!(!result.table().is_empty());
        assert_eq!(result.series_table().len(), 2 * 41);
    }
}
