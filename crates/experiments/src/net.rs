//! **Extension X5** — the protocol on a *real* network: a live loopback
//! UDP cluster.
//!
//! Every other experiment drives the protocol in-process. This one runs it
//! end to end through the deployment stack: `pss-net`'s wire codec, UDP
//! sockets on `127.0.0.1`, and multi-node runtimes on separate OS threads
//! ([`pss_net::cluster`]). It reports the convergence trajectory (full-view
//! fraction and in-degree statistics per gossip period, from the same CSR
//! metrics the simulators use) plus live throughput — and the codec error
//! count, which must be zero.
//!
//! Unlike the simulators this measures wall-clock behavior: results vary
//! with machine load, and only the overlay statistics (not exact frame
//! counts) are comparable across runs.

use pss_core::{PolicyTriple, ProtocolConfig};
use pss_net::cluster::{self, ClusterConfig, ClusterReport};

use crate::report::{fmt_f64, fmt_percent, Table};
use crate::Scale;

/// Configuration for the loopback-cluster experiment.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Population size, view size and period budget (`cycles` = periods).
    pub scale: Scale,
    /// Runtime threads (one UDP socket each).
    pub runtimes: usize,
    /// Gossip period in milliseconds — also the wall-clock cost per period.
    pub period_ms: u64,
    /// Timer jitter in milliseconds.
    pub jitter_ms: u64,
    /// Bootstrap introducers per node.
    pub introducers: usize,
}

impl NetConfig {
    /// Default configuration at the given scale: nodes capped at 2000 (the
    /// loopback run is wall-clock bound), 100 ms periods, at most 30
    /// periods, 4 runtimes.
    pub fn at_scale(scale: Scale) -> Self {
        let mut scale = scale;
        scale.nodes = scale.nodes.min(2000);
        scale.cycles = scale.cycles.min(30);
        NetConfig {
            scale,
            runtimes: 4,
            period_ms: 100,
            jitter_ms: 20,
            introducers: 3,
        }
    }
}

/// Result of the loopback-cluster experiment.
#[derive(Debug)]
pub struct NetResult {
    /// The cluster report (per-period stats, counters, throughput).
    pub report: ClusterReport,
    /// Nodes in the run.
    pub nodes: usize,
    /// Runtime threads used.
    pub runtimes: usize,
    /// The view size (for the in-degree ≈ c check).
    pub view_size: usize,
}

impl NetResult {
    /// Per-period convergence table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "period",
            "full views",
            "in-degree mean",
            "in-degree sd",
        ]);
        for p in &self.report.periods {
            table.row(vec![
                p.period.to_string(),
                fmt_percent(p.full_fraction()),
                fmt_f64(p.in_degree_mean, 2),
                fmt_f64(p.in_degree_sd, 2),
            ]);
        }
        let stats = &self.report.stats;
        table.row(vec![
            "≥99% full at".into(),
            self.report
                .converged_at
                .map_or("never".into(), |p| format!("period {p}")),
            format!("{} frames", stats.frames_in + stats.frames_out),
            format!(
                "{} kfps / {} kxps",
                fmt_f64(self.report.frames_per_sec() / 1000.0, 1),
                fmt_f64(self.report.exchanges_per_sec() / 1000.0, 1)
            ),
        ]);
        table.row(vec![
            "codec errors".into(),
            stats.decode_failures().to_string(),
            format!("{} timeouts", stats.timeouts),
            format!("{} send failures", stats.send_failures),
        ]);
        table
    }

    /// True when the final period has ≥ 99% full views, the in-degree mean
    /// is within half a link of `c`, and no codec error occurred — the
    /// acceptance gate the CI smoke checks.
    pub fn healthy(&self) -> bool {
        let Some(last) = self.report.periods.last() else {
            return false;
        };
        last.full_fraction() >= 0.99
            && (last.in_degree_mean - self.view_size as f64).abs() <= 0.5
            && self.report.stats.decode_failures() == 0
    }
}

/// Runs the loopback cluster experiment.
///
/// # Panics
///
/// Panics if the loopback sockets cannot be bound (no loopback interface —
/// not a scenario the experiment supports degrading through).
pub fn run(config: &NetConfig) -> NetResult {
    let protocol =
        ProtocolConfig::new(PolicyTriple::newscast(), config.scale.view_size).expect("valid scale");
    let cluster_config = ClusterConfig {
        nodes: config.scale.nodes,
        runtimes: config.runtimes.min(config.scale.nodes),
        protocol,
        period_ms: config.period_ms,
        jitter_ms: config.jitter_ms,
        periods: config.scale.cycles,
        introducers: config.introducers,
        seed: config.scale.seed,
        workload: None,
        honest_policy: None,
        broadcast: None,
    };
    let report = cluster::run(&cluster_config).expect("loopback sockets available");
    NetResult {
        report,
        nodes: config.scale.nodes,
        runtimes: cluster_config.runtimes,
        view_size: config.scale.view_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cluster_runs_and_reports() {
        let mut scale = Scale::tiny();
        scale.nodes = 48;
        scale.cycles = 12;
        let mut config = NetConfig::at_scale(scale);
        config.runtimes = 2;
        let result = run(&config);
        assert_eq!(result.report.periods.len(), 12);
        assert!(result.healthy(), "{:?}", result.report);
        // Table has one row per period plus two summary rows.
        assert_eq!(result.table().len(), 14);
    }
}
