//! Shared helpers for the Criterion benchmark suite.
//!
//! Each paper table/figure has a bench target that calls the same
//! `pss-experiments` entry point the CLI uses, at a reduced scale chosen so
//! a full `cargo bench` pass stays in the minutes range while preserving
//! the workload shape (same scenario, same protocols, fewer nodes/cycles).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pss_experiments::Scale;

/// The scale used by the per-experiment benches.
pub fn bench_scale() -> Scale {
    Scale {
        nodes: 500,
        cycles: 50,
        view_size: 20,
        seed: 7,
    }
}

/// A smaller scale for the quadratic-ish experiments (full metric sweeps).
pub fn bench_scale_small() -> Scale {
    Scale {
        nodes: 250,
        cycles: 30,
        view_size: 15,
        seed: 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_modest() {
        assert!(bench_scale().nodes <= 1000);
        assert!(bench_scale_small().nodes < bench_scale().nodes);
    }
}
