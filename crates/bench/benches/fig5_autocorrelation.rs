//! Bench for the Figure 5 experiment (degree autocorrelation) at reduced
//! scale — same workload shape as `experiments fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale;
use pss_experiments::fig5;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let mut config = fig5::Fig5Config::at_scale(bench_scale());
    config.max_lag = 20;
    config.protocols = vec![
        "(rand,head,pushpull)".parse().expect("valid"),
        "(rand,rand,pushpull)".parse().expect("valid"),
    ];
    group.bench_function("degree_autocorrelation", |b| {
        b.iter(|| black_box(fig5::run(&config).band));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
