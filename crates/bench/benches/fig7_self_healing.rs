//! Bench for the Figure 7 experiment (self-healing after mass failure) at
//! reduced scale — same workload shape as `experiments fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale;
use pss_experiments::fig7;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    let mut config = fig7::Fig7Config::at_scale(bench_scale());
    config.recovery_cycles = 30;
    config.protocols = vec![
        "(rand,head,pushpull)".parse().expect("valid"),
        "(rand,rand,pushpull)".parse().expect("valid"),
    ];
    group.bench_function("self_healing", |b| {
        b.iter(|| black_box(fig7::run(&config).curves.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
