//! Application-layer throughput under membership dynamics: how fast the
//! broadcast + aggregation pair (`pss_protocols::run_under_workload`)
//! pushes node-periods through the sharded cycle engine, oracle vs
//! overlay sampler.
//!
//! Each iteration is a complete run: build the engine, compile the
//! conformance churn schedule, and drive both applications over it —
//! workloads kill and add nodes, so a fresh engine per iteration is the
//! only honest steady state. One element = one node-period, comparable
//! with the engine-only numbers in `BENCH_scale.json` — the gap is the
//! price of the application layer (sampling, rumor pushes, push-pull
//! exchanges, liveness accounting) on top of bare gossip.
//!
//! Run `BENCH_JSON=BENCH_protocols.json cargo bench --bench
//! protocols_app` to record; ids are `protocols_app/churn-{sampler}`.
//! Set `BENCH_PROTOCOLS_NODES` to override the population (default
//! 2000; CI pins 1000). Before timing, each sampler's quality numbers
//! (rounds to 99% coverage, aggregation decay factor) are printed once
//! so the paired oracle/overlay ordering is visible next to the
//! throughput rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pss_core::{NodeDescriptor, NodeId, PolicyTriple};
use pss_experiments::Scale;
use pss_protocols::{run_under_workload, AppConfig, Sampler};
use pss_sim::workload::Workload;
use pss_sim::ShardedSimulation;
use std::hint::black_box;

const SCHEDULE: &str = "quiet:5,kill:0.3,churn:0.01x15";
const PERIODS: u64 = 21; // quiet 5 + kill-merged churn period + 15 churn

fn build_engine(scale: &Scale, shards: usize) -> ShardedSimulation {
    let config = scale.protocol(PolicyTriple::newscast());
    let mut sim = ShardedSimulation::new(config, scale.seed, shards);
    for i in 0..scale.nodes as u64 {
        let seeds = if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        };
        sim.add_node(seeds);
    }
    sim
}

fn bench_protocols_app(c: &mut Criterion) {
    let mut scale = Scale::tiny(); // c = 15, fixed seed
    scale.nodes = std::env::var("BENCH_PROTOCOLS_NODES")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(2000);
    let shards = 2;
    let compiled = Workload::parse(SCHEDULE, scale.seed)
        .expect("valid schedule")
        .compile(scale.nodes);

    let mut group = c.benchmark_group("protocols_app");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scale.nodes as u64 * PERIODS));
    group
        .meta("nodes", scale.nodes)
        .meta("shards", shards)
        .meta("policy", "newscast")
        .meta("schedule", SCHEDULE);
    for sampler in [Sampler::Oracle, Sampler::Overlay] {
        group.meta("sampler", sampler.label());
        let app = AppConfig {
            fanout: 2,
            sampler,
            seed: scale.seed ^ 0x0a99_5eed,
            ..AppConfig::default()
        };
        // One untimed run per sampler surfaces the quality numbers the
        // throughput rows ride on (paired ordering: oracle ≤ overlay).
        let mut sim = build_engine(&scale, shards);
        let (_, report) = run_under_workload(&mut sim, &compiled, scale.view_size, &app);
        eprintln!(
            "protocols_app/churn-{}: delivery {:.1}%, rounds-to-99 {}, agg decay {:.3}",
            sampler.label(),
            report.delivery_ratio() * 100.0,
            report
                .rounds_to_99()
                .map_or("-".to_string(), |p| p.to_string()),
            report.decay_factor(),
        );
        group.bench_with_input(
            BenchmarkId::new("churn", sampler.label()),
            &sampler,
            |bencher, _| {
                bencher.iter(|| {
                    let mut sim = build_engine(&scale, shards);
                    let out = run_under_workload(&mut sim, &compiled, scale.view_size, &app);
                    black_box(out.1.delivery_ratio())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols_app);
criterion_main!(benches);
