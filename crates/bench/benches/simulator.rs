//! Simulator throughput: cycles per second at increasing population sizes,
//! for both execution engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pss_core::{PolicyTriple, ProtocolConfig};
use pss_sim::{scenario, EventConfig, EventSimulation, LatencyModel};
use std::hint::black_box;

fn bench_cycle_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_engine");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        group.throughput(Throughput::Elements(n as u64));
        for policy in [PolicyTriple::newscast(), PolicyTriple::lpbcast()] {
            let config = ProtocolConfig::new(policy, 30).expect("valid");
            group.bench_with_input(
                BenchmarkId::new(policy.to_string(), n),
                &n,
                |bencher, &n| {
                    bencher.iter_batched(
                        || {
                            let mut sim = scenario::random_overlay(&config, n, 42);
                            sim.run_cycles(5); // warm views
                            sim
                        },
                        |mut sim| {
                            sim.run_cycles(5);
                            black_box(sim.cycle())
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine");
    group.sample_size(10);
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 30).expect("valid");
    let event_config = EventConfig {
        period: 1000,
        jitter: 100,
        latency: LatencyModel::Uniform { min: 10, max: 50 },
        loss_probability: 0.01,
    };
    for &n in &[500usize, 2000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, &n| {
            bencher.iter_batched(
                || {
                    let mut sim = EventSimulation::new(protocol.clone(), event_config, 42)
                        .expect("valid event config");
                    sim.add_connected_nodes(n);
                    sim.run_for(5_000);
                    sim
                },
                |mut sim| {
                    sim.run_for(5_000); // ≈ 5 periods
                    black_box(sim.now())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_engine, bench_event_engine);
criterion_main!(benches);
