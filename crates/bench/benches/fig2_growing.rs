//! Bench for the Figure 2 experiment (growing-scenario dynamics) at
//! reduced scale — same workload shape as `experiments fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale_small;
use pss_experiments::fig2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    let mut config = fig2::Fig2Config::at_scale(bench_scale_small());
    config.connect_attempts = 1;
    group.bench_function("growing_dynamics", |b| {
        b.iter(|| black_box(fig2::run(&config).dynamics.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
