//! Micro-benchmarks of the core view algebra: merge, select, aging.
//! These operations run ~3N times per simulated cycle, so their cost
//! dominates simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pss_core::{NodeDescriptor, NodeId, View, ViewSelection};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn view_of(n: usize, offset: u64) -> View {
    (0..n as u64)
        .map(|i| NodeDescriptor::new(NodeId::new(i + offset), (i % 17) as u32))
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_merge");
    for &size in &[15usize, 30, 60] {
        let a = view_of(size, 0);
        let b = view_of(size, (size / 2) as u64); // half overlapping
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bencher, _| {
            bencher.iter(|| black_box(a.merge(&b, Some(NodeId::new(1)))));
        });
    }
    group.finish();
}

/// The retained pre-optimization algorithm (`pss_core::view::reference`),
/// benchmarked in-process so the optimized/naive ratio is measured under
/// identical machine conditions.
fn bench_merge_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_merge_reference");
    for &size in &[15usize, 30, 60] {
        let a = view_of(size, 0);
        let b = view_of(size, (size / 2) as u64); // half overlapping
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bencher, _| {
            bencher.iter(|| {
                black_box(pss_core::view::reference::merge(
                    a.descriptors(),
                    b.descriptors(),
                    Some(NodeId::new(1)),
                ))
            });
        });
    }
    group.finish();
}

/// The allocation-free hot path the simulator actually runs
/// ([`View::merge_from`] with a reused scratch).
fn bench_merge_from(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_merge_from");
    for &size in &[15usize, 30, 60] {
        let received = view_of(size, 0);
        let base = view_of(size, (size / 2) as u64); // half overlapping
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bencher, _| {
            let mut scratch = pss_core::MergeScratch::default();
            let mut view = base.clone();
            bencher.iter(|| {
                view.clone_from(&base);
                view.merge_from(&received, Some(NodeId::new(1)), &mut scratch);
                black_box(view.len())
            });
        });
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_select");
    let merged = view_of(61, 0);
    for policy in [
        ViewSelection::Head,
        ViewSelection::Tail,
        ViewSelection::Rand,
    ] {
        group.bench_function(format!("{policy}"), |bencher| {
            let mut rng = SmallRng::seed_from_u64(1);
            bencher.iter(|| {
                let mut v = merged.clone();
                v.select(policy, 30, &mut rng);
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_aging_and_insert(c: &mut Criterion) {
    c.bench_function("view_increase_hop_counts_30", |bencher| {
        let v = view_of(30, 0);
        bencher.iter(|| {
            let mut v = v.clone();
            v.increase_hop_counts();
            black_box(v)
        });
    });
    c.bench_function("view_insert_into_30", |bencher| {
        let v = view_of(30, 0);
        bencher.iter(|| {
            let mut v = v.clone();
            v.insert(NodeDescriptor::new(NodeId::new(999), 3));
            black_box(v)
        });
    });
}

criterion_group!(
    benches,
    bench_merge,
    bench_merge_reference,
    bench_merge_from,
    bench_select,
    bench_aging_and_insert
);
criterion_main!(benches);
