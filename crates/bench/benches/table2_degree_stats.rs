//! Bench for the Table 2 experiment (traced degree statistics) at reduced
//! scale — same workload shape as `experiments table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale;
use pss_experiments::table2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let mut config = table2::Table2Config::at_scale(bench_scale());
    config.traced_nodes = 20;
    config.protocols = vec![
        "(rand,head,pushpull)".parse().expect("valid"),
        "(rand,rand,pushpull)".parse().expect("valid"),
    ];
    group.bench_function("traced_degree_stats", |b| {
        b.iter(|| black_box(table2::run(&config).rows.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
