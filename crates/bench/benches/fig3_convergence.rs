//! Bench for the Figure 3 experiment (lattice/random convergence) at
//! reduced scale — same workload shape as `experiments fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale_small;
use pss_experiments::fig3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    let mut config = fig3::Fig3Config::at_scale(bench_scale_small());
    config.protocols = vec![
        "(rand,head,pushpull)".parse().expect("valid"),
        "(rand,rand,push)".parse().expect("valid"),
    ];
    group.bench_function("lattice_and_random_convergence", |b| {
        b.iter(|| black_box(fig3::run(&config).lattice.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
