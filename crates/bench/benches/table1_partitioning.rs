//! Bench for the Table 1 experiment (growing-overlay partitioning) at
//! reduced scale — same workload shape as `experiments table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale_small;
use pss_experiments::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let mut config = table1::Table1Config::at_scale(bench_scale_small());
    config.runs = 2;
    config.protocols = vec![
        "(rand,rand,push)".parse().expect("valid"),
        "(rand,head,pushpull)".parse().expect("valid"),
    ];
    group.bench_function("growing_partitioning", |b| {
        b.iter(|| black_box(table1::run(&config).rows.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
