//! The full receive-side pipeline (the per-exchange hot path), old vs new:
//! seed algorithms (retained in `pss_core::view::reference`) against the
//! optimized absorb (`View::merge_select_from_slice`), measured in-process
//! so the ratio is robust to machine noise.
use criterion::{criterion_group, criterion_main, Criterion};
use pss_core::view::reference;
use pss_core::{MergeScratch, NodeDescriptor, NodeId, View, ViewSelection};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn descs(n: usize, offset: u64) -> Vec<NodeDescriptor> {
    (0..n as u64)
        .map(|i| NodeDescriptor::new(NodeId::new(i + offset), (i % 17) as u32))
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let incoming: Vec<NodeDescriptor> = View::from_descriptors(descs(31, 0)).descriptors().to_vec();
    let base: View = descs(30, 15).into_iter().collect();
    let mut rng = SmallRng::seed_from_u64(1);

    c.bench_function("absorb_reference", |b| {
        b.iter(|| {
            // Seed pipeline: from_descriptors (insert loop), age, quadratic
            // merge, head-truncate.
            let rx = reference::from_descriptors(incoming.iter().copied());
            let rx: Vec<NodeDescriptor> = rx.iter().map(|d| d.aged()).collect();
            let mut merged = reference::merge(&rx, base.descriptors(), Some(NodeId::new(5)));
            merged.truncate(30);
            black_box(merged.len())
        })
    });

    c.bench_function("absorb_optimized", |b| {
        let mut scratch = MergeScratch::default();
        let mut buf: Vec<NodeDescriptor> = Vec::new();
        let mut view = base.clone();
        b.iter(|| {
            view.clone_from(&base);
            buf.clear();
            buf.extend(incoming.iter().map(|d| d.aged()));
            let ok = view.merge_select_from_slice(
                &buf,
                Some(NodeId::new(5)),
                ViewSelection::Head,
                30,
                &mut rng,
                &mut scratch,
            );
            assert!(ok);
            black_box(view.len())
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
