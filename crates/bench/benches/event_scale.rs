//! Sharded **event-engine** throughput: node-cycles per second vs shard
//! count, where one "cycle" is one gossip period of the event model.
//!
//! The asynchrony companion to `sharded_throughput.rs`: a steady-state
//! newscast workload on [`pss_sim::ShardedEventSimulation`] (conservative
//! lookahead = minimum latency, default event config) at shard counts
//! {1, 2, 4}, workers matched to shards (capped by the host's cores). One
//! element = one node-cycle, so numbers are directly comparable with
//! `BENCH_scale.json` and `BENCH_throughput.json` — the gap between the
//! two files is the price of full asynchrony (per-message latency draws,
//! priority queues, bucket exchange) relative to the cycle model.
//!
//! Run `BENCH_JSON=BENCH_event_scale.json cargo bench --bench event_scale`
//! to record the measurements; `BENCH_event_scale.json` at the repository
//! root tracks node-cycles/sec per shard count across PRs. Set
//! `BENCH_EVENT_NODES` to override the population (default 50 000) — the
//! committed file is produced at `BENCH_EVENT_NODES=1000000`
//! (`Scale::million()`'s N and c), while CI pins
//! `BENCH_EVENT_NODES=20000`. On a single-core host the sweep
//! measures pure sharding overhead (workers collapse to 1); >1 speedups
//! appear on multi-core hardware.
//!
//! Set `BENCH_WORKERS=1,2,4` to sweep the **worker-pool width** instead:
//! a fixed 4-shard overlay rerun at each pool width (ids
//! `event_scale/newscast-workers/{w}`), isolating the persistent pool's
//! parallel speedup from sharding overhead. The CI `perf-smoke` job
//! records this sweep as `BENCH_multicore.json`; optionally set
//! `PSS_PIN_WORKERS=1` to pin pool threads to cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pss_core::PolicyTriple;
use pss_experiments::Scale;
use pss_sim::{scenario, EventConfig};
use std::hint::black_box;

fn bench_event_cycles(c: &mut Criterion) {
    let scale = Scale::million(); // c = 30, seed, cycles — N comes from the env
    let n: usize = std::env::var("BENCH_EVENT_NODES")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(50_000);
    let event = EventConfig::default(); // period 1000, latency U[10, 50]
    let periods = scale.cycles; // one iteration = one full 20-period run
    let mut group = c.benchmark_group("event_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64 * periods));
    group
        .meta("nodes", n)
        .meta("periods", periods)
        .meta("policy", "newscast");
    let config = scale.protocol(PolicyTriple::newscast());
    let worker_sweep: Option<Vec<usize>> = std::env::var("BENCH_WORKERS")
        .ok()
        .map(|v| v.split(',').filter_map(|w| w.trim().parse().ok()).collect());
    if let Some(worker_counts) = worker_sweep {
        // Pool-width sweep: one fixed 4-shard overlay, re-run at each
        // worker count (`set_workers` rebuilds the persistent pool), so
        // the only variable is how many pool threads share the shards.
        let shards = 4;
        group.meta("shards", shards);
        let mut sim = scenario::event_random_overlay_sharded(&config, event, n, scale.seed, shards)
            .expect("default event config is valid");
        sim.run_for(2 * event.period);
        for workers in worker_counts {
            group.meta("workers", workers);
            sim.set_workers(workers);
            group.bench_with_input(
                BenchmarkId::new("newscast-workers", workers),
                &workers,
                |bencher, _| {
                    bencher.iter(|| {
                        sim.run_for(periods * event.period);
                        black_box(sim.now())
                    });
                },
            );
        }
        group.finish();
        return;
    }
    for shards in [1usize, 2, 4] {
        group.meta("shards", shards).meta("workers", shards);
        // Warm a converged overlay once per shard count; each iteration
        // advances it further (steady-state gossip, not bootstrap).
        let mut sim = scenario::event_random_overlay_sharded(&config, event, n, scale.seed, shards)
            .expect("default event config is valid");
        sim.set_workers(shards);
        sim.run_for(2 * event.period);
        group.bench_with_input(
            BenchmarkId::new("newscast", shards),
            &shards,
            |bencher, _| {
                bencher.iter(|| {
                    sim.run_for(periods * event.period);
                    black_box(sim.now())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_cycles);
criterion_main!(benches);
