//! Bench for the Figure 6 experiment (node-removal robustness) at reduced
//! scale — same workload shape as `experiments fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale;
use pss_experiments::fig6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let mut config = fig6::Fig6Config::at_scale(bench_scale());
    config.repetitions = 5;
    config.removal_percents = vec![65.0, 80.0, 95.0];
    config.protocols = vec!["(rand,head,pushpull)".parse().expect("valid")];
    group.bench_function("removal_robustness", |b| {
        b.iter(|| black_box(fig6::run(&config).curves.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
