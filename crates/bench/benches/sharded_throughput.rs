//! Sharded-engine throughput: node-cycles per second vs shard count.
//!
//! The scaling companion to `throughput.rs`: the same steady-state newscast
//! workload, run on [`pss_sim::ShardedSimulation`] at shard counts
//! {1, 2, 4}, with the worker count matched to the shard count (capped by
//! the host's cores). One element = one node-cycle, so numbers are directly
//! comparable with `BENCH_throughput.json`.
//!
//! Run `cargo bench --bench sharded_throughput -- --bench-json
//! BENCH_scale.json` (or set `BENCH_JSON`) to record the measurements;
//! `BENCH_scale.json` at the repository root tracks node-cycles/sec per
//! shard count across PRs. On a single-core host the sweep measures pure
//! sharding overhead (workers collapse to 1); the >1 speedups appear on
//! multi-core hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pss_core::PolicyTriple;
use pss_experiments::Scale;
use pss_sim::scenario;
use std::hint::black_box;

fn bench_sharded_cycles(c: &mut Criterion) {
    let scale = Scale::throughput_bench();
    let n = 50_000usize;
    let cycles = 3u64;
    let mut group = c.benchmark_group("sharded_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64 * cycles));
    group
        .meta("nodes", n)
        .meta("cycles", cycles)
        .meta("policy", "newscast");
    let config = scale.protocol(PolicyTriple::newscast());
    for shards in [1usize, 2, 4] {
        group.meta("shards", shards).meta("workers", shards);
        // Warm a converged overlay once per shard count; each iteration
        // advances it further (steady-state gossip, not bootstrap).
        let mut sim = scenario::random_overlay_sharded(&config, n, scale.seed, shards);
        sim.set_workers(shards);
        sim.run_cycles(5);
        group.bench_with_input(
            BenchmarkId::new("newscast", shards),
            &shards,
            |bencher, _| {
                bencher.iter(|| {
                    sim.run_cycles(cycles);
                    black_box(sim.cycle())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_cycles);
criterion_main!(benches);
