//! Bench for the Figure 4 experiment (degree distribution evolution) at
//! reduced scale — same workload shape as `experiments fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use pss_bench::bench_scale;
use pss_experiments::fig4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    let scale = bench_scale();
    let config = fig4::Fig4Config {
        scale,
        capture_at: vec![0, scale.cycles / 10, scale.cycles],
        protocols: vec![
            "(rand,head,pushpull)".parse().expect("valid"),
            "(rand,rand,pushpull)".parse().expect("valid"),
        ],
    };
    group.bench_function("degree_distribution_evolution", |b| {
        b.iter(|| black_box(fig4::run(&config).evolutions.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
