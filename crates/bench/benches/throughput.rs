//! End-to-end simulator throughput: cycles per second at N = 1k / 10k for
//! the three protocol policies the paper's core experiments use.
//!
//! This is the north-star perf number for the reproduction: every
//! figure/table is a function of how fast the cycle engine turns views
//! over. Measured as elements/second where an element is one *node-cycle*
//! (N nodes × cycles run), so numbers are comparable across N.
//!
//! Run `cargo bench --bench throughput -- --bench-json BENCH_throughput.json`
//! (or set `BENCH_JSON`) to record the measurements; `BENCH_throughput.json`
//! at the repository root tracks the trajectory across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pss_core::PolicyTriple;
use pss_experiments::Scale;
use pss_sim::scenario;
use std::hint::black_box;

/// Policies covered: the two named protocols plus the tail/pushpull healer
/// corner — together they exercise all three view-selection code paths.
fn policies() -> [(&'static str, PolicyTriple); 3] {
    [
        ("newscast", PolicyTriple::newscast()),
        ("lpbcast", PolicyTriple::lpbcast()),
        (
            "tail-pushpull",
            "(tail,tail,pushpull)".parse().expect("valid policy"),
        ),
    ]
}

/// The monomorphized fast path ([`scenario::random_overlay_fast`]): this is
/// the headline number recorded in `BENCH_throughput.json`.
fn bench_cycles_mono(c: &mut Criterion) {
    let scale = Scale::throughput_bench();
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.meta("cycles", scale.cycles).meta("engine", "mono");
    for &n in &[scale.nodes / 10, scale.nodes] {
        // One element = one node-cycle.
        group.throughput(Throughput::Elements(n as u64 * scale.cycles));
        group.meta("nodes", n);
        for (name, policy) in policies() {
            group.meta("policy", name);
            let config = scale.protocol(policy);
            // Warm a converged overlay once; each iteration advances it
            // further, so the workload is steady-state gossip, not bootstrap.
            let mut sim = scenario::random_overlay_fast(&config, n, scale.seed);
            sim.run_cycles(10);
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bencher, _| {
                bencher.iter(|| {
                    sim.run_cycles(scale.cycles);
                    black_box(sim.cycle())
                });
            });
        }
    }
    group.finish();
}

/// The boxed (virtual-dispatch) engine, for the mono-vs-boxed comparison.
fn bench_cycles_boxed(c: &mut Criterion) {
    let scale = Scale::throughput_bench();
    let mut group = c.benchmark_group("throughput_boxed");
    group.sample_size(10);
    group.meta("cycles", scale.cycles).meta("engine", "boxed");
    for &n in &[scale.nodes / 10, scale.nodes] {
        group.throughput(Throughput::Elements(n as u64 * scale.cycles));
        group.meta("nodes", n);
        for (name, policy) in policies() {
            group.meta("policy", name);
            let config = scale.protocol(policy);
            let mut sim = scenario::random_overlay(&config, n, scale.seed);
            sim.run_cycles(10);
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bencher, _| {
                bencher.iter(|| {
                    sim.run_cycles(scale.cycles);
                    black_box(sim.cycle())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cycles_mono, bench_cycles_boxed);
criterion_main!(benches);
