//! Graph-analysis throughput: the per-cycle measurement cost of the
//! evaluation methodology (components, clustering, path lengths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pss_graph::{clustering, components, gen, paths};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn graphs() -> Vec<(usize, pss_graph::UGraph)> {
    let mut rng = SmallRng::seed_from_u64(3);
    [1000usize, 5000]
        .iter()
        .map(|&n| {
            (
                n,
                gen::uniform_view_digraph(n, 30, &mut rng).to_undirected(),
            )
        })
        .collect()
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("connected_components");
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |bencher, g| {
            bencher.iter(|| black_box(components::connected_components(g).count()));
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::new("sampled_1000", n), &g, |bencher, g| {
            let mut rng = SmallRng::seed_from_u64(5);
            bencher.iter(|| black_box(clustering::estimate_clustering(g, 1000, &mut rng)));
        });
    }
    group.finish();
}

fn bench_path_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("avg_path_length");
    group.sample_size(10);
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::new("sampled_50", n), &g, |bencher, g| {
            let mut rng = SmallRng::seed_from_u64(7);
            bencher
                .iter(|| black_box(paths::estimate_average_path_length(g, 50, &mut rng).average));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_components,
    bench_clustering,
    bench_path_length
);
criterion_main!(benches);
