//! Per-cycle observation: recorders for the published metrics.
//!
//! The experiment harness runs a simulation under a set of observers; after
//! every cycle each observer sees the same [`CycleContext`] (simulation,
//! directed snapshot, undirected graph), so expensive snapshots are built
//! once per cycle regardless of how many metrics are recorded.

use pss_core::NodeId;
use pss_graph::{GraphMetrics, MetricsConfig, UGraph};
use pss_stats::TimeSeries;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Engine, Simulation, Snapshot};

/// Everything an observer may look at after a cycle.
///
/// Generic over the engine (defaulting to the sequential boxed
/// [`Simulation`]), so observers work unchanged on the monomorphized fast
/// path and on the sharded parallel engine.
pub struct CycleContext<'a, E: Engine = Simulation> {
    /// The cycle that just completed.
    pub cycle: u64,
    /// The simulation (read-only).
    pub sim: &'a E,
    /// Directed snapshot over live nodes.
    pub snapshot: &'a Snapshot,
    /// Undirected communication graph of the snapshot.
    pub graph: &'a UGraph,
}

/// A per-cycle metric recorder.
pub trait Observer<E: Engine = Simulation> {
    /// Called once after every completed cycle.
    fn observe(&mut self, ctx: &CycleContext<'_, E>);
}

/// Runs `cycles` cycles of `sim`, invoking every observer after each cycle.
///
/// Observation order follows the slice order. The snapshot/undirected graph
/// are rebuilt once per cycle and shared.
pub fn run_observed<E: Engine>(sim: &mut E, cycles: u64, observers: &mut [&mut dyn Observer<E>]) {
    for _ in 0..cycles {
        sim.run_cycle();
        let snapshot = sim.snapshot();
        let graph = snapshot.undirected();
        let ctx = CycleContext {
            cycle: sim.cycle(),
            sim,
            snapshot: &snapshot,
            graph: &graph,
        };
        for obs in observers.iter_mut() {
            obs.observe(&ctx);
        }
    }
}

/// Records the three headline graph properties per cycle: clustering
/// coefficient, average node degree and average path length (Figures 2, 3).
#[derive(Debug)]
pub struct MetricsRecorder {
    config: MetricsConfig,
    rng: SmallRng,
    clustering: TimeSeries,
    average_degree: TimeSeries,
    path_length: TimeSeries,
    largest_component: TimeSeries,
}

impl MetricsRecorder {
    /// Creates a recorder; `config` chooses exact vs sampled measurement.
    pub fn new(config: MetricsConfig, seed: u64) -> Self {
        MetricsRecorder {
            config,
            rng: SmallRng::seed_from_u64(seed),
            clustering: TimeSeries::new("clustering coefficient"),
            average_degree: TimeSeries::new("average node degree"),
            path_length: TimeSeries::new("average path length"),
            largest_component: TimeSeries::new("largest component"),
        }
    }

    /// Clustering coefficient per cycle (Figure 2a / 3c / 3d).
    pub fn clustering(&self) -> &TimeSeries {
        &self.clustering
    }

    /// Average node degree per cycle (Figure 2b / 3e / 3f).
    pub fn average_degree(&self) -> &TimeSeries {
        &self.average_degree
    }

    /// Average path length per cycle (Figure 2c / 3a / 3b).
    pub fn path_length(&self) -> &TimeSeries {
        &self.path_length
    }

    /// Largest connected component size per cycle.
    pub fn largest_component(&self) -> &TimeSeries {
        &self.largest_component
    }
}

impl<E: Engine> Observer<E> for MetricsRecorder {
    fn observe(&mut self, ctx: &CycleContext<'_, E>) {
        let m = GraphMetrics::measure(ctx.graph, &self.config, &mut self.rng);
        self.clustering.push(ctx.cycle, m.clustering_coefficient);
        self.average_degree.push(ctx.cycle, m.average_degree);
        self.path_length.push(ctx.cycle, m.path_lengths.average);
        self.largest_component
            .push(ctx.cycle, m.largest_component as f64);
    }
}

/// Traces the undirected degree of a fixed set of nodes over time
/// (Table 2 and Figure 5 of the paper use 50 traced nodes over 300 cycles).
#[derive(Debug)]
pub struct DegreeTracer {
    traced: Vec<NodeId>,
    series: Vec<TimeSeries>,
}

impl DegreeTracer {
    /// Creates a tracer for the given nodes.
    pub fn new(traced: Vec<NodeId>) -> Self {
        let series = traced
            .iter()
            .map(|id| TimeSeries::new(format!("degree of {id}")))
            .collect();
        DegreeTracer { traced, series }
    }

    /// The traced node ids.
    pub fn traced(&self) -> &[NodeId] {
        &self.traced
    }

    /// Degree series of the `i`-th traced node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn series(&self, i: usize) -> &TimeSeries {
        &self.series[i]
    }

    /// All degree series, aligned with [`DegreeTracer::traced`].
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }
}

impl<E: Engine> Observer<E> for DegreeTracer {
    fn observe(&mut self, ctx: &CycleContext<'_, E>) {
        for (id, series) in self.traced.iter().zip(&mut self.series) {
            if let Some(idx) = ctx.snapshot.index_of(*id) {
                series.push(ctx.cycle, ctx.graph.degree(idx) as f64);
            }
            // Dead/unknown nodes simply record nothing this cycle.
        }
    }
}

/// Records the number of dead links per cycle (Figure 7).
#[derive(Debug)]
pub struct DeadLinkCounter {
    series: TimeSeries,
}

impl DeadLinkCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        DeadLinkCounter {
            series: TimeSeries::new("overall dead links"),
        }
    }

    /// Dead links per cycle.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

impl Default for DeadLinkCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Engine> Observer<E> for DeadLinkCounter {
    fn observe(&mut self, ctx: &CycleContext<'_, E>) {
        self.series
            .push(ctx.cycle, ctx.sim.dead_link_count() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use pss_core::{PolicyTriple, ProtocolConfig};

    fn config() -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap()
    }

    #[test]
    fn metrics_recorder_collects_each_cycle() {
        let mut sim = scenario::random_overlay(&config(), 60, 1);
        let mut rec = MetricsRecorder::new(MetricsConfig::exact(), 2);
        run_observed(&mut sim, 5, &mut [&mut rec]);
        assert_eq!(rec.clustering().len(), 5);
        assert_eq!(rec.average_degree().len(), 5);
        assert_eq!(rec.path_length().len(), 5);
        assert_eq!(rec.largest_component().len(), 5);
        assert_eq!(rec.clustering().cycles(), &[1, 2, 3, 4, 5]);
        // Degrees in a converged small overlay stay near 2c.
        let (_, degree) = rec.average_degree().last().unwrap();
        assert!((8.0..=16.0).contains(&degree), "degree {degree}");
    }

    #[test]
    fn degree_tracer_follows_nodes() {
        let mut sim = scenario::random_overlay(&config(), 40, 3);
        let traced = vec![NodeId::new(0), NodeId::new(7)];
        let mut tracer = DegreeTracer::new(traced.clone());
        run_observed(&mut sim, 4, &mut [&mut tracer]);
        assert_eq!(tracer.traced(), traced.as_slice());
        assert_eq!(tracer.series(0).len(), 4);
        assert_eq!(tracer.all_series()[1].len(), 4);
        assert!(tracer.series(0).values().iter().all(|&d| d >= 1.0));
    }

    #[test]
    fn degree_tracer_skips_dead_nodes() {
        let mut sim = scenario::random_overlay(&config(), 40, 4);
        let mut tracer = DegreeTracer::new(vec![NodeId::new(5)]);
        run_observed(&mut sim, 2, &mut [&mut tracer]);
        sim.kill(NodeId::new(5));
        run_observed(&mut sim, 3, &mut [&mut tracer]);
        assert_eq!(tracer.series(0).len(), 2);
    }

    #[test]
    fn dead_link_counter_sees_failure() {
        let mut sim = scenario::random_overlay(&config(), 50, 5);
        sim.run_cycles(5);
        let mut counter = DeadLinkCounter::new();
        run_observed(&mut sim, 1, &mut [&mut counter]);
        let (_, before) = counter.series().last().unwrap();
        assert_eq!(before, 0.0);
        sim.kill_random_fraction(0.5);
        run_observed(&mut sim, 1, &mut [&mut counter]);
        let (_, after) = counter.series().last().unwrap();
        assert!(after > 0.0, "dead links should appear after mass failure");
    }

    #[test]
    fn multiple_observers_share_context() {
        let mut sim = scenario::random_overlay(&config(), 30, 6);
        let mut rec = MetricsRecorder::new(MetricsConfig::exact(), 7);
        let mut counter = DeadLinkCounter::new();
        let mut tracer = DegreeTracer::new(vec![NodeId::new(1)]);
        run_observed(&mut sim, 3, &mut [&mut rec, &mut counter, &mut tracer]);
        assert_eq!(rec.clustering().len(), 3);
        assert_eq!(counter.series().len(), 3);
        assert_eq!(tracer.series(0).len(), 3);
    }
}
