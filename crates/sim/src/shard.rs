//! The sharded deterministic cycle engine.
//!
//! [`ShardedSimulation`] partitions the population into `S` shards and runs
//! the paper's cycle model as a **two-phase** protocol per cycle:
//!
//! 1. **Initiate** — every shard walks its own live nodes in a fresh
//!    shard-local random order. An exchange whose peer lives in the *same*
//!    shard completes inline and atomically, exactly like the sequential
//!    engine. An exchange targeting a *remote* shard queues its request
//!    into a fixed-order cross-shard mailbox.
//! 2. **Exchange** — each shard drains its request mailbox in sender-shard
//!    order (FIFO within each sender), running the passive thread and
//!    queueing replies; replies are then drained the same way and absorbed
//!    by their initiators.
//!
//! The shard partitioning, mailbox transposition and the persistent
//! worker-pool scaffolding live in [`crate::exec`] and [`crate::pool`],
//! shared with the event-driven [`crate::ShardedEventSimulation`]. Each
//! shard owns its staging [`Arena`]: recycled message capacity stays with
//! the shard no matter which pool thread runs it.
//!
//! # Determinism contract
//!
//! All randomness derives from the construction seed: a *control* RNG on
//! the driver thread (node seeds, churn, `get_peer`) plus one RNG per shard
//! (initiation order, message loss). Shards never share mutable state
//! within a phase — mailboxes are written by exactly one shard and read by
//! exactly one shard, on opposite sides of a phase barrier — so for a fixed
//! `(seed, shard_count)` the results are **bit-identical regardless of the
//! worker-thread count**. Worker threads are pure executors; changing
//! [`ShardedSimulation::set_workers`] can never change any view, report, or
//! snapshot, which the determinism regression tests pin.
//!
//! Changing the *shard count* legitimately changes results (cross-shard
//! exchanges resolve in mailbox order rather than initiation order), just
//! as changing the seed does. The sequential [`crate::Simulation`] is
//! exactly this engine with one shard: every peer is then local, every
//! exchange is inline and atomic, and the mailbox machinery is never
//! touched.

use pss_core::{
    Arena, GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig, Reply, Request,
    View,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::exec::{self, lose, Directory, Mailboxes, SlotRef};
use crate::pool::WorkerPool;
use crate::population::{BoxedNode, Population};
use crate::workload::Partition;
use crate::Snapshot;

/// Per-cycle accounting returned by [`ShardedSimulation::run_cycle`] and
/// [`crate::Simulation::run_cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleReport {
    /// Exchanges that ran to completion.
    pub completed: u64,
    /// Exchanges aimed at a dead peer (message silently lost).
    pub failed_dead_peer: u64,
    /// Nodes that could not initiate (empty view).
    pub empty_view: u64,
    /// Requests or replies dropped by the loss model.
    pub dropped_messages: u64,
}

impl CycleReport {
    /// Total initiation attempts in the cycle.
    pub fn initiated(&self) -> u64 {
        self.completed + self.failed_dead_peer + self.empty_view + self.dropped_messages
    }
}

impl core::ops::AddAssign for CycleReport {
    fn add_assign(&mut self, rhs: CycleReport) {
        self.completed += rhs.completed;
        self.failed_dead_peer += rhs.failed_dead_peer;
        self.empty_view += rhs.empty_view;
        self.dropped_messages += rhs.dropped_messages;
    }
}

/// How the simulator treats exchange attempts with dead peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailureMode {
    /// Peer selection only considers live view entries — the paper's model:
    /// "selectPeer() … returns the address of a live node as found in the
    /// caller's current view". This abstracts the timeout-and-retry a real
    /// implementation performs within one period. Dead descriptors stay in
    /// views as dead links; they are just never *selected*.
    #[default]
    SkipDead,
    /// Peer selection is liveness-blind; an exchange aimed at a dead peer is
    /// silently lost and the initiator's cycle is wasted. Under `tail` peer
    /// selection this model lets nodes wedge on a dead stalest entry and
    /// re-select it forever — a failure mode worth studying (see the
    /// extension experiments), but not what the paper simulated.
    AttemptAndLose,
}

/// Automatic population growth, reproducing the paper's *growing overlay*
/// scenario: at the beginning of each cycle, `nodes_per_cycle` fresh nodes
/// join (until `target` is reached), each knowing only the oldest node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrowthPlan {
    /// Nodes added per cycle.
    pub nodes_per_cycle: usize,
    /// Population size at which growth stops.
    pub target: usize,
}

/// A request crossing a shard boundary.
struct QueuedRequest {
    from: NodeId,
    to_slot: u32,
    request: Request,
}

/// A reply crossing back.
struct QueuedReply {
    from: NodeId,
    to_slot: u32,
    reply: Reply,
}

/// One shard: a node partition plus everything its worker needs to run a
/// phase without touching any other shard.
struct Shard<N> {
    index: usize,
    pop: Population<N>,
    /// Shard-owned staging arena: every protocol call on this shard's
    /// nodes works out of it, so recycled buffers stay shard-local no
    /// matter which pool thread runs the phase.
    arena: Arena,
    /// Shard-local RNG: initiation order and message-loss draws.
    rng: SmallRng,
    /// Per-cycle initiation order (local slots), reused across cycles.
    order: Vec<u32>,
    /// Cross-shard request queues (filled in phase 1, drained in phase 2).
    requests: Mailboxes<QueuedRequest>,
    /// Cross-shard reply queues (filled in phase 2, drained in phase 3).
    replies: Mailboxes<QueuedReply>,
    /// This shard's share of the cycle report.
    report: CycleReport,
}

/// Read-only cycle context shared by all workers during a phase.
struct CycleCtx<'a> {
    directory: &'a [SlotRef],
    /// Cycle-start liveness snapshot, bit per *global* id.
    alive: &'a [u64],
    loss: f64,
    mode: FailureMode,
    partition: Option<Partition>,
}

impl CycleCtx<'_> {
    #[inline]
    fn is_live(&self, id: NodeId) -> bool {
        let slot = id.as_index();
        self.alive
            .get(slot / 64)
            .is_some_and(|word| word & (1 << (slot % 64)) != 0)
    }
}

/// The sharded cycle-driven simulator. See the [module docs](self) for the
/// execution model and determinism contract; see [`crate::Simulation`] for
/// the sequential (1-shard) wrapper that keeps the historical API.
pub struct ShardedSimulation<N: GossipNode + Send = BoxedNode> {
    shards: Vec<Shard<N>>,
    dir: Directory,
    factory: Box<dyn Fn(NodeId, u64) -> N + Send + Sync>,
    /// Driver-thread RNG: node seeds, churn, `get_peer`.
    control_rng: SmallRng,
    /// Construction seed, kept for (seed, id)-pure bulk construction.
    seed: u64,
    cycle: u64,
    growth: Option<GrowthPlan>,
    message_loss: f64,
    failure_mode: FailureMode,
    partition: Option<Partition>,
    /// Persistent phase executor: threads live as long as the simulation.
    pool: WorkerPool,
    /// Per-cycle liveness snapshot buffer, reused across cycles.
    alive_snapshot: Vec<u64>,
    /// Phase/imbalance telemetry (`engine="cycle"`); purely observational.
    tele: crate::telemetry::EngineTele,
}

impl ShardedSimulation {
    /// Creates an empty sharded simulation whose (boxed) nodes run the
    /// generic protocol of the paper under `config`.
    pub fn new(config: ProtocolConfig, seed: u64, shards: usize) -> Self {
        ShardedSimulation::with_factory(seed, shards, move |id, node_seed| {
            Box::new(PeerSamplingNode::with_seed(id, config.clone(), node_seed)) as BoxedNode
        })
    }
}

impl ShardedSimulation<PeerSamplingNode> {
    /// Creates an empty **monomorphized** sharded simulation of
    /// [`PeerSamplingNode`]s: identical behavior to
    /// [`ShardedSimulation::new`] (same seeds ⇒ same exchanges), minus the
    /// virtual dispatch.
    pub fn typed(config: ProtocolConfig, seed: u64, shards: usize) -> Self {
        ShardedSimulation::with_factory(seed, shards, move |id, node_seed| {
            PeerSamplingNode::with_seed(id, config.clone(), node_seed)
        })
    }
}

impl<N: GossipNode + Send> ShardedSimulation<N> {
    /// Creates an empty sharded simulation with a custom node factory. The
    /// factory receives the assigned node id and a derived RNG seed; it must
    /// be `Fn + Sync` so per-shard populations can be built in parallel
    /// ([`ShardedSimulation::add_nodes_bulk`]).
    ///
    /// Worker count defaults to the available parallelism, capped at the
    /// shard count; it affects wall-clock time only, never results.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_factory(
        seed: u64,
        shards: usize,
        factory: impl Fn(NodeId, u64) -> N + Send + Sync + 'static,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let tele =
            crate::telemetry::EngineTele::new("cycle", &["initiate", "respond", "absorb"], shards);
        let default_workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(shards);
        let shards = (0..shards)
            .map(|index| Shard {
                index,
                pop: Population::new(),
                arena: Arena::new(),
                // Independent per-shard stream; offset so shard 0 does not
                // alias the control RNG.
                rng: SmallRng::seed_from_u64(exec::shard_seed(seed, index)),
                order: Vec::new(),
                requests: Mailboxes::new(shards),
                replies: Mailboxes::new(shards),
                report: CycleReport::default(),
            })
            .collect();
        ShardedSimulation {
            shards,
            dir: Directory::new(),
            factory: Box::new(factory),
            control_rng: SmallRng::seed_from_u64(seed),
            seed,
            cycle: 0,
            growth: None,
            message_loss: 0.0,
            failure_mode: FailureMode::default(),
            partition: None,
            pool: WorkerPool::new(default_workers),
            alive_snapshot: Vec::new(),
            tele,
        }
    }

    /// Number of shards (fixed at construction; part of the result
    /// contract, unlike the worker count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used per phase.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Sets the worker-thread count (clamped to `1..=shard_count`),
    /// rebuilding the persistent pool (the old threads are joined, the new
    /// ones live until the next change or drop). Affects wall-clock time
    /// only; results are bit-identical for any value.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.clamp(1, self.shards.len());
        if workers != self.pool.workers() {
            self.pool = WorkerPool::new(workers);
        }
    }

    /// Declares that the next `n` node ids will be bulk-added, mapping them
    /// to **contiguous per-shard id ranges** (shard `k` owns ids
    /// `[k·n/S, (k+1)·n/S)`). Nodes added beyond the plan go to the least
    /// loaded shard. Call before the first [`ShardedSimulation::add_node`];
    /// the scenario constructors do this for you.
    ///
    /// # Panics
    ///
    /// Panics if nodes were already added.
    pub fn plan_capacity(&mut self, n: usize) {
        self.dir.plan_capacity(n);
    }

    fn shard_for_new(&self, id: u64) -> usize {
        self.dir
            .shard_for_new(id, self.shards.iter().map(|sh| sh.pop.len()))
    }

    /// Selects how exchanges with dead peers are handled (default:
    /// [`FailureMode::SkipDead`], the paper's model).
    pub fn set_failure_mode(&mut self, mode: FailureMode) {
        self.failure_mode = mode;
    }

    /// Installs a growth plan (see [`GrowthPlan`]). Growth happens at the
    /// beginning of each subsequent cycle.
    pub fn set_growth(&mut self, plan: GrowthPlan) {
        self.growth = Some(plan);
    }

    /// Sets a per-message loss probability (0.0 = the paper's lossless
    /// model). Both requests and replies are subject to loss.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_message_loss(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.message_loss = p;
    }

    /// Installs (`Some`) or lifts (`None`) a partition loss matrix
    /// ([`crate::workload::Partition`]): exchanges whose initiator and peer
    /// sit in different groups are dropped before the request is sent,
    /// counted as [`CycleReport::dropped_messages`]. The check is a pure
    /// function of the two ids, so the determinism contract is unaffected.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        self.partition = partition;
    }

    /// Adds one node bootstrapped from `seeds` and returns its id.
    ///
    /// The node seed is drawn from the driver's control RNG, so joins are
    /// ordered events in the run's history (churn determinism). For the
    /// worker-parallel bootstrap path with (seed, id)-pure node seeds, see
    /// [`ShardedSimulation::add_nodes_bulk`].
    pub fn add_node(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) -> NodeId {
        let node_seed = self.control_rng.random();
        let id = NodeId::new(self.dir.len() as u64);
        let shard = self.shard_for_new(id.as_u64());
        let node = (self.factory)(id, node_seed);
        debug_assert_eq!(node.id(), id, "factory must honor the assigned id");
        let slot = self.shards[shard].pop.add_slot(node);
        let pushed = self.dir.push(shard as u32, slot);
        debug_assert_eq!(pushed, id);
        self.shards[shard]
            .pop
            .slot_mut(slot)
            .node
            .init(&mut seeds.into_iter());
        id
    }

    /// Bulk-adds `n` nodes with **worker-parallel per-shard construction**:
    /// node `i` gets the view returned by `seeds(i)`, and both its RNG seed
    /// and its shard placement are pure functions of `(construction seed,
    /// id)` — so the resulting population is bit-identical at any worker
    /// count, which the bootstrap regression tests pin. `seeds` must be
    /// pure for the same reason (the scenario constructors' per-node view
    /// generators are).
    ///
    /// This is the bootstrap path for N = 10⁶ runs, where driver-serial
    /// construction is a noticeable fraction of a short run.
    ///
    /// Node seeds differ from [`ShardedSimulation::add_node`]'s
    /// control-RNG draws: bulk-built populations are their own (equally
    /// deterministic) universe, exactly like a different construction seed.
    ///
    /// # Panics
    ///
    /// Panics if nodes were already added.
    pub fn add_nodes_bulk<I>(&mut self, n: usize, seeds: impl Fn(NodeId) -> I + Sync)
    where
        I: IntoIterator<Item = NodeDescriptor>,
    {
        exec::bulk_build(
            &mut self.dir,
            &mut self.shards,
            &self.pool,
            n,
            self.seed,
            self.factory.as_ref(),
            seeds,
            |shard| &mut shard.pop,
            |shard| shard.index,
            |_, _, _| {}, // cycle nodes have no per-node schedule
        );
    }

    /// Adds `count` nodes, each bootstrapped with `contacts` uniform-random
    /// live contacts (join under churn). Contacts are drawn from the
    /// members that existed *before* this batch — fresh joiners never
    /// bootstrap off each other, which would risk isolated joiner islands.
    /// Returns the new ids.
    pub fn add_nodes_with_random_contacts(&mut self, count: usize, contacts: usize) -> Vec<NodeId> {
        let existing: Vec<NodeId> = self.alive_ids();
        let mut new_ids = Vec::with_capacity(count);
        for _ in 0..count {
            let seeds: Vec<NodeDescriptor> = if existing.is_empty() {
                Vec::new()
            } else {
                (0..contacts)
                    .map(|_| {
                        let pick = existing[self.control_rng.random_range(0..existing.len())];
                        NodeDescriptor::fresh(pick)
                    })
                    .collect()
            };
            new_ids.push(self.add_node(seeds));
        }
        new_ids
    }

    /// Runs one full cycle and reports what happened.
    pub fn run_cycle(&mut self) -> CycleReport {
        self.apply_growth();
        self.cycle += 1;

        // Liveness cannot change mid-cycle, so snapshot it once; every
        // worker reads the same frozen bitset.
        self.alive_snapshot.clear();
        self.alive_snapshot.extend_from_slice(self.dir.alive_bits());

        let Self {
            shards,
            dir,
            alive_snapshot,
            pool,
            message_loss,
            failure_mode,
            partition,
            tele,
            cycle,
            ..
        } = self;
        let cycle = *cycle;
        let ctx = CycleCtx {
            directory: dir.slots(),
            alive: alive_snapshot.as_slice(),
            loss: *message_loss,
            mode: *failure_mode,
            partition: *partition,
        };

        // Phase indices match the names registered in `with_factory`.
        let index = |shard: &Shard<N>| shard.index;
        tele.run_phase(0, Some(cycle), shards, pool, index, |shard| {
            phase_initiate(shard, &ctx)
        });
        exec::transpose(shards, |shard| &mut shard.requests);
        tele.run_phase(1, Some(cycle), shards, pool, index, |shard| {
            phase_respond(shard, &ctx)
        });
        exec::transpose(shards, |shard| &mut shard.replies);
        tele.run_phase(2, Some(cycle), shards, pool, index, phase_absorb);
        tele.cycle_done();

        let mut report = CycleReport::default();
        for shard in shards.iter_mut() {
            report += core::mem::take(&mut shard.report);
        }
        report
    }

    /// Runs `n` cycles, discarding the per-cycle reports.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.run_cycle();
        }
    }

    fn apply_growth(&mut self) {
        let Some(plan) = self.growth else { return };
        if self.node_count() >= plan.target {
            return;
        }
        let missing = plan.target - self.node_count();
        let joining = plan.nodes_per_cycle.min(missing);
        // "The view of these nodes is initialized with only a single node
        // descriptor, which belongs to the oldest, initial node."
        let oldest = NodeId::new(0);
        for _ in 0..joining {
            self.add_node([NodeDescriptor::fresh(oldest)]);
        }
    }

    /// Number of cycles run so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total nodes ever added (dead slots included).
    pub fn node_count(&self) -> usize {
        self.dir.len()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.dir.alive_count()
    }

    /// True if `id` exists and is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.dir.is_alive(id)
    }

    /// Ids of all live nodes, in increasing order.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.dir.alive_ids()
    }

    fn entry(&self, id: NodeId) -> Option<&crate::population::Entry<N>> {
        let slot_ref = self.dir.slot_ref(id)?;
        Some(self.shards[slot_ref.shard as usize].pop.slot(slot_ref.slot))
    }

    fn entry_mut(&mut self, id: NodeId) -> Option<&mut crate::population::Entry<N>> {
        let slot_ref = self.dir.slot_ref(id)?;
        Some(
            self.shards[slot_ref.shard as usize]
                .pop
                .slot_mut(slot_ref.slot),
        )
    }

    /// The view of a live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        if !self.is_alive(id) {
            return None;
        }
        self.entry(id).map(|e| e.node.view())
    }

    /// Calls the peer sampling service (`getPeer()`) on a live node.
    pub fn get_peer(&mut self, id: NodeId) -> Option<NodeId> {
        if !self.is_alive(id) {
            return None;
        }
        // getPeer is a uniform sample of the view, per the paper's simplest
        // implementation; drive it with the control RNG for determinism.
        let len = self.entry(id)?.node.view().len();
        if len == 0 {
            return None;
        }
        let idx = self.control_rng.random_range(0..len);
        Some(self.entry(id)?.node.view().descriptors()[idx].id())
    }

    /// Re-initializes a live node's view from fresh seed descriptors (the
    /// service's `init()` called again). Returns false for dead/unknown
    /// nodes.
    pub fn reinit_node(
        &mut self,
        id: NodeId,
        seeds: impl IntoIterator<Item = NodeDescriptor>,
    ) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        match self.entry_mut(id) {
            Some(entry) => {
                entry.node.init(&mut seeds.into_iter());
                true
            }
            None => false,
        }
    }

    /// Kills one node (crash-stop). Returns false if already dead/unknown.
    pub fn kill(&mut self, id: NodeId) -> bool {
        exec::kill_node(&mut self.dir, &mut self.shards, id, |shard| &mut shard.pop)
    }

    /// Kills a uniform-random set of `count` live nodes and returns them.
    pub fn kill_random(&mut self, count: usize) -> Vec<NodeId> {
        let mut alive: Vec<NodeId> = self.alive_ids();
        // Only `count` picks are needed, not a full-population shuffle.
        let count = count.min(alive.len());
        let (victims, _) = alive.partial_shuffle(&mut self.control_rng, count);
        let victims = victims.to_vec();
        for &v in &victims {
            self.kill(v);
        }
        victims
    }

    /// Kills `fraction` (0..=1) of the live population at random.
    pub fn kill_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let fraction = fraction.clamp(0.0, 1.0);
        let count = (self.alive_count() as f64 * fraction).round() as usize;
        self.kill_random(count)
    }

    /// Descriptors in live views that point to dead nodes (Figure 7's
    /// y-axis).
    pub fn dead_link_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.pop.dead_link_count_with(|id| self.is_alive(id)))
            .sum()
    }

    /// Builds the communication-graph snapshot over live nodes, in global
    /// id order.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::build(
            (0..self.dir.len() as u64)
                .map(NodeId::new)
                .filter(|&id| self.is_alive(id))
                .map(|id| (id, self.entry(id).expect("in directory").node.view())),
            |id| self.is_alive(id),
        )
    }

    /// Visits every live node's `(id, view)` in increasing id order.
    /// The allocation-free way to export overlay topology at large N (the
    /// CSR snapshot path builds on this).
    pub fn for_each_live_view(&self, mut f: impl FnMut(NodeId, &View)) {
        for id in (0..self.dir.len() as u64).map(NodeId::new) {
            if self.is_alive(id) {
                f(id, self.entry(id).expect("in directory").node.view());
            }
        }
    }

    /// Builds the directed live-view graph as a flat CSR — the snapshot
    /// path that survives N = 10⁶: two edge arrays plus the id mapping, no
    /// per-node allocations, no hash maps. Dead view targets are dropped,
    /// exactly as in [`ShardedSimulation::snapshot`].
    pub fn csr_snapshot(&self) -> crate::CsrSnapshot {
        exec::csr_from_views(self.dir.len(), self.dir.alive_count(), |f| {
            self.for_each_live_view(f)
        })
    }

    /// Estimates overlay health by streaming view rows — the O(id-space)
    /// alternative to materializing [`ShardedSimulation::csr_snapshot`]'s
    /// edge arrays at very large N (see [`crate::StreamingMetrics`]).
    pub fn streaming_metrics(&self) -> crate::StreamingMetrics {
        crate::StreamingMetrics::from_views(self.dir.len(), |f| self.for_each_live_view(f))
    }
}

impl<N: GossipNode + Send> std::fmt::Debug for ShardedSimulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("cycle", &self.cycle)
            .field("shards", &self.shards.len())
            .field("workers", &self.pool.workers())
            .field("nodes", &self.dir.len())
            .field("alive", &self.dir.alive_count())
            .field("growth", &self.growth)
            .field("message_loss", &self.message_loss)
            .field("partition", &self.partition)
            .finish()
    }
}

/// Phase 1: every live node initiates; local exchanges complete inline,
/// remote requests are queued.
fn phase_initiate<N: GossipNode + Send>(shard: &mut Shard<N>, ctx: &CycleCtx<'_>) {
    let Shard {
        index,
        pop,
        arena,
        rng,
        order,
        requests,
        report,
        ..
    } = shard;
    order.clear();
    order.extend(pop.alive_slots());
    order.shuffle(rng);
    for &slot in order.iter() {
        // Nodes cannot die mid-cycle, but guard anyway.
        if !pop.slot(slot).alive {
            continue;
        }
        let entry = pop.slot_mut(slot);
        let initiator = entry.node.id();
        let had_view = !entry.node.view().is_empty();
        let exchange = match ctx.mode {
            FailureMode::SkipDead => entry
                .node
                .initiate_filtered(arena, &mut |peer| ctx.is_live(peer)),
            FailureMode::AttemptAndLose => entry.node.initiate(arena),
        };
        let Some(exchange) = exchange else {
            if had_view {
                report.failed_dead_peer += 1; // view held only dead links
            } else {
                report.empty_view += 1;
            }
            continue;
        };
        let peer = exchange.peer;
        if !ctx.is_live(peer) {
            report.failed_dead_peer += 1;
            continue;
        }
        // Partition loss matrix: a dropped request loses the whole
        // exchange. Replies cross back in the other direction, so under a
        // lossy/asymmetric matrix they get their own directional check —
        // only a total blackout makes the reply check unreachable.
        if ctx.partition.is_some_and(|p| p.drops(initiator, peer, rng)) {
            report.dropped_messages += 1;
            continue;
        }
        if lose(rng, ctx.loss) {
            report.dropped_messages += 1;
            continue;
        }
        let dest = ctx.directory[peer.as_index()];
        if dest.shard as usize == *index {
            // Local peer: the exchange completes inline and atomically,
            // exactly like the sequential engine.
            let reply =
                pop.slot_mut(dest.slot)
                    .node
                    .handle_request(arena, initiator, exchange.request);
            if let Some(reply) = reply {
                if ctx.partition.is_some_and(|p| p.drops(peer, initiator, rng))
                    || lose(rng, ctx.loss)
                {
                    report.dropped_messages += 1;
                    continue;
                }
                pop.slot_mut(slot).node.handle_reply(arena, peer, reply);
            }
            report.completed += 1;
        } else {
            requests.out[dest.shard as usize].push(QueuedRequest {
                from: initiator,
                to_slot: dest.slot,
                request: exchange.request,
            });
        }
    }
}

/// Phase 2: drain the request mailbox in sender-shard order, queueing
/// replies.
fn phase_respond<N: GossipNode + Send>(shard: &mut Shard<N>, ctx: &CycleCtx<'_>) {
    let Shard {
        pop,
        arena,
        rng,
        requests,
        replies,
        report,
        ..
    } = shard;
    // Inbox lane = sender shard: draining in lane order is sender-shard
    // order, the fixed ordering the determinism contract relies on.
    for inbox in requests.inbox.iter_mut() {
        for queued in inbox.drain(..) {
            let responder = pop.slot_mut(queued.to_slot);
            let responder_id = responder.node.id();
            let reply = responder
                .node
                .handle_request(arena, queued.from, queued.request);
            match reply {
                Some(reply) => {
                    // The reply crosses back: apply the matrix's reverse
                    // direction (relevant only for lossy partitions — a
                    // total one never lets the request through).
                    if ctx
                        .partition
                        .is_some_and(|p| p.drops(responder_id, queued.from, rng))
                        || lose(rng, ctx.loss)
                    {
                        report.dropped_messages += 1;
                        continue;
                    }
                    let dest = ctx.directory[queued.from.as_index()];
                    replies.out[dest.shard as usize].push(QueuedReply {
                        from: responder_id,
                        to_slot: dest.slot,
                        reply,
                    });
                }
                // Push-only exchange: complete on request delivery.
                None => report.completed += 1,
            }
        }
    }
}

/// Phase 3: drain the reply mailbox in responder-shard order; initiators
/// absorb and the exchanges complete.
fn phase_absorb<N: GossipNode + Send>(shard: &mut Shard<N>) {
    let Shard {
        pop,
        arena,
        replies,
        report,
        ..
    } = shard;
    for inbox in replies.inbox.iter_mut() {
        for queued in inbox.drain(..) {
            pop.slot_mut(queued.to_slot)
                .node
                .handle_reply(arena, queued.from, queued.reply);
            report.completed += 1;
        }
    }
}
