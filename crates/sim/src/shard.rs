//! The sharded deterministic cycle engine.
//!
//! [`ShardedSimulation`] partitions the population into `S` shards and runs
//! the paper's cycle model as a **two-phase** protocol per cycle:
//!
//! 1. **Initiate** — every shard walks its own live nodes in a fresh
//!    shard-local random order. An exchange whose peer lives in the *same*
//!    shard completes inline and atomically, exactly like the sequential
//!    engine. An exchange targeting a *remote* shard queues its request
//!    into a fixed-order cross-shard mailbox.
//! 2. **Exchange** — each shard drains its request mailbox in sender-shard
//!    order (FIFO within each sender), running the passive thread and
//!    queueing replies; replies are then drained the same way and absorbed
//!    by their initiators.
//!
//! # Determinism contract
//!
//! All randomness derives from the construction seed: a *control* RNG on
//! the driver thread (node seeds, churn, `get_peer`) plus one RNG per shard
//! (initiation order, message loss). Shards never share mutable state
//! within a phase — mailboxes are written by exactly one shard and read by
//! exactly one shard, on opposite sides of a phase barrier — so for a fixed
//! `(seed, shard_count)` the results are **bit-identical regardless of the
//! worker-thread count**. Worker threads are pure executors; changing
//! [`ShardedSimulation::set_workers`] can never change any view, report, or
//! snapshot, which the determinism regression tests pin.
//!
//! Changing the *shard count* legitimately changes results (cross-shard
//! exchanges resolve in mailbox order rather than initiation order), just
//! as changing the seed does. The sequential [`crate::Simulation`] is
//! exactly this engine with one shard: every peer is then local, every
//! exchange is inline and atomic, and the mailbox machinery is never
//! touched.

use pss_core::{
    GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig, Reply, Request, View,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::population::{BoxedNode, Population};
use crate::Snapshot;

/// Per-cycle accounting returned by [`ShardedSimulation::run_cycle`] and
/// [`crate::Simulation::run_cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleReport {
    /// Exchanges that ran to completion.
    pub completed: u64,
    /// Exchanges aimed at a dead peer (message silently lost).
    pub failed_dead_peer: u64,
    /// Nodes that could not initiate (empty view).
    pub empty_view: u64,
    /// Requests or replies dropped by the loss model.
    pub dropped_messages: u64,
}

impl CycleReport {
    /// Total initiation attempts in the cycle.
    pub fn initiated(&self) -> u64 {
        self.completed + self.failed_dead_peer + self.empty_view + self.dropped_messages
    }
}

impl core::ops::AddAssign for CycleReport {
    fn add_assign(&mut self, rhs: CycleReport) {
        self.completed += rhs.completed;
        self.failed_dead_peer += rhs.failed_dead_peer;
        self.empty_view += rhs.empty_view;
        self.dropped_messages += rhs.dropped_messages;
    }
}

/// How the simulator treats exchange attempts with dead peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailureMode {
    /// Peer selection only considers live view entries — the paper's model:
    /// "selectPeer() … returns the address of a live node as found in the
    /// caller's current view". This abstracts the timeout-and-retry a real
    /// implementation performs within one period. Dead descriptors stay in
    /// views as dead links; they are just never *selected*.
    #[default]
    SkipDead,
    /// Peer selection is liveness-blind; an exchange aimed at a dead peer is
    /// silently lost and the initiator's cycle is wasted. Under `tail` peer
    /// selection this model lets nodes wedge on a dead stalest entry and
    /// re-select it forever — a failure mode worth studying (see the
    /// extension experiments), but not what the paper simulated.
    AttemptAndLose,
}

/// Automatic population growth, reproducing the paper's *growing overlay*
/// scenario: at the beginning of each cycle, `nodes_per_cycle` fresh nodes
/// join (until `target` is reached), each knowing only the oldest node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrowthPlan {
    /// Nodes added per cycle.
    pub nodes_per_cycle: usize,
    /// Population size at which growth stops.
    pub target: usize,
}

/// Where a global node id lives: `(shard, slot within the shard)`.
#[derive(Debug, Clone, Copy)]
struct SlotRef {
    shard: u32,
    slot: u32,
}

/// A request crossing a shard boundary.
struct QueuedRequest {
    from: NodeId,
    to_slot: u32,
    request: Request,
}

/// A reply crossing back.
struct QueuedReply {
    from: NodeId,
    to_slot: u32,
    reply: Reply,
}

/// One shard: a node partition plus everything its worker needs to run a
/// phase without touching any other shard.
struct Shard<N> {
    index: usize,
    pop: Population<N>,
    /// Shard-local RNG: initiation order and message-loss draws.
    rng: SmallRng,
    /// Per-cycle initiation order (local slots), reused across cycles.
    order: Vec<u32>,
    /// Outgoing requests, one fixed-order queue per destination shard.
    out_requests: Vec<Vec<QueuedRequest>>,
    /// Incoming requests, one queue per sender shard (filled between
    /// phases by mailbox transposition on the driver thread).
    in_requests: Vec<Vec<QueuedRequest>>,
    out_replies: Vec<Vec<QueuedReply>>,
    in_replies: Vec<Vec<QueuedReply>>,
    /// This shard's share of the cycle report.
    report: CycleReport,
}

/// Read-only cycle context shared by all workers during a phase.
struct CycleCtx<'a> {
    directory: &'a [SlotRef],
    /// Cycle-start liveness snapshot, bit per *global* id.
    alive: &'a [u64],
    loss: f64,
    mode: FailureMode,
}

impl CycleCtx<'_> {
    #[inline]
    fn is_live(&self, id: NodeId) -> bool {
        let slot = id.as_index();
        self.alive
            .get(slot / 64)
            .is_some_and(|word| word & (1 << (slot % 64)) != 0)
    }
}

#[inline]
fn lose(rng: &mut SmallRng, loss: f64) -> bool {
    loss > 0.0 && rng.random::<f64>() < loss
}

/// SplitMix64 finalizer, for deriving independent per-shard seeds.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sharded cycle-driven simulator. See the [module docs](self) for the
/// execution model and determinism contract; see [`crate::Simulation`] for
/// the sequential (1-shard) wrapper that keeps the historical API.
pub struct ShardedSimulation<N: GossipNode + Send = BoxedNode> {
    shards: Vec<Shard<N>>,
    directory: Vec<SlotRef>,
    /// Bit per global id; the single source of truth for liveness.
    alive_bits: Vec<u64>,
    alive_count: usize,
    factory: Box<dyn FnMut(NodeId, u64) -> N + Send>,
    /// Driver-thread RNG: node seeds, churn, `get_peer`.
    control_rng: SmallRng,
    cycle: u64,
    growth: Option<GrowthPlan>,
    message_loss: f64,
    failure_mode: FailureMode,
    workers: usize,
    /// Ids below this were pre-planned and map to contiguous shard ranges.
    planned: u64,
    /// Per-cycle liveness snapshot buffer, reused across cycles.
    alive_snapshot: Vec<u64>,
}

impl ShardedSimulation {
    /// Creates an empty sharded simulation whose (boxed) nodes run the
    /// generic protocol of the paper under `config`.
    pub fn new(config: ProtocolConfig, seed: u64, shards: usize) -> Self {
        ShardedSimulation::with_factory(seed, shards, move |id, node_seed| {
            Box::new(PeerSamplingNode::with_seed(id, config.clone(), node_seed)) as BoxedNode
        })
    }
}

impl ShardedSimulation<PeerSamplingNode> {
    /// Creates an empty **monomorphized** sharded simulation of
    /// [`PeerSamplingNode`]s: identical behavior to
    /// [`ShardedSimulation::new`] (same seeds ⇒ same exchanges), minus the
    /// virtual dispatch.
    pub fn typed(config: ProtocolConfig, seed: u64, shards: usize) -> Self {
        ShardedSimulation::with_factory(seed, shards, move |id, node_seed| {
            PeerSamplingNode::with_seed(id, config.clone(), node_seed)
        })
    }
}

impl<N: GossipNode + Send> ShardedSimulation<N> {
    /// Creates an empty sharded simulation with a custom node factory. The
    /// factory receives the assigned node id and a derived RNG seed.
    ///
    /// Worker count defaults to the available parallelism, capped at the
    /// shard count; it affects wall-clock time only, never results.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_factory(
        seed: u64,
        shards: usize,
        factory: impl FnMut(NodeId, u64) -> N + Send + 'static,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let default_workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(shards);
        let shards = (0..shards)
            .map(|index| Shard {
                index,
                pop: Population::new(),
                // Independent per-shard stream; offset by a golden-ratio
                // multiple so shard 0 does not alias the control RNG.
                rng: SmallRng::seed_from_u64(mix(
                    seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                )),
                order: Vec::new(),
                out_requests: (0..shards).map(|_| Vec::new()).collect(),
                in_requests: (0..shards).map(|_| Vec::new()).collect(),
                out_replies: (0..shards).map(|_| Vec::new()).collect(),
                in_replies: (0..shards).map(|_| Vec::new()).collect(),
                report: CycleReport::default(),
            })
            .collect();
        ShardedSimulation {
            shards,
            directory: Vec::new(),
            alive_bits: Vec::new(),
            alive_count: 0,
            factory: Box::new(factory),
            control_rng: SmallRng::seed_from_u64(seed),
            cycle: 0,
            growth: None,
            message_loss: 0.0,
            failure_mode: FailureMode::default(),
            workers: default_workers,
            planned: 0,
            alive_snapshot: Vec::new(),
        }
    }

    /// Number of shards (fixed at construction; part of the result
    /// contract, unlike the worker count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used per phase.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the worker-thread count (clamped to `1..=shard_count`).
    /// Affects wall-clock time only; results are bit-identical for any
    /// value.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.clamp(1, self.shards.len());
    }

    /// Declares that the next `n` node ids will be bulk-added, mapping them
    /// to **contiguous per-shard id ranges** (shard `k` owns ids
    /// `[k·n/S, (k+1)·n/S)`). Nodes added beyond the plan go to the least
    /// loaded shard. Call before the first [`ShardedSimulation::add_node`];
    /// the scenario constructors do this for you.
    ///
    /// # Panics
    ///
    /// Panics if nodes were already added.
    pub fn plan_capacity(&mut self, n: usize) {
        assert!(
            self.directory.is_empty(),
            "plan_capacity must precede the first add_node"
        );
        self.planned = n as u64;
    }

    fn shard_for_new(&self, id: u64) -> usize {
        let s = self.shards.len() as u64;
        if id < self.planned {
            ((id * s) / self.planned) as usize
        } else {
            // Least-loaded, lowest index on ties: deterministic and keeps
            // churn-era joins balanced.
            self.shards
                .iter()
                .enumerate()
                .min_by_key(|(i, sh)| (sh.pop.len(), *i))
                .map(|(i, _)| i)
                .expect("at least one shard")
        }
    }

    /// Selects how exchanges with dead peers are handled (default:
    /// [`FailureMode::SkipDead`], the paper's model).
    pub fn set_failure_mode(&mut self, mode: FailureMode) {
        self.failure_mode = mode;
    }

    /// Installs a growth plan (see [`GrowthPlan`]). Growth happens at the
    /// beginning of each subsequent cycle.
    pub fn set_growth(&mut self, plan: GrowthPlan) {
        self.growth = Some(plan);
    }

    /// Sets a per-message loss probability (0.0 = the paper's lossless
    /// model). Both requests and replies are subject to loss.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_message_loss(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.message_loss = p;
    }

    /// Adds one node bootstrapped from `seeds` and returns its id.
    pub fn add_node(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) -> NodeId {
        let node_seed = self.control_rng.random();
        let id = NodeId::new(self.directory.len() as u64);
        let shard = self.shard_for_new(id.as_u64());
        let node = (self.factory)(id, node_seed);
        debug_assert_eq!(node.id(), id, "factory must honor the assigned id");
        let slot = self.shards[shard].pop.add_slot(node);
        self.directory.push(SlotRef {
            shard: shard as u32,
            slot,
        });
        let bit = id.as_index();
        if bit / 64 >= self.alive_bits.len() {
            self.alive_bits.push(0);
        }
        self.alive_bits[bit / 64] |= 1 << (bit % 64);
        self.alive_count += 1;
        self.shards[shard]
            .pop
            .slot_mut(slot)
            .node
            .init(&mut seeds.into_iter());
        id
    }

    /// Adds `count` nodes, each bootstrapped with `contacts` uniform-random
    /// live contacts (join under churn). Contacts are drawn from the
    /// members that existed *before* this batch — fresh joiners never
    /// bootstrap off each other, which would risk isolated joiner islands.
    /// Returns the new ids.
    pub fn add_nodes_with_random_contacts(&mut self, count: usize, contacts: usize) -> Vec<NodeId> {
        let existing: Vec<NodeId> = self.alive_ids();
        let mut new_ids = Vec::with_capacity(count);
        for _ in 0..count {
            let seeds: Vec<NodeDescriptor> = if existing.is_empty() {
                Vec::new()
            } else {
                (0..contacts)
                    .map(|_| {
                        let pick = existing[self.control_rng.random_range(0..existing.len())];
                        NodeDescriptor::fresh(pick)
                    })
                    .collect()
            };
            new_ids.push(self.add_node(seeds));
        }
        new_ids
    }

    /// Runs one full cycle and reports what happened.
    pub fn run_cycle(&mut self) -> CycleReport {
        self.apply_growth();
        self.cycle += 1;

        // Liveness cannot change mid-cycle, so snapshot it once; every
        // worker reads the same frozen bitset.
        self.alive_snapshot.clear();
        self.alive_snapshot.extend_from_slice(&self.alive_bits);

        let Self {
            shards,
            directory,
            alive_snapshot,
            workers,
            message_loss,
            failure_mode,
            ..
        } = self;
        let ctx = CycleCtx {
            directory: directory.as_slice(),
            alive: alive_snapshot.as_slice(),
            loss: *message_loss,
            mode: *failure_mode,
        };

        run_phase(shards, *workers, |shard| phase_initiate(shard, &ctx));
        transpose_requests(shards);
        run_phase(shards, *workers, |shard| phase_respond(shard, &ctx));
        transpose_replies(shards);
        run_phase(shards, *workers, phase_absorb);

        let mut report = CycleReport::default();
        for shard in shards.iter_mut() {
            report += core::mem::take(&mut shard.report);
        }
        report
    }

    /// Runs `n` cycles, discarding the per-cycle reports.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.run_cycle();
        }
    }

    fn apply_growth(&mut self) {
        let Some(plan) = self.growth else { return };
        if self.node_count() >= plan.target {
            return;
        }
        let missing = plan.target - self.node_count();
        let joining = plan.nodes_per_cycle.min(missing);
        // "The view of these nodes is initialized with only a single node
        // descriptor, which belongs to the oldest, initial node."
        let oldest = NodeId::new(0);
        for _ in 0..joining {
            self.add_node([NodeDescriptor::fresh(oldest)]);
        }
    }

    /// Number of cycles run so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total nodes ever added (dead slots included).
    pub fn node_count(&self) -> usize {
        self.directory.len()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// True if `id` exists and is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        let slot = id.as_index();
        self.alive_bits
            .get(slot / 64)
            .is_some_and(|word| word & (1 << (slot % 64)) != 0)
    }

    /// Ids of all live nodes, in increasing order.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        (0..self.directory.len() as u64)
            .map(NodeId::new)
            .filter(|&id| self.is_alive(id))
            .collect()
    }

    fn entry(&self, id: NodeId) -> Option<&crate::population::Entry<N>> {
        let slot_ref = self.directory.get(id.as_index())?;
        Some(self.shards[slot_ref.shard as usize].pop.slot(slot_ref.slot))
    }

    fn entry_mut(&mut self, id: NodeId) -> Option<&mut crate::population::Entry<N>> {
        let slot_ref = *self.directory.get(id.as_index())?;
        Some(
            self.shards[slot_ref.shard as usize]
                .pop
                .slot_mut(slot_ref.slot),
        )
    }

    /// The view of a live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        if !self.is_alive(id) {
            return None;
        }
        self.entry(id).map(|e| e.node.view())
    }

    /// Calls the peer sampling service (`getPeer()`) on a live node.
    pub fn get_peer(&mut self, id: NodeId) -> Option<NodeId> {
        if !self.is_alive(id) {
            return None;
        }
        // getPeer is a uniform sample of the view, per the paper's simplest
        // implementation; drive it with the control RNG for determinism.
        let len = self.entry(id)?.node.view().len();
        if len == 0 {
            return None;
        }
        let idx = self.control_rng.random_range(0..len);
        Some(self.entry(id)?.node.view().descriptors()[idx].id())
    }

    /// Re-initializes a live node's view from fresh seed descriptors (the
    /// service's `init()` called again). Returns false for dead/unknown
    /// nodes.
    pub fn reinit_node(
        &mut self,
        id: NodeId,
        seeds: impl IntoIterator<Item = NodeDescriptor>,
    ) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        match self.entry_mut(id) {
            Some(entry) => {
                entry.node.init(&mut seeds.into_iter());
                true
            }
            None => false,
        }
    }

    /// Kills one node (crash-stop). Returns false if already dead/unknown.
    pub fn kill(&mut self, id: NodeId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        let slot_ref = self.directory[id.as_index()];
        let killed = self.shards[slot_ref.shard as usize]
            .pop
            .kill_slot(slot_ref.slot);
        debug_assert!(killed);
        let bit = id.as_index();
        self.alive_bits[bit / 64] &= !(1 << (bit % 64));
        self.alive_count -= 1;
        true
    }

    /// Kills a uniform-random set of `count` live nodes and returns them.
    pub fn kill_random(&mut self, count: usize) -> Vec<NodeId> {
        let mut alive: Vec<NodeId> = self.alive_ids();
        // Only `count` picks are needed, not a full-population shuffle.
        let count = count.min(alive.len());
        let (victims, _) = alive.partial_shuffle(&mut self.control_rng, count);
        let victims = victims.to_vec();
        for &v in &victims {
            self.kill(v);
        }
        victims
    }

    /// Kills `fraction` (0..=1) of the live population at random.
    pub fn kill_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let fraction = fraction.clamp(0.0, 1.0);
        let count = (self.alive_count as f64 * fraction).round() as usize;
        self.kill_random(count)
    }

    /// Descriptors in live views that point to dead nodes (Figure 7's
    /// y-axis).
    pub fn dead_link_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.pop.dead_link_count_with(|id| self.is_alive(id)))
            .sum()
    }

    /// Builds the communication-graph snapshot over live nodes, in global
    /// id order.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::build(
            (0..self.directory.len() as u64)
                .map(NodeId::new)
                .filter(|&id| self.is_alive(id))
                .map(|id| (id, self.entry(id).expect("in directory").node.view())),
            |id| self.is_alive(id),
        )
    }

    /// Visits every live node's `(id, view)` in increasing id order.
    /// The allocation-free way to export overlay topology at large N (the
    /// CSR snapshot path builds on this).
    pub fn for_each_live_view(&self, mut f: impl FnMut(NodeId, &View)) {
        for id in (0..self.directory.len() as u64).map(NodeId::new) {
            if self.is_alive(id) {
                f(id, self.entry(id).expect("in directory").node.view());
            }
        }
    }

    /// Builds the directed live-view graph as a flat CSR — the snapshot
    /// path that survives N = 10⁶: two edge arrays plus the id mapping, no
    /// per-node allocations, no hash maps. Dead view targets are dropped,
    /// exactly as in [`ShardedSimulation::snapshot`].
    pub fn csr_snapshot(&self) -> crate::CsrSnapshot {
        let n = self.directory.len();
        let mut index = vec![u32::MAX; n];
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.alive_count);
        for raw in 0..n as u64 {
            let id = NodeId::new(raw);
            if self.is_alive(id) {
                index[id.as_index()] = ids.len() as u32;
                ids.push(id);
            }
        }
        // Estimate edge capacity from the first live view (views share c).
        let per_node = ids
            .first()
            .and_then(|&id| self.view_of(id))
            .map_or(0, View::len);
        let mut builder =
            pss_graph::csr::CsrBuilder::with_capacity(ids.len(), ids.len() * per_node);
        for &id in &ids {
            let view = self.entry(id).expect("in directory").node.view();
            builder.push_node(view.ids().filter_map(|target| {
                index
                    .get(target.as_index())
                    .copied()
                    .filter(|&compact| compact != u32::MAX)
            }));
        }
        let graph = builder.finish().expect("compact indices are in range");
        crate::CsrSnapshot::new(graph, ids)
    }
}

impl<N: GossipNode + Send> std::fmt::Debug for ShardedSimulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("cycle", &self.cycle)
            .field("shards", &self.shards.len())
            .field("workers", &self.workers)
            .field("nodes", &self.directory.len())
            .field("alive", &self.alive_count)
            .field("growth", &self.growth)
            .field("message_loss", &self.message_loss)
            .finish()
    }
}

/// Phase 1: every live node initiates; local exchanges complete inline,
/// remote requests are queued.
fn phase_initiate<N: GossipNode + Send>(shard: &mut Shard<N>, ctx: &CycleCtx<'_>) {
    let Shard {
        index,
        pop,
        rng,
        order,
        out_requests,
        report,
        ..
    } = shard;
    order.clear();
    order.extend(pop.alive_slots());
    order.shuffle(rng);
    for &slot in order.iter() {
        // Nodes cannot die mid-cycle, but guard anyway.
        if !pop.slot(slot).alive {
            continue;
        }
        let entry = pop.slot_mut(slot);
        let initiator = entry.node.id();
        let had_view = !entry.node.view().is_empty();
        let exchange = match ctx.mode {
            FailureMode::SkipDead => entry.node.initiate_filtered(&mut |peer| ctx.is_live(peer)),
            FailureMode::AttemptAndLose => entry.node.initiate(),
        };
        let Some(exchange) = exchange else {
            if had_view {
                report.failed_dead_peer += 1; // view held only dead links
            } else {
                report.empty_view += 1;
            }
            continue;
        };
        let peer = exchange.peer;
        if !ctx.is_live(peer) {
            report.failed_dead_peer += 1;
            continue;
        }
        if lose(rng, ctx.loss) {
            report.dropped_messages += 1;
            continue;
        }
        let dest = ctx.directory[peer.as_index()];
        if dest.shard as usize == *index {
            // Local peer: the exchange completes inline and atomically,
            // exactly like the sequential engine.
            let reply = pop
                .slot_mut(dest.slot)
                .node
                .handle_request(initiator, exchange.request);
            if let Some(reply) = reply {
                if lose(rng, ctx.loss) {
                    report.dropped_messages += 1;
                    continue;
                }
                pop.slot_mut(slot).node.handle_reply(peer, reply);
            }
            report.completed += 1;
        } else {
            out_requests[dest.shard as usize].push(QueuedRequest {
                from: initiator,
                to_slot: dest.slot,
                request: exchange.request,
            });
        }
    }
}

/// Phase 2: drain the request mailbox in sender-shard order, queueing
/// replies.
fn phase_respond<N: GossipNode + Send>(shard: &mut Shard<N>, ctx: &CycleCtx<'_>) {
    let Shard {
        pop,
        rng,
        in_requests,
        out_replies,
        report,
        ..
    } = shard;
    // Inbox index = sender shard: draining in vec order is sender-shard
    // order, the fixed ordering the determinism contract relies on.
    for inbox in in_requests.iter_mut() {
        for queued in inbox.drain(..) {
            let responder = pop.slot_mut(queued.to_slot);
            let responder_id = responder.node.id();
            let reply = responder.node.handle_request(queued.from, queued.request);
            match reply {
                Some(reply) => {
                    if lose(rng, ctx.loss) {
                        report.dropped_messages += 1;
                        continue;
                    }
                    let dest = ctx.directory[queued.from.as_index()];
                    out_replies[dest.shard as usize].push(QueuedReply {
                        from: responder_id,
                        to_slot: dest.slot,
                        reply,
                    });
                }
                // Push-only exchange: complete on request delivery.
                None => report.completed += 1,
            }
        }
    }
}

/// Phase 3: drain the reply mailbox in responder-shard order; initiators
/// absorb and the exchanges complete.
fn phase_absorb<N: GossipNode + Send>(shard: &mut Shard<N>) {
    let Shard {
        pop,
        in_replies,
        report,
        ..
    } = shard;
    for inbox in in_replies.iter_mut() {
        for queued in inbox.drain(..) {
            pop.slot_mut(queued.to_slot)
                .node
                .handle_reply(queued.from, queued.reply);
            report.completed += 1;
        }
    }
}

/// Runs `f` over every shard using up to `workers` scoped threads with a
/// static round-robin shard assignment. The assignment is pure load
/// balancing: shards are data-isolated within a phase, so which thread runs
/// which shard can never affect results.
fn run_phase<N, F>(shards: &mut [Shard<N>], workers: usize, f: F)
where
    N: GossipNode + Send,
    F: Fn(&mut Shard<N>) + Sync,
{
    let workers = workers.clamp(1, shards.len().max(1));
    if workers <= 1 {
        for shard in shards.iter_mut() {
            f(shard);
        }
        return;
    }
    let mut buckets: Vec<Vec<&mut Shard<N>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, shard) in shards.iter_mut().enumerate() {
        buckets[i % workers].push(shard);
    }
    let f = &f;
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                // Warm this worker's staging arena once per phase batch.
                pss_core::staging::prewarm(2, 64);
                for shard in bucket {
                    f(shard);
                }
            });
        }
    });
}

/// Two distinct mutable shards by index.
///
/// # Panics
///
/// Panics if `i == j` or either is out of range.
fn shard_pair<N>(shards: &mut [Shard<N>], i: usize, j: usize) -> (&mut Shard<N>, &mut Shard<N>) {
    assert_ne!(i, j);
    if i < j {
        let (lo, hi) = shards.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = shards.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

/// Moves every `out_requests[dst]` queue into the destination's
/// `in_requests[src]` slot: the mailbox transposition between phases 1 and
/// 2. Vectors are swapped, not copied, and the drained inbox capacity flows
/// back to the sender — O(S²) pointer swaps on the driver thread.
fn transpose_requests<N>(shards: &mut [Shard<N>]) {
    for src in 0..shards.len() {
        for dst in 0..shards.len() {
            if src == dst {
                continue;
            }
            let (sender, receiver) = shard_pair(shards, src, dst);
            let out = core::mem::take(&mut sender.out_requests[dst]);
            let spent = core::mem::replace(&mut receiver.in_requests[src], out);
            debug_assert!(spent.is_empty(), "inbox must be drained before refill");
            sender.out_requests[dst] = spent; // recycle capacity
        }
    }
}

/// The reply-mailbox transposition between phases 2 and 3 (see
/// [`transpose_requests`]).
fn transpose_replies<N>(shards: &mut [Shard<N>]) {
    for src in 0..shards.len() {
        for dst in 0..shards.len() {
            if src == dst {
                continue;
            }
            let (sender, receiver) = shard_pair(shards, src, dst);
            let out = core::mem::take(&mut sender.out_replies[dst]);
            let spent = core::mem::replace(&mut receiver.in_replies[src], out);
            debug_assert!(spent.is_empty(), "inbox must be drained before refill");
            sender.out_replies[dst] = spent; // recycle capacity
        }
    }
}
