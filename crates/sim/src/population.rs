//! Node storage shared by all simulation engines.
//!
//! A [`Population`] is a dense table of protocol nodes with a `u64`-bitset
//! liveness mirror, holding **one shard** of a sharded population: slots
//! are shard-local indices, the node's *global* id lives in the node
//! itself, and the mapping from global id to `(shard, slot)` is kept by
//! the owning engine's [`crate::exec::Directory`]. Both the cycle engines
//! ([`crate::ShardedSimulation`]) and the event engines
//! ([`crate::ShardedEventSimulation`]) store their partitions this way;
//! the sequential wrappers are the 1-shard special case.

use pss_core::{GossipNode, NodeId};

/// A heap-allocated protocol node usable by the simulators.
///
/// Any [`GossipNode`] implementation works: the paper's
/// [`pss_core::PeerSamplingNode`], the H&S extension
/// [`pss_core::hs::HsNode`], or custom user protocols.
pub type BoxedNode = Box<dyn GossipNode + Send>;

pub(crate) struct Entry<N> {
    pub(crate) node: N,
    pub(crate) alive: bool,
}

/// Dense table of nodes; slots are assigned sequentially and never reused,
/// so a dead node's slot stays dead.
///
/// Generic over the node type: `Population<BoxedNode>` (the default) holds
/// heterogeneous boxed nodes behind virtual dispatch; a concrete `N` gives
/// the monomorphized fast path. Liveness is mirrored in a `u64` bitset so
/// per-cycle snapshots are word copies instead of per-node scans.
pub(crate) struct Population<N = BoxedNode> {
    entries: Vec<Entry<N>>,
    alive_count: usize,
    /// Bit `i` set ⇔ slot `i` is alive.
    alive_bits: Vec<u64>,
}

impl<N> Default for Population<N> {
    fn default() -> Self {
        Population {
            entries: Vec::new(),
            alive_count: 0,
            alive_bits: Vec::new(),
        }
    }
}

impl<N: GossipNode> Population<N> {
    pub(crate) fn new() -> Self {
        Population::default()
    }

    /// Adds an already-built node (whose id need not match the slot) and
    /// returns its slot index.
    pub(crate) fn add_slot(&mut self, node: N) -> u32 {
        let slot = self.entries.len() as u32;
        self.push_alive(node);
        slot
    }

    fn push_alive(&mut self, node: N) {
        let slot = self.entries.len();
        self.entries.push(Entry { node, alive: true });
        self.alive_count += 1;
        if slot / 64 >= self.alive_bits.len() {
            self.alive_bits.push(0);
        }
        self.alive_bits[slot / 64] |= 1 << (slot % 64);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The liveness bitset (bit `i` ⇔ slot `i` alive).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn alive_bits(&self) -> &[u64] {
        &self.alive_bits
    }

    /// Slot-based kill. Returns false if already dead.
    pub(crate) fn kill_slot(&mut self, slot: u32) -> bool {
        match self.entries.get_mut(slot as usize) {
            Some(e) if e.alive => {
                e.alive = false;
                self.alive_count -= 1;
                let slot = slot as usize;
                self.alive_bits[slot / 64] &= !(1 << (slot % 64));
                true
            }
            _ => false,
        }
    }

    /// The entry in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub(crate) fn slot(&self, slot: u32) -> &Entry<N> {
        &self.entries[slot as usize]
    }

    /// Mutable entry in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub(crate) fn slot_mut(&mut self, slot: u32) -> &mut Entry<N> {
        &mut self.entries[slot as usize]
    }

    /// Live slots in increasing slot order.
    pub(crate) fn alive_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| i as u32)
    }

    /// Descriptors held by live nodes that point at nodes `is_live` rejects.
    pub(crate) fn dead_link_count_with(&self, is_live: impl Fn(NodeId) -> bool) -> usize {
        self.entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| {
                e.node
                    .view()
                    .ids()
                    .filter(|&target| !is_live(target))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::{PeerSamplingNode, PolicyTriple, ProtocolConfig};

    fn node(id: u64) -> PeerSamplingNode {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 4).unwrap();
        PeerSamplingNode::with_seed(NodeId::new(id), config, id + 1)
    }

    #[test]
    fn slot_storage_keeps_global_ids() {
        let mut pop: Population<PeerSamplingNode> = Population::new();
        // Slots 0/1 hold globally-numbered nodes 10/12.
        assert_eq!(pop.add_slot(node(10)), 0);
        assert_eq!(pop.add_slot(node(12)), 1);
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.slot(0).node.id(), NodeId::new(10));
        assert_eq!(pop.slot(1).node.id(), NodeId::new(12));
        assert!(pop.kill_slot(1));
        assert!(!pop.kill_slot(1));
        assert_eq!(pop.alive_count(), 1);
        assert_eq!(pop.alive_slots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(pop.alive_bits(), &[0b01]);
    }
}
