//! The node population shared by both simulation engines.

use pss_core::{GossipNode, NodeId, View};

use crate::Snapshot;

/// A heap-allocated protocol node usable by the simulators.
///
/// Any [`GossipNode`] implementation works: the paper's
/// [`pss_core::PeerSamplingNode`], the H&S extension
/// [`pss_core::hs::HsNode`], or custom user protocols.
pub type BoxedNode = Box<dyn GossipNode + Send>;

pub(crate) struct Entry {
    pub(crate) node: BoxedNode,
    pub(crate) alive: bool,
}

/// Dense table of nodes indexed by [`NodeId`]; ids are assigned
/// sequentially and never reused, so a dead node's slot stays dead.
#[derive(Default)]
pub(crate) struct Population {
    entries: Vec<Entry>,
    alive_count: usize,
}

impl Population {
    pub(crate) fn new() -> Self {
        Population::default()
    }

    /// Adds a node built by `make` from its assigned id.
    pub(crate) fn add_with(&mut self, make: impl FnOnce(NodeId) -> BoxedNode) -> NodeId {
        let id = NodeId::new(self.entries.len() as u64);
        let node = make(id);
        debug_assert_eq!(node.id(), id, "factory must honor the assigned id");
        self.entries.push(Entry { node, alive: true });
        self.alive_count += 1;
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn alive_count(&self) -> usize {
        self.alive_count
    }

    pub(crate) fn is_alive(&self, id: NodeId) -> bool {
        self.entries
            .get(id.as_index())
            .map(|e| e.alive)
            .unwrap_or(false)
    }

    pub(crate) fn kill(&mut self, id: NodeId) -> bool {
        match self.entries.get_mut(id.as_index()) {
            Some(e) if e.alive => {
                e.alive = false;
                self.alive_count -= 1;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn get(&self, id: NodeId) -> Option<&Entry> {
        self.entries.get(id.as_index())
    }

    pub(crate) fn get_mut(&mut self, id: NodeId) -> Option<&mut Entry> {
        self.entries.get_mut(id.as_index())
    }

    pub(crate) fn alive_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| NodeId::new(i as u64))
    }

    pub(crate) fn view_of(&self, id: NodeId) -> Option<&View> {
        let e = self.get(id)?;
        e.alive.then(|| e.node.view())
    }

    /// Descriptors held by live nodes that point at dead nodes.
    pub(crate) fn dead_link_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| {
                e.node
                    .view()
                    .ids()
                    .filter(|&target| !self.is_alive(target))
                    .count()
            })
            .sum()
    }

    /// Builds the communication-graph snapshot over live nodes.
    pub(crate) fn snapshot(&self) -> Snapshot {
        Snapshot::build(
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.alive)
                .map(|(i, e)| (NodeId::new(i as u64), e.node.view())),
            |id| self.is_alive(id),
        )
    }
}
