//! The node population shared by both simulation engines.

use pss_core::{GossipNode, NodeId, View};

use crate::Snapshot;

/// A heap-allocated protocol node usable by the simulators.
///
/// Any [`GossipNode`] implementation works: the paper's
/// [`pss_core::PeerSamplingNode`], the H&S extension
/// [`pss_core::hs::HsNode`], or custom user protocols.
pub type BoxedNode = Box<dyn GossipNode + Send>;

pub(crate) struct Entry<N> {
    pub(crate) node: N,
    pub(crate) alive: bool,
}

/// Dense table of nodes indexed by [`NodeId`]; ids are assigned
/// sequentially and never reused, so a dead node's slot stays dead.
///
/// Generic over the node type: `Population<BoxedNode>` (the default) holds
/// heterogeneous boxed nodes behind virtual dispatch; a concrete `N` gives
/// the monomorphized fast path. Liveness is mirrored in a `u64` bitset so
/// the per-cycle snapshot is a word copy instead of a per-node scan.
pub(crate) struct Population<N = BoxedNode> {
    entries: Vec<Entry<N>>,
    alive_count: usize,
    /// Bit `i` set ⇔ node `i` is alive.
    alive_bits: Vec<u64>,
}

impl<N> Default for Population<N> {
    fn default() -> Self {
        Population {
            entries: Vec::new(),
            alive_count: 0,
            alive_bits: Vec::new(),
        }
    }
}

impl<N: GossipNode> Population<N> {
    pub(crate) fn new() -> Self {
        Population::default()
    }

    /// Adds a node built by `make` from its assigned id.
    pub(crate) fn add_with(&mut self, make: impl FnOnce(NodeId) -> N) -> NodeId {
        let id = NodeId::new(self.entries.len() as u64);
        let node = make(id);
        debug_assert_eq!(node.id(), id, "factory must honor the assigned id");
        self.entries.push(Entry { node, alive: true });
        self.alive_count += 1;
        let slot = id.as_index();
        if slot / 64 >= self.alive_bits.len() {
            self.alive_bits.push(0);
        }
        self.alive_bits[slot / 64] |= 1 << (slot % 64);
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn alive_count(&self) -> usize {
        self.alive_count
    }

    pub(crate) fn is_alive(&self, id: NodeId) -> bool {
        self.entries
            .get(id.as_index())
            .map(|e| e.alive)
            .unwrap_or(false)
    }

    /// The liveness bitset (bit `i` ⇔ node `i` alive), for cycle drivers
    /// that snapshot liveness once per cycle.
    pub(crate) fn alive_bits(&self) -> &[u64] {
        &self.alive_bits
    }

    pub(crate) fn kill(&mut self, id: NodeId) -> bool {
        match self.entries.get_mut(id.as_index()) {
            Some(e) if e.alive => {
                e.alive = false;
                self.alive_count -= 1;
                let slot = id.as_index();
                self.alive_bits[slot / 64] &= !(1 << (slot % 64));
                true
            }
            _ => false,
        }
    }

    pub(crate) fn get(&self, id: NodeId) -> Option<&Entry<N>> {
        self.entries.get(id.as_index())
    }

    pub(crate) fn get_mut(&mut self, id: NodeId) -> Option<&mut Entry<N>> {
        self.entries.get_mut(id.as_index())
    }

    pub(crate) fn alive_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| NodeId::new(i as u64))
    }

    pub(crate) fn view_of(&self, id: NodeId) -> Option<&View> {
        let e = self.get(id)?;
        e.alive.then(|| e.node.view())
    }

    /// Descriptors held by live nodes that point at dead nodes.
    pub(crate) fn dead_link_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| {
                e.node
                    .view()
                    .ids()
                    .filter(|&target| !self.is_alive(target))
                    .count()
            })
            .sum()
    }

    /// Builds the communication-graph snapshot over live nodes.
    pub(crate) fn snapshot(&self) -> Snapshot {
        Snapshot::build(
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.alive)
                .map(|(i, e)| (NodeId::new(i as u64), e.node.view())),
            |id| self.is_alive(id),
        )
    }
}
