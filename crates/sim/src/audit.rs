//! Overlay health auditing under Byzantine attack.
//!
//! [`run_workload`](crate::workload::run_workload) measures *benign* health
//! (convergence, dead links, components). When a schedule places
//! adversaries ([`pss_core::adversary`]), this module layers the attack
//! observables on top, through the same CSR path every stack already
//! feeds:
//!
//! * **in-degree capture** — mean in-degree of attacker ids vs honest ids
//!   ([`AttackRecord::skew`]), plus the Gini coefficient of the whole
//!   live in-degree distribution (hub attacks concentrate mass);
//! * **attacker-edge fraction** — the share of honest view entries
//!   pointing at attacker ids (the poisoned fraction of the overlay);
//! * **victim isolation** — per eclipse victim, the first period its view
//!   is 100 % attacker-controlled ([`AttackAudit::isolation`]);
//! * **largest attacker-free component** — connectivity of the honest
//!   overlay after deleting every attacker node and edge;
//! * **sample-stream randomness** — a PeerSwap-style chi-square uniformity
//!   test ([`SampleAudit`]) over an observer's `getPeer()`-like stream:
//!   passes on clean runs, fails loudly under hub attack.
//!
//! Everything is computed from the `(id, view targets)` rows the workload
//! runner already snapshots, so the cycle engine, the event engine, and
//! the live cluster produce directly comparable [`AttackRecord`]s.

use std::collections::HashMap;

use pss_core::adversary::AdversaryRoles;
use pss_core::hs::{HsConfig, HsNode};
use pss_core::{NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig};
use pss_stats::{chi_square_uniform, ChiSquare};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::workload::{run_workload_observed, CompiledWorkload, PeriodRecord, WorkloadTarget};
use crate::{BoxedNode, CsrSnapshot};

/// The honest node implementation of an attacked population — the policy
/// dimension the adversary experiments sweep.
#[derive(Debug, Clone)]
pub enum HonestPolicy {
    /// The 2004 skeleton under this protocol configuration.
    Sampling(ProtocolConfig),
    /// The TOCS 2007 healer/swapper generalization.
    Hs(HsConfig),
}

impl HonestPolicy {
    /// The view size `c` honest nodes (and attackers) run.
    pub fn view_size(&self) -> usize {
        match self {
            HonestPolicy::Sampling(config) => config.view_size(),
            HonestPolicy::Hs(config) => config.view_size(),
        }
    }

    /// The protocol configuration attack mimics run underneath: the honest
    /// one where available, else newscast at the same view size.
    fn attacker_config(&self) -> ProtocolConfig {
        match self {
            HonestPolicy::Sampling(config) => config.clone(),
            HonestPolicy::Hs(config) => {
                ProtocolConfig::new(PolicyTriple::newscast(), config.view_size())
                    .expect("H&S view sizes are valid skeleton view sizes")
            }
        }
    }

    /// Builds one honest node.
    pub fn build(&self, id: NodeId, seed: u64) -> BoxedNode {
        match self {
            HonestPolicy::Sampling(config) => {
                Box::new(PeerSamplingNode::with_seed(id, config.clone(), seed))
            }
            HonestPolicy::Hs(config) => Box::new(HsNode::with_seed(id, *config, seed)),
        }
    }
}

/// A node factory dispatching on the compiled role assignment: attacker
/// ids get their attack node, everyone else the honest policy. With no
/// roles the factory is purely honest — so clean and attacked runs share
/// one construction path on every engine
/// ([`crate::ShardedSimulation::with_factory`] and the event twin).
pub fn role_factory(
    policy: HonestPolicy,
    roles: Option<AdversaryRoles>,
) -> impl Fn(NodeId, u64) -> BoxedNode + Send + Sync + 'static {
    let attacker_config = policy.attacker_config();
    move |id, seed| match &roles {
        Some(r) if r.is_attacker(id) => r.build_attacker(id, &attacker_config, seed),
        _ => policy.build(id, seed),
    }
}

/// Attack observables of one period; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRecord {
    /// 1-based period index.
    pub period: u64,
    /// Live nodes (honest + attackers).
    pub live: usize,
    /// Live honest nodes.
    pub honest_live: usize,
    /// Live attacker nodes.
    pub attackers_live: usize,
    /// Mean in-degree of live attacker ids in the live view graph.
    pub attacker_in_degree_mean: f64,
    /// Mean in-degree of live honest ids in the live view graph.
    pub honest_in_degree_mean: f64,
    /// Fraction of honest view entries pointing at attacker ids.
    pub attacker_edge_fraction: f64,
    /// Gini coefficient of the live in-degree distribution (0 = perfectly
    /// even, → 1 = fully concentrated).
    pub in_degree_gini: f64,
    /// Live eclipse victims whose non-empty view is 100 % attacker ids.
    pub eclipsed_victims: usize,
    /// Largest weakly-connected component of the overlay after deleting
    /// every attacker node and every edge touching one.
    pub largest_honest_component: usize,
}

impl AttackRecord {
    /// In-degree capture ratio: attacker mean over honest mean. 1.0 means
    /// attackers are indistinguishable from honest nodes; hub attacks on
    /// freshness-greedy policies push this far above 1.
    pub fn skew(&self) -> f64 {
        if self.honest_in_degree_mean <= 0.0 {
            if self.attacker_in_degree_mean > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            self.attacker_in_degree_mean / self.honest_in_degree_mean
        }
    }

    /// Largest attacker-free component as a fraction of live honest nodes.
    pub fn honest_component_fraction(&self) -> f64 {
        if self.honest_live == 0 {
            0.0
        } else {
            self.largest_honest_component as f64 / self.honest_live as f64
        }
    }
}

/// Gini coefficient of a non-negative sample; 0 for empty or all-zero
/// input.
fn gini(values: &mut [f64]) -> f64 {
    let n = values.len();
    let sum: f64 = values.iter().sum();
    if n == 0 || sum <= 0.0 {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("degrees are finite"));
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * x)
        .sum();
    weighted / (n as f64 * sum)
}

/// Reduces one period's live view rows to an [`AttackRecord`]. `rows` is
/// exactly what [`WorkloadTarget::collect_rows`] produces: sorted by id,
/// ids below `id_space`.
pub fn audit_rows(
    roles: &AdversaryRoles,
    id_space: usize,
    rows: &[(NodeId, Vec<NodeId>)],
    period: u64,
) -> AttackRecord {
    let csr = CsrSnapshot::from_rows(id_space, rows);
    let in_degrees = csr.graph().in_degrees();

    let mut attacker_degrees = 0.0;
    let mut honest_degrees = 0.0;
    let mut attackers_live = 0usize;
    let mut all: Vec<f64> = Vec::with_capacity(in_degrees.len());
    for (i, &d) in in_degrees.iter().enumerate() {
        let id = csr.node_id(i as u32);
        all.push(f64::from(d));
        if roles.is_attacker(id) {
            attackers_live += 1;
            attacker_degrees += f64::from(d);
        } else {
            honest_degrees += f64::from(d);
        }
    }
    let honest_live = rows.len() - attackers_live;

    let mut honest_edges = 0usize;
    let mut poisoned_edges = 0usize;
    let mut eclipsed_victims = 0usize;
    for (id, targets) in rows {
        if roles.is_attacker(*id) {
            continue;
        }
        honest_edges += targets.len();
        let poisoned = targets.iter().filter(|&&t| roles.is_attacker(t)).count();
        poisoned_edges += poisoned;
        if roles.is_victim(*id) && !targets.is_empty() && poisoned == targets.len() {
            eclipsed_victims += 1;
        }
    }

    // The attacker-free overlay: honest rows, honest targets only.
    let honest_rows: Vec<(NodeId, Vec<NodeId>)> = rows
        .iter()
        .filter(|(id, _)| !roles.is_attacker(*id))
        .map(|(id, targets)| {
            (
                *id,
                targets
                    .iter()
                    .copied()
                    .filter(|&t| !roles.is_attacker(t))
                    .collect(),
            )
        })
        .collect();
    let honest_csr = CsrSnapshot::from_rows(id_space, &honest_rows);
    let largest_honest_component =
        pss_graph::components::largest_weak_component(honest_csr.graph());

    AttackRecord {
        period,
        live: rows.len(),
        honest_live,
        attackers_live,
        attacker_in_degree_mean: if attackers_live == 0 {
            0.0
        } else {
            attacker_degrees / attackers_live as f64
        },
        honest_in_degree_mean: if honest_live == 0 {
            0.0
        } else {
            honest_degrees / honest_live as f64
        },
        attacker_edge_fraction: if honest_edges == 0 {
            0.0
        } else {
            poisoned_edges as f64 / honest_edges as f64
        },
        in_degree_gini: gini(&mut all),
        eclipsed_victims,
        largest_honest_component,
    }
}

/// The attack-metric side of an audited workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackAudit {
    /// One [`AttackRecord`] per period, aligned with the
    /// [`PeriodRecord`]s.
    pub records: Vec<AttackRecord>,
    /// Per eclipse victim: the first period its live view was 100 %
    /// attacker-controlled, or `None` if it never was. Empty unless the
    /// schedule declared an eclipse attack.
    pub isolation: Vec<(NodeId, Option<u64>)>,
}

impl AttackAudit {
    /// The last period's attack record, if any period ran.
    pub fn final_record(&self) -> Option<&AttackRecord> {
        self.records.last()
    }

    /// Number of victims that were fully eclipsed at least once.
    pub fn isolated_victims(&self) -> usize {
        self.isolation.iter().filter(|(_, at)| at.is_some()).count()
    }
}

/// Drives an attacked workload exactly like
/// [`run_workload`](crate::workload::run_workload) while auditing every
/// period. The schedule must have compiled an adversary placement.
///
/// # Panics
///
/// Panics if `compiled.adversary` is `None` — auditing a clean run is a
/// harness bug, not a measurement.
pub fn run_attacked<T: WorkloadTarget>(
    target: &mut T,
    compiled: &CompiledWorkload,
    view_size: usize,
) -> (Vec<PeriodRecord>, AttackAudit) {
    let roles = compiled
        .adversary
        .expect("run_attacked needs a schedule with an adv placement");
    let mut records = Vec::with_capacity(compiled.steps.len());
    let mut isolation: Vec<(NodeId, Option<u64>)> = roles.victim_ids().map(|v| (v, None)).collect();
    let period_records = run_workload_observed(
        target,
        compiled,
        view_size,
        &mut |period, rows, _is_live| {
            let record = audit_rows(&roles, compiled.id_space, rows, period);
            if record.eclipsed_victims > 0 {
                for (victim, at) in isolation.iter_mut().filter(|(_, at)| at.is_none()) {
                    let row = rows.binary_search_by_key(victim, |(id, _)| *id);
                    if let Ok(i) = row {
                        let targets = &rows[i].1;
                        if !targets.is_empty() && targets.iter().all(|&t| roles.is_attacker(t)) {
                            *at = Some(period);
                        }
                    }
                }
            }
            records.push(record);
        },
    );
    (period_records, AttackAudit { records, isolation })
}

/// A PeerSwap-style randomness audit over one observer's sample stream.
///
/// Feed it the observer's view each period; it draws one uniform sample
/// per observation — the `getPeer()` stream a service consumer would see —
/// and tests the accumulated per-peer counts against the uniform
/// distribution over a caller-supplied universe. On a clean overlay the
/// stream is near-uniform and the test passes; under a hub attack the
/// attacker ids soak up the stream and the statistic explodes.
#[derive(Debug, Clone)]
pub struct SampleAudit {
    counts: HashMap<NodeId, u64>,
    samples: u64,
    rng: SmallRng,
}

impl SampleAudit {
    /// A fresh audit; `seed` drives the per-observation sample draw.
    pub fn new(seed: u64) -> Self {
        SampleAudit {
            counts: HashMap::new(),
            samples: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Records one observation: draws a single uniform sample from the
    /// observer's current view targets (no-op on an empty view).
    pub fn observe(&mut self, view: &[NodeId]) {
        if view.is_empty() {
            return;
        }
        let pick = view[self.rng.random_range(0..view.len())];
        *self.counts.entry(pick).or_insert(0) += 1;
        self.samples += 1;
    }

    /// Total samples drawn so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples that landed on ids accepted by `filter` (e.g. attacker
    /// ids).
    pub fn samples_matching(&self, mut filter: impl FnMut(NodeId) -> bool) -> u64 {
        self.counts
            .iter()
            .filter(|(id, _)| filter(**id))
            .map(|(_, n)| *n)
            .sum()
    }

    /// Chi-square test of the sample counts against uniform over
    /// `universe` (every id a clean sampler could return — typically the
    /// population minus the observer itself). Returns `None` if the
    /// universe has fewer than two ids or nothing was sampled.
    pub fn chi_square(&self, universe: impl IntoIterator<Item = NodeId>) -> Option<ChiSquare> {
        let counts: Vec<u64> = universe
            .into_iter()
            .map(|id| self.counts.get(&id).copied().unwrap_or(0))
            .collect();
        chi_square_uniform(&counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::adversary::{AdversaryKind, AdversaryRoles, AdversarySpec};

    fn rows(spec: &[(u64, &[u64])]) -> Vec<(NodeId, Vec<NodeId>)> {
        spec.iter()
            .map(|(id, ts)| {
                (
                    NodeId::new(*id),
                    ts.iter().map(|&t| NodeId::new(t)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn gini_brackets() {
        assert_eq!(gini(&mut []), 0.0);
        assert_eq!(gini(&mut [3.0, 3.0, 3.0]), 0.0);
        let mut concentrated = [0.0, 0.0, 0.0, 12.0];
        assert!(gini(&mut concentrated) > 0.7);
        let mut mild = [2.0, 3.0, 4.0, 3.0];
        let g = gini(&mut mild);
        assert!(g > 0.0 && g < 0.2, "{g}");
    }

    #[test]
    fn audit_rows_splits_degrees_by_role() {
        // Population 4, 25% hub: attacker is one evenly-spread id.
        let roles = AdversaryRoles::new(AdversarySpec::new(AdversaryKind::Hub, 0.25).unwrap(), 4);
        let attacker = roles.attacker_ids().next().unwrap().as_u64();
        assert_eq!(roles.attacker_count(), 1);
        // Every honest node points at the attacker plus one honest peer.
        let honest: Vec<u64> = (0..4).filter(|&i| i != attacker).collect();
        let r = rows(&[
            (honest[0], &[attacker, honest[1]]),
            (honest[1], &[attacker, honest[2]]),
            (honest[2], &[attacker, honest[0]]),
            (attacker, &[honest[0]]),
        ]);
        let mut sorted = r.clone();
        sorted.sort_by_key(|(id, _)| *id);
        let record = audit_rows(&roles, 4, &sorted, 3);
        assert_eq!(record.period, 3);
        assert_eq!(record.live, 4);
        assert_eq!((record.honest_live, record.attackers_live), (3, 1));
        assert_eq!(record.attacker_in_degree_mean, 3.0);
        // Honest in-degrees: one from a peer each, plus one from the
        // attacker: total 4 over 3 nodes.
        assert!((record.honest_in_degree_mean - 4.0 / 3.0).abs() < 1e-9);
        assert!(record.skew() > 2.0);
        assert!((record.attacker_edge_fraction - 0.5).abs() < 1e-9);
        // Honest-only overlay: the 3 honest nodes still form a ring.
        assert_eq!(record.largest_honest_component, 3);
        assert!(record.in_degree_gini > 0.0);
    }

    #[test]
    fn eclipsed_victims_are_counted_and_isolated() {
        let roles = AdversaryRoles::new(AdversarySpec::eclipse(0.25, 1).unwrap(), 4);
        let attacker = roles.attacker_ids().next().unwrap().as_u64();
        let victim = roles.victim_ids().next().unwrap().as_u64();
        let others: Vec<u64> = (0..4).filter(|&i| i != attacker && i != victim).collect();
        let r = rows(&[
            (victim, &[attacker]), // fully attacker-controlled
            (others[0], &[victim, others[1]]),
            (others[1], &[others[0]]),
            (attacker, &[victim]),
        ]);
        let mut sorted = r;
        sorted.sort_by_key(|(id, _)| *id);
        let record = audit_rows(&roles, 4, &sorted, 1);
        assert_eq!(record.eclipsed_victims, 1);
    }

    #[test]
    fn sample_audit_flags_a_rigged_stream() {
        let universe: Vec<NodeId> = (0..40).map(NodeId::new).collect();
        // Clean stream: rotate through the universe evenly.
        let mut clean = SampleAudit::new(1);
        for round in 0..50 {
            for chunk in universe.chunks(8) {
                let _ = round;
                clean.observe(chunk);
            }
        }
        let verdict = clean.chi_square(universe.iter().copied()).unwrap();
        assert!(verdict.passes(1e-6), "{verdict:?}");

        // Rigged stream: one id dominates every view.
        let mut rigged = SampleAudit::new(2);
        let hot = vec![NodeId::new(7); 6];
        for _ in 0..250 {
            rigged.observe(&hot);
        }
        assert_eq!(rigged.samples(), 250);
        assert_eq!(rigged.samples_matching(|id| id == NodeId::new(7)), 250);
        let verdict = rigged.chi_square(universe.iter().copied()).unwrap();
        assert!(!verdict.passes(1e-6), "{verdict:?}");
    }
}
