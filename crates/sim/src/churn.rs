//! Continuous churn processes over a running simulation.
//!
//! The paper studies a single catastrophic failure (Section 7); real
//! deployments see *continuous* arrival and departure. This module drives a
//! simulation through sustained churn — each cycle a configurable number of
//! random nodes crash and fresh nodes join via random live contacts — so
//! the steady-state quality of the overlay under turnover can be measured.

use crate::Engine;

/// Deterministic fractional-rate rounding: converts a stream of expected
/// per-step counts into integers by carrying the fractional remainder
/// forward.
///
/// After any number of steps the emitted total differs from the exact sum
/// of expectations by strictly less than one (the outstanding carry), so
/// `k` steps at a constant expectation `r·N` emit `⌊r·N·k⌋` or `⌈r·N·k⌉`
/// events — never drifting, never random. [`ChurnProcess`] uses one
/// accumulator per direction, and workload schedules
/// ([`crate::workload`]) compile churn phases through the same arithmetic,
/// which is what makes the membership trajectory identical across engines
/// and the deployed runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RateAccumulator {
    carry: f64,
}

impl RateAccumulator {
    /// A fresh accumulator with zero carry.
    pub fn new() -> Self {
        RateAccumulator::default()
    }

    /// Adds `expected` events to the accumulator and returns the integer
    /// count due now; the fractional remainder carries to the next step.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is negative or not finite.
    pub fn step(&mut self, expected: f64) -> usize {
        assert!(
            expected >= 0.0 && expected.is_finite(),
            "expected count must be a non-negative finite number"
        );
        self.carry += expected;
        let due = self.carry.floor();
        self.carry -= due;
        due as usize
    }

    /// The outstanding fractional carry, always in `[0, 1)`.
    pub fn carry(&self) -> f64 {
        self.carry
    }
}

/// A sustained churn process: per-cycle departure and arrival rates.
///
/// Rates are expressed as fractions of the *current* live population, so a
/// `leave_rate` of 0.01 kills 1 % of live nodes each cycle. Fractional
/// expectations are rounded deterministically by a carry accumulator
/// ([`RateAccumulator`]): 0.5 expected kills become one kill every second
/// cycle. Which *specific* nodes die or serve as join contacts is drawn
/// from the driven engine's own control RNG, so the process itself holds
/// no randomness — churn event *counts* are a pure function of the rates
/// and the live-population trajectory.
///
/// # Examples
///
/// ```
/// use pss_core::{PolicyTriple, ProtocolConfig};
/// use pss_sim::{scenario, ChurnProcess};
///
/// let config = ProtocolConfig::new(PolicyTriple::newscast(), 20)?;
/// let mut sim = scenario::random_overlay(&config, 500, 3);
/// sim.run_cycles(20);
///
/// let mut churn = ChurnProcess::balanced(0.02, 2);
/// for _ in 0..30 {
///     churn.step(&mut sim);
///     sim.run_cycle();
/// }
/// // Population stays roughly stable under balanced churn.
/// assert!(sim.alive_count() > 400 && sim.alive_count() < 600);
/// # Ok::<(), pss_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    leave_rate: f64,
    join_rate: f64,
    contacts_per_join: usize,
    leaves: RateAccumulator,
    joins: RateAccumulator,
}

impl ChurnProcess {
    /// Creates a churn process with independent leave and join rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or not finite.
    pub fn new(leave_rate: f64, join_rate: f64, contacts_per_join: usize) -> Self {
        assert!(
            leave_rate >= 0.0 && leave_rate.is_finite(),
            "leave rate must be a non-negative finite number"
        );
        assert!(
            join_rate >= 0.0 && join_rate.is_finite(),
            "join rate must be a non-negative finite number"
        );
        ChurnProcess {
            leave_rate,
            join_rate,
            contacts_per_join,
            leaves: RateAccumulator::new(),
            joins: RateAccumulator::new(),
        }
    }

    /// Balanced churn: equal leave and join rates, keeping the expected
    /// population constant.
    pub fn balanced(rate: f64, contacts_per_join: usize) -> Self {
        ChurnProcess::new(rate, rate, contacts_per_join)
    }

    /// The per-cycle departure rate.
    pub fn leave_rate(&self) -> f64 {
        self.leave_rate
    }

    /// The per-cycle arrival rate.
    pub fn join_rate(&self) -> f64 {
        self.join_rate
    }

    /// Applies one churn step: kills and joins according to the rates.
    /// Returns `(killed, joined)` counts. Works on any [`Engine`] — the
    /// cycle simulators or the event-driven ones.
    ///
    /// Call once per cycle, before or after [`Engine::run_cycle`].
    pub fn step<E: Engine>(&mut self, sim: &mut E) -> (usize, usize) {
        let live = sim.alive_count() as f64;
        let kills = self.leaves.step(live * self.leave_rate);
        let joins = self.joins.step(live * self.join_rate);
        let killed = sim.kill_random(kills).len();
        let joined = sim
            .add_nodes_with_random_contacts(joins, self.contacts_per_join)
            .len();
        (killed, joined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, Simulation};
    use pss_core::{PolicyTriple, ProtocolConfig};
    use pss_graph::components;

    fn sim(n: usize, c: usize, seed: u64) -> Simulation {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), c).unwrap();
        let mut s = scenario::random_overlay(&config, n, seed);
        s.run_cycles(15);
        s
    }

    #[test]
    #[should_panic(expected = "leave rate")]
    fn negative_leave_rate_rejected() {
        let _ = ChurnProcess::new(-0.1, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "join rate")]
    fn nan_join_rate_rejected() {
        let _ = ChurnProcess::new(0.1, f64::NAN, 1);
    }

    #[test]
    fn zero_rates_do_nothing() {
        let mut s = sim(100, 10, 1);
        let mut churn = ChurnProcess::new(0.0, 0.0, 1);
        let (killed, joined) = churn.step(&mut s);
        assert_eq!((killed, joined), (0, 0));
        assert_eq!(s.alive_count(), 100);
    }

    #[test]
    fn balanced_churn_keeps_population_stable() {
        let mut s = sim(300, 15, 3);
        let mut churn = ChurnProcess::balanced(0.05, 2);
        for _ in 0..40 {
            churn.step(&mut s);
            s.run_cycle();
        }
        let live = s.alive_count();
        assert!((200..=400).contains(&live), "population drifted to {live}");
    }

    #[test]
    fn overlay_survives_sustained_churn() {
        let mut s = sim(400, 20, 5);
        let mut churn = ChurnProcess::balanced(0.02, 3);
        for _ in 0..50 {
            churn.step(&mut s);
            s.run_cycle();
        }
        let g = s.snapshot().undirected();
        let report = components::connected_components(&g);
        // Head view selection keeps the live overlay essentially whole.
        assert!(
            report.largest() * 100 >= g.node_count() * 98,
            "largest component {} of {}",
            report.largest(),
            g.node_count()
        );
    }

    #[test]
    fn pure_departures_shrink_population() {
        let mut s = sim(200, 10, 7);
        let mut churn = ChurnProcess::new(0.1, 0.0, 1);
        for _ in 0..10 {
            churn.step(&mut s);
            s.run_cycle();
        }
        assert!(s.alive_count() < 120, "still {} alive", s.alive_count());
    }

    #[test]
    fn accumulator_rounding_matches_expectation_exactly() {
        let mut acc = RateAccumulator::new();
        let total: usize = (0..2000).map(|_| acc.step(0.25)).sum();
        // 2000 × 0.25 = 500 exactly; the carry bound allows at most ±1.
        assert_eq!(total, 500);
        assert!(acc.carry() < 1.0);
    }

    #[test]
    fn accessors() {
        let churn = ChurnProcess::new(0.01, 0.02, 3);
        assert_eq!(churn.leave_rate(), 0.01);
        assert_eq!(churn.join_rate(), 0.02);
    }
}
