//! Declarative, seed-deterministic membership-dynamics schedules that run
//! identically on every engine **and** on the deployed network runtime.
//!
//! The paper's evaluation is scenario-driven — bootstrapping, catastrophic
//! failure (Section 7), sustained membership change — but each scenario
//! used to be hand-rolled per driver. A [`Workload`] names the scenario
//! once as a sequence of [`PhaseSpec`]s (quiet windows, churn phases,
//! catastrophic kills, flash-crowd bulk joins, network partition/heal) and
//! **compiles** it, from a seed and the initial population size alone, down
//! to concrete per-period operations ([`Op`]): *this* node dies at period
//! 12, *this* node joins at period 15 bootstrapping off *these* contacts.
//!
//! Because the compiled schedule fixes the full membership trajectory up
//! front, the same [`CompiledWorkload`] drives the cycle engines, the
//! event engines and the loopback UDP cluster through the same sequence of
//! joins, failures and partitions — anything that executes the small
//! [`WorkloadTarget`] trait. Per-period snapshots flow into the same CSR
//! metrics on every stack ([`measure_rows`]), so recovery trajectories are
//! directly comparable: the conformance suite pins the simulated and
//! deployed stacks against each other on exactly this path.
//!
//! # Determinism
//!
//! Compilation draws victims and join contacts from its own seeded RNG and
//! rounds fractional churn rates through the carry accumulator
//! ([`crate::RateAccumulator`]) — no stochastic rounding, no dependence on
//! the target's RNG streams. Running a compiled workload on a sharded
//! engine therefore inherits the engine's own contract: bit-identical
//! results per `(seed, shard_count)` at any worker count.
//!
//! # Partitions
//!
//! A [`Partition`] is a *loss matrix*, not a membership change: node `i`
//! belongs to group `i mod groups`, and while the partition is installed
//! every engine and the network runtime silently drop messages whose
//! endpoints sit in different groups (counted as dropped/blocked traffic).
//! Healing lifts the matrix. Views are untouched — whether the overlay
//! re-merges after a heal depends on whether any cross-group descriptors
//! survived view selection, which is precisely the experiment.
//!
//! # Schedule grammar
//!
//! [`Workload::parse`] accepts a compact comma-separated schedule string
//! (used by the `workload` experiment command's `--schedule` flag):
//!
//! ```text
//! quiet:P          P quiet periods (gossip only)
//! churn:RxP        balanced churn at rate R per period, for P periods
//! churn:L/JxP      independent leave rate L and join rate J
//! kill:F           catastrophic kill of fraction F (instantaneous)
//! flash:N          flash crowd: N simultaneous joins (instantaneous)
//! part:GxP         total partition into G groups for P periods, heal
//! part:GxP@L       lossy partition: cross-group loss probability L
//! part:GxP@L1/L2   asymmetric: lower→higher group loss L1, reverse L2
//! adv:K@F          fraction F of the initial ids run attack K
//!                  (hub | liar | forge); at most one adv item
//! adv:eclipse@F>victims:N   eclipse attack against the N smallest
//!                  honest ids
//! ( … )xR          repeat a group of phases R times (no nesting)
//! phase[k=v,…]     per-phase overrides: churn:0.01x5[contacts=7],
//!                  flash:40[herd] (thundering herd: all N joiners
//!                  hammer one shared introducer)
//! ```
//!
//! Phases that would silently compile to nothing — `quiet:0`, churn with
//! both rates zero, a `@0` lossless partition — are typed parse errors
//! ([`ScheduleErrorKind`]), not accepted no-ops.
//!
//! Adversary placement is not a phase: it declares which initial ids are
//! Byzantine ([`pss_core::adversary`]) for the whole run. Roles compile to
//! a pure per-id assignment ([`AdversaryRoles`]), so the same ids attack on
//! every engine and transport; late joiners are always honest.
//!
//! Example — the conformance suite's headline schedule, a converged-start
//! catastrophe with churned recovery:
//!
//! ```text
//! quiet:10,kill:0.5,churn:0.01x20
//! ```

use std::collections::HashSet;

use pss_core::adversary::{AdversaryKind, AdversaryRoles, AdversarySpec};
use pss_core::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::churn::RateAccumulator;
use crate::CsrSnapshot;

/// A group-pair loss matrix over the id space: node `i` belongs to group
/// `i mod groups`, and while the partition is installed, cross-group
/// traffic is dropped with the configured loss probability — `1.0` is the
/// classic total blackout, anything below it a degraded (lossy) partition
/// where rare crossings still succeed. The two directions can differ
/// ([`Partition::asymmetric`]): `fwd` applies to messages from a lower-
/// numbered group to a higher one, `bwd` to the reverse, modelling
/// asymmetric-route failures where one direction degrades harder.
///
/// Loss probabilities are quantized to permille (1/1000) so a partition
/// stays a compact `Copy + Eq` value and the schedule grammar round-trips
/// exactly. At exactly `0.0` or `1.0` the drop decision is made without
/// consuming engine randomness, which keeps total-blackout schedules
/// byte-identical to the historic boolean egress block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    groups: u32,
    /// Permille loss for lower-group → higher-group traffic.
    fwd_permille: u16,
    /// Permille loss for higher-group → lower-group traffic.
    bwd_permille: u16,
}

/// Quantizes a loss probability to permille, asserting it is a valid
/// probability.
fn loss_permille(loss: f64) -> u16 {
    assert!(
        (0.0..=1.0).contains(&loss),
        "loss probability must be within [0, 1], got {loss}"
    );
    (loss * 1000.0).round() as u16
}

impl Partition {
    /// A total partition into `groups` groups: all cross-group traffic is
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2` (one group blocks nothing).
    pub fn new(groups: u32) -> Self {
        Partition::asymmetric(groups, 1.0, 1.0)
    }

    /// A lossy partition: cross-group traffic is dropped with probability
    /// `loss` in both directions.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2` or `loss` is outside `[0, 1]`.
    pub fn lossy(groups: u32, loss: f64) -> Self {
        Partition::asymmetric(groups, loss, loss)
    }

    /// An asymmetric lossy partition: messages from a lower-numbered group
    /// to a higher one are dropped with probability `fwd`, the reverse
    /// direction with probability `bwd`.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2` or either loss is outside `[0, 1]`.
    pub fn asymmetric(groups: u32, fwd: f64, bwd: f64) -> Self {
        assert!(groups >= 2, "a partition needs at least two groups");
        Partition {
            groups,
            fwd_permille: loss_permille(fwd),
            bwd_permille: loss_permille(bwd),
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// The group of `id`.
    pub fn group_of(&self, id: NodeId) -> u32 {
        (id.as_u64() % u64::from(self.groups)) as u32
    }

    /// True if every cross-group direction is a total blackout.
    pub fn is_total(&self) -> bool {
        self.fwd_permille == 1000 && self.bwd_permille == 1000
    }

    /// The loss probability the matrix applies to a message from `from` to
    /// `to`: `0.0` within a group, the directional cross-group loss
    /// otherwise.
    pub fn loss_toward(&self, from: NodeId, to: NodeId) -> f64 {
        let (fg, tg) = (self.group_of(from), self.group_of(to));
        if fg == tg {
            0.0
        } else if fg < tg {
            f64::from(self.fwd_permille) / 1000.0
        } else {
            f64::from(self.bwd_permille) / 1000.0
        }
    }

    /// True if traffic from `a` to `b` is deterministically blocked
    /// (different groups and that direction's loss is `1.0`).
    pub fn blocks(&self, a: NodeId, b: NodeId) -> bool {
        let (ag, bg) = (self.group_of(a), self.group_of(b));
        if ag == bg {
            return false;
        }
        let permille = if ag < bg {
            self.fwd_permille
        } else {
            self.bwd_permille
        };
        permille == 1000
    }

    /// Decides whether the matrix drops a message from `from` to `to`.
    /// Consumes one RNG draw only for genuinely probabilistic losses:
    /// same-group traffic, loss `0.0` and loss `1.0` all short-circuit, so
    /// total-blackout schedules consume no randomness (the historic
    /// behavior the pinned digests cover).
    pub fn drops<R: rand::Rng>(&self, from: NodeId, to: NodeId, rng: &mut R) -> bool {
        let (fg, tg) = (self.group_of(from), self.group_of(to));
        if fg == tg {
            return false;
        }
        let permille = if fg < tg {
            self.fwd_permille
        } else {
            self.bwd_permille
        };
        match permille {
            0 => false,
            1000 => true,
            p => rng.random::<f64>() < f64::from(p) / 1000.0,
        }
    }

    /// Formats the grammar suffix for this matrix: empty for a total
    /// partition, `@L` for a symmetric lossy one, `@L1/L2` when the
    /// directions differ.
    fn loss_suffix(&self) -> String {
        fn permille_str(p: u16) -> String {
            format!("{}", f64::from(p) / 1000.0)
        }
        if self.is_total() {
            String::new()
        } else if self.fwd_permille == self.bwd_permille {
            format!("@{}", permille_str(self.fwd_permille))
        } else {
            format!(
                "@{}/{}",
                permille_str(self.fwd_permille),
                permille_str(self.bwd_permille)
            )
        }
    }
}

/// One phase of a workload schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseSpec {
    /// `periods` gossip periods with no membership events.
    Quiet {
        /// Length in periods.
        periods: u64,
    },
    /// Sustained churn: per-period leave/join rates as fractions of the
    /// live population, for `periods` periods.
    Churn {
        /// Length in periods.
        periods: u64,
        /// Per-period departure rate.
        leave_rate: f64,
        /// Per-period arrival rate.
        join_rate: f64,
        /// Per-phase override of the workload's contacts-per-join.
        contacts: Option<usize>,
    },
    /// Instantaneous catastrophic kill of `fraction` of the live
    /// population, at the next period boundary.
    Catastrophe {
        /// Fraction of live nodes killed, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// Instantaneous flash crowd: `joins` nodes join at the next period
    /// boundary, each bootstrapping off random live contacts — or, in the
    /// thundering-herd variant, all hammering one shared introducer.
    FlashCrowd {
        /// Number of simultaneous joins.
        joins: usize,
        /// Per-phase override of the workload's contacts-per-join.
        contacts: Option<usize>,
        /// Thundering herd: every joiner bootstraps off the *same* single
        /// introducer, picked once from the live population.
        herd: bool,
    },
    /// Network partition (a group-pair loss matrix) for `periods`
    /// periods; the matrix lifts (heals) at the boundary after the last
    /// period.
    Partition {
        /// The loss matrix to install.
        partition: Partition,
        /// Length in periods.
        periods: u64,
    },
}

/// The family of grammar defect a [`ScheduleParseError`] reports — typed
/// so callers (and tests) can distinguish a syntax typo from a phase that
/// would silently do nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleErrorKind {
    /// The item does not match the grammar's shape (`kind:spec`, missing
    /// separators, unparsable numbers).
    Syntax,
    /// An unknown phase kind.
    UnknownKind,
    /// A phase spanning zero periods (or a flash of zero joins): it would
    /// compile to nothing and silently vanish from the schedule.
    ZeroLength,
    /// A rate or loss of zero that would make the phase a disguised quiet
    /// phase (churn with both rates 0, a lossless partition, kill of
    /// fraction 0).
    ZeroRate,
    /// A value outside its legal range (fractions beyond `[0, 1]`, fewer
    /// than two partition groups).
    OutOfRange,
    /// An unknown `adv:` kind, or a malformed adversary placement.
    Adversary,
    /// A malformed or unsupported `[k=v]` phase override.
    Override,
    /// A malformed `( … )xR` repetition group.
    Repetition,
}

/// Why a schedule string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// The offending schedule item.
    pub item: String,
    /// What was wrong with it.
    pub reason: String,
    /// The typed defect family.
    pub kind: ScheduleErrorKind,
}

impl std::fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad schedule item `{}`: {}", self.item, self.reason)
    }
}

impl std::error::Error for ScheduleParseError {}

/// A declarative membership-dynamics schedule; see the [module
/// docs](self). Build with the phase methods or [`Workload::parse`], then
/// [`Workload::compile`] against an initial population size.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    seed: u64,
    contacts_per_join: usize,
    phases: Vec<PhaseSpec>,
    adversary: Option<AdversarySpec>,
}

impl Workload {
    /// An empty workload; all compilation randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Workload {
            seed,
            contacts_per_join: 3,
            phases: Vec::new(),
            adversary: None,
        }
    }

    /// Sets how many random live contacts each joiner bootstraps off
    /// (default 3).
    pub fn contacts_per_join(mut self, contacts: usize) -> Self {
        self.contacts_per_join = contacts;
        self
    }

    /// Appends `periods` quiet periods.
    pub fn quiet(mut self, periods: u64) -> Self {
        self.phases.push(PhaseSpec::Quiet { periods });
        self
    }

    /// Appends an arbitrary phase spec verbatim.
    pub fn phase(mut self, spec: PhaseSpec) -> Self {
        self.phases.push(spec);
        self
    }

    /// Appends a balanced churn phase (equal leave and join rates).
    pub fn churn(self, rate: f64, periods: u64) -> Self {
        self.churn_rates(rate, rate, periods)
    }

    /// Appends a churn phase with independent leave and join rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or not finite.
    pub fn churn_rates(mut self, leave_rate: f64, join_rate: f64, periods: u64) -> Self {
        assert!(
            leave_rate >= 0.0 && leave_rate.is_finite(),
            "leave rate must be a non-negative finite number"
        );
        assert!(
            join_rate >= 0.0 && join_rate.is_finite(),
            "join rate must be a non-negative finite number"
        );
        self.phases.push(PhaseSpec::Churn {
            periods,
            leave_rate,
            join_rate,
            contacts: None,
        });
        self
    }

    /// Appends an instantaneous catastrophic kill of `fraction` of the
    /// live population.
    pub fn catastrophe(mut self, fraction: f64) -> Self {
        self.phases.push(PhaseSpec::Catastrophe {
            fraction: fraction.clamp(0.0, 1.0),
        });
        self
    }

    /// Appends an instantaneous flash crowd of `joins` joins.
    pub fn flash_crowd(mut self, joins: usize) -> Self {
        self.phases.push(PhaseSpec::FlashCrowd {
            joins,
            contacts: None,
            herd: false,
        });
        self
    }

    /// Appends a thundering-herd flash crowd: `joins` simultaneous joins
    /// that all bootstrap off the *same* single introducer (picked once,
    /// deterministically, from the live population at compile time).
    pub fn flash_herd(mut self, joins: usize) -> Self {
        self.phases.push(PhaseSpec::FlashCrowd {
            joins,
            contacts: None,
            herd: true,
        });
        self
    }

    /// Appends a total partition into `groups` groups for `periods`
    /// periods, healed afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2`.
    pub fn partition(mut self, groups: u32, periods: u64) -> Self {
        self.phases.push(PhaseSpec::Partition {
            partition: Partition::new(groups),
            periods,
        });
        self
    }

    /// Appends an arbitrary partition loss matrix for `periods` periods,
    /// healed afterwards.
    pub fn partition_matrix(mut self, partition: Partition, periods: u64) -> Self {
        self.phases
            .push(PhaseSpec::Partition { partition, periods });
        self
    }

    /// Declares an adversary placement: the spec's fraction of the initial
    /// ids run the attack for the whole schedule. At most one placement;
    /// a second call replaces the first.
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary = Some(spec);
        self
    }

    /// The declared adversary placement, if any.
    pub fn adversary_spec(&self) -> Option<&AdversarySpec> {
        self.adversary.as_ref()
    }

    /// The phases in order.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The compilation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Parses the schedule grammar (see the [module docs](self)) on top of
    /// a fresh workload.
    ///
    /// # Errors
    ///
    /// [`ScheduleParseError`] naming the first malformed item, with a
    /// typed [`ScheduleErrorKind`]. Phases that would silently compile to
    /// nothing — zero-length phases, churn with both rates zero, lossless
    /// partitions — are rejected rather than swallowed.
    pub fn parse(schedule: &str, seed: u64) -> Result<Self, ScheduleParseError> {
        let mut workload = Workload::new(seed);
        for item in split_items(schedule) {
            let item = item.map_err(|reason| ScheduleParseError {
                item: schedule.trim().to_owned(),
                reason,
                kind: ScheduleErrorKind::Repetition,
            })?;
            match item {
                ScheduleItem::Single(text) => parse_item(&mut workload, text)?,
                ScheduleItem::Group { body, repeats } => {
                    let bad = |reason: &str, kind| ScheduleParseError {
                        item: format!("({body})x{repeats}"),
                        reason: reason.to_owned(),
                        kind,
                    };
                    if repeats == 0 {
                        return Err(bad(
                            "a repetition of zero would erase the group",
                            ScheduleErrorKind::ZeroLength,
                        ));
                    }
                    let start = workload.phases.len();
                    let had_adversary = workload.adversary.is_some();
                    for inner in split_items(body) {
                        match inner {
                            Ok(ScheduleItem::Single(text)) => parse_item(&mut workload, text)?,
                            Ok(ScheduleItem::Group { .. }) => {
                                return Err(bad(
                                    "repetition groups do not nest",
                                    ScheduleErrorKind::Repetition,
                                ))
                            }
                            Err(reason) => {
                                return Err(ScheduleParseError {
                                    item: body.to_owned(),
                                    reason,
                                    kind: ScheduleErrorKind::Repetition,
                                })
                            }
                        }
                    }
                    if workload.adversary.is_some() && !had_adversary {
                        return Err(bad(
                            "adversary placement is global and cannot repeat",
                            ScheduleErrorKind::Repetition,
                        ));
                    }
                    if workload.phases.len() == start {
                        return Err(bad("empty repetition group", ScheduleErrorKind::ZeroLength));
                    }
                    let body_phases = workload.phases[start..].to_vec();
                    for _ in 1..repeats {
                        workload.phases.extend(body_phases.iter().copied());
                    }
                }
            }
        }
        Ok(workload)
    }

    /// Compiles the schedule for an initial population of ids
    /// `0..initial_nodes`, fixing every membership event up front. The
    /// result depends only on `(schedule, seed, initial_nodes)`.
    pub fn compile(&self, initial_nodes: usize) -> CompiledWorkload {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x3057_10ad_5c8e_d01e);
        // The live membership as compilation tracks it. Kills remove by
        // swap, joins push — selection over this vec with the compile RNG
        // is what makes victims/contacts pure functions of the seed.
        let mut live: Vec<NodeId> = (0..initial_nodes as u64).map(NodeId::new).collect();
        let mut next_id = initial_nodes as u64;
        let mut steps: Vec<Step> = Vec::new();
        // Instantaneous phases buffer their ops into the next period step.
        let mut pending: Vec<Op> = Vec::new();

        fn kill_into(ops: &mut Vec<Op>, live: &mut Vec<NodeId>, count: usize, rng: &mut SmallRng) {
            for _ in 0..count.min(live.len()) {
                let pick = rand::Rng::random_range(rng, 0..live.len());
                let victim = live.swap_remove(pick);
                ops.push(Op::Kill(victim));
            }
        }
        fn join_into(
            ops: &mut Vec<Op>,
            live: &mut Vec<NodeId>,
            next_id: &mut u64,
            count: usize,
            contacts: usize,
            rng: &mut SmallRng,
        ) {
            for _ in 0..count {
                let picks = contacts.min(live.len());
                let (chosen, _) = live.partial_shuffle(rng, picks);
                let contacts = chosen.to_vec();
                let id = NodeId::new(*next_id);
                *next_id += 1;
                live.push(id);
                ops.push(Op::Join { id, contacts });
            }
        }

        for phase in &self.phases {
            match *phase {
                PhaseSpec::Quiet { periods } => {
                    for _ in 0..periods {
                        steps.push(Step {
                            ops: std::mem::take(&mut pending),
                        });
                    }
                }
                PhaseSpec::Churn {
                    periods,
                    leave_rate,
                    join_rate,
                    contacts,
                } => {
                    let contacts = contacts.unwrap_or(self.contacts_per_join);
                    let mut leaves = RateAccumulator::new();
                    let mut joins = RateAccumulator::new();
                    for _ in 0..periods {
                        let mut ops = std::mem::take(&mut pending);
                        let n = live.len() as f64;
                        kill_into(&mut ops, &mut live, leaves.step(n * leave_rate), &mut rng);
                        join_into(
                            &mut ops,
                            &mut live,
                            &mut next_id,
                            joins.step(n * join_rate),
                            contacts,
                            &mut rng,
                        );
                        steps.push(Step { ops });
                    }
                }
                PhaseSpec::Catastrophe { fraction } => {
                    let count = (live.len() as f64 * fraction).round() as usize;
                    kill_into(&mut pending, &mut live, count, &mut rng);
                }
                PhaseSpec::FlashCrowd {
                    joins,
                    contacts,
                    herd,
                } => {
                    if herd && !live.is_empty() {
                        // Thundering herd: one introducer, picked once,
                        // shared by every joiner in the flash.
                        let pick = rand::Rng::random_range(&mut rng, 0..live.len());
                        let introducer = live[pick];
                        for _ in 0..joins {
                            let id = NodeId::new(next_id);
                            next_id += 1;
                            live.push(id);
                            pending.push(Op::Join {
                                id,
                                contacts: vec![introducer],
                            });
                        }
                    } else {
                        join_into(
                            &mut pending,
                            &mut live,
                            &mut next_id,
                            joins,
                            contacts.unwrap_or(self.contacts_per_join),
                            &mut rng,
                        );
                    }
                }
                PhaseSpec::Partition { partition, periods } => {
                    pending.push(Op::SetPartition(Some(partition)));
                    for _ in 0..periods {
                        steps.push(Step {
                            ops: std::mem::take(&mut pending),
                        });
                    }
                    pending.push(Op::SetPartition(None));
                }
            }
        }
        if !pending.is_empty() {
            // Trailing instantaneous ops (or a final heal) get one period
            // to act on, so their effect is observable.
            steps.push(Step { ops: pending });
        }
        CompiledWorkload {
            initial_nodes,
            id_space: next_id as usize,
            steps,
            adversary: self
                .adversary
                .map(|spec| AdversaryRoles::new(spec, initial_nodes as u64)),
        }
    }
}

/// One lexed top-level schedule item: a plain `kind:spec` phrase or a
/// `( … )xR` repetition group.
enum ScheduleItem<'a> {
    Single(&'a str),
    Group { body: &'a str, repeats: u64 },
}

/// Lexes a schedule string into top-level items: splits on commas that are
/// not inside parentheses or brackets, and recognizes `( … )xR` groups.
/// Yields `Err(reason)` items for unbalanced delimiters or malformed group
/// suffixes.
fn split_items(schedule: &str) -> impl Iterator<Item = Result<ScheduleItem<'_>, String>> {
    let mut rest = schedule;
    let mut failed = false;
    std::iter::from_fn(move || loop {
        if failed || rest.is_empty() {
            return None;
        }
        let mut depth = 0u32;
        let mut split = rest.len();
        for (i, ch) in rest.char_indices() {
            match ch {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    if depth == 0 {
                        failed = true;
                        return Some(Err(format!("unbalanced `{ch}`")));
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => {
                    split = i;
                    break;
                }
                _ => {}
            }
        }
        if depth != 0 && split == rest.len() {
            failed = true;
            return Some(Err("unbalanced `(`".to_owned()));
        }
        let item = rest[..split].trim();
        rest = rest.get(split + 1..).unwrap_or("");
        if item.is_empty() {
            continue;
        }
        if let Some(after_open) = item.strip_prefix('(') {
            let Some(close) = after_open.rfind(')') else {
                failed = true;
                return Some(Err("unbalanced `(`".to_owned()));
            };
            let body = &after_open[..close];
            let suffix = after_open[close + 1..].trim();
            let Some(repeats) = suffix
                .strip_prefix('x')
                .and_then(|r| r.trim().parse::<u64>().ok())
            else {
                failed = true;
                return Some(Err(format!(
                    "expected `( … )xR` repetition suffix, got `{suffix}`"
                )));
            };
            return Some(Ok(ScheduleItem::Group { body, repeats }));
        }
        return Some(Ok(ScheduleItem::Single(item)));
    })
}

/// Parsed `[k=v, …]` override suffix of one schedule item.
#[derive(Default)]
struct PhaseOverrides {
    contacts: Option<usize>,
    herd: bool,
}

/// Splits `spec[k=v,…]` into the bare spec and its overrides. `allow`
/// names the overrides this phase kind accepts.
fn parse_overrides<'a>(
    spec: &'a str,
    allow_contacts: bool,
    allow_herd: bool,
    bad: &impl Fn(&str, ScheduleErrorKind) -> ScheduleParseError,
) -> Result<(&'a str, PhaseOverrides), ScheduleParseError> {
    let Some(open) = spec.find('[') else {
        return Ok((spec, PhaseOverrides::default()));
    };
    let Some(rest) = spec[open..]
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
    else {
        return Err(bad(
            "overrides must be a trailing `[k=v,…]` suffix",
            ScheduleErrorKind::Override,
        ));
    };
    let mut overrides = PhaseOverrides::default();
    for entry in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match entry.split_once('=') {
            Some(("contacts", v)) if allow_contacts => {
                let contacts: usize = v
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad contacts count", ScheduleErrorKind::Override))?;
                if contacts == 0 {
                    return Err(bad(
                        "contacts must be at least 1 — zero-contact joiners are marooned",
                        ScheduleErrorKind::Override,
                    ));
                }
                overrides.contacts = Some(contacts);
            }
            None if entry == "herd" && allow_herd => overrides.herd = true,
            _ => {
                return Err(bad(
                    &format!("unsupported override `{entry}` for this phase"),
                    ScheduleErrorKind::Override,
                ))
            }
        }
    }
    if overrides.herd && overrides.contacts.is_some() {
        return Err(bad(
            "herd implies a single shared introducer; contacts cannot be overridden",
            ScheduleErrorKind::Override,
        ));
    }
    Ok((&spec[..open], overrides))
}

/// Parses one `kind:spec` item into `workload`.
fn parse_item(workload: &mut Workload, item: &str) -> Result<(), ScheduleParseError> {
    let bad = |reason: &str, kind: ScheduleErrorKind| ScheduleParseError {
        item: item.to_owned(),
        reason: reason.to_owned(),
        kind,
    };
    let syntax = |reason: &str| bad(reason, ScheduleErrorKind::Syntax);
    let (kind, spec) = item
        .split_once(':')
        .ok_or_else(|| syntax("expected `kind:spec`"))?;
    match kind {
        "quiet" => {
            let (spec, _) = parse_overrides(spec, false, false, &bad)?;
            let periods: u64 = spec.parse().map_err(|_| syntax("bad period count"))?;
            if periods == 0 {
                return Err(bad(
                    "a zero-length phase would silently vanish",
                    ScheduleErrorKind::ZeroLength,
                ));
            }
            workload.phases.push(PhaseSpec::Quiet { periods });
        }
        "churn" => {
            let (spec, overrides) = parse_overrides(spec, true, false, &bad)?;
            let (rates, periods) = spec
                .split_once('x')
                .ok_or_else(|| syntax("expected `churn:RxP`"))?;
            let periods: u64 = periods.parse().map_err(|_| syntax("bad period count"))?;
            let (leave, join): (f64, f64) = match rates.split_once('/') {
                Some((l, j)) => (
                    l.parse().map_err(|_| syntax("bad leave rate"))?,
                    j.parse().map_err(|_| syntax("bad join rate"))?,
                ),
                None => {
                    let r: f64 = rates.parse().map_err(|_| syntax("bad rate"))?;
                    (r, r)
                }
            };
            if !(leave >= 0.0 && leave.is_finite() && join >= 0.0 && join.is_finite()) {
                return Err(bad(
                    "rates must be non-negative finite numbers",
                    ScheduleErrorKind::OutOfRange,
                ));
            }
            if periods == 0 {
                return Err(bad(
                    "a zero-length phase would silently vanish",
                    ScheduleErrorKind::ZeroLength,
                ));
            }
            if leave == 0.0 && join == 0.0 {
                return Err(bad(
                    "churn with both rates zero is a disguised quiet phase — say quiet:P",
                    ScheduleErrorKind::ZeroRate,
                ));
            }
            workload.phases.push(PhaseSpec::Churn {
                periods,
                leave_rate: leave,
                join_rate: join,
                contacts: overrides.contacts,
            });
        }
        "kill" => {
            let (spec, _) = parse_overrides(spec, false, false, &bad)?;
            let fraction: f64 = spec.parse().map_err(|_| syntax("bad fraction"))?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(bad(
                    "fraction must be within [0, 1]",
                    ScheduleErrorKind::OutOfRange,
                ));
            }
            if fraction == 0.0 {
                return Err(bad(
                    "a kill of fraction 0 does nothing",
                    ScheduleErrorKind::ZeroRate,
                ));
            }
            workload.phases.push(PhaseSpec::Catastrophe { fraction });
        }
        "flash" => {
            let (spec, overrides) = parse_overrides(spec, true, true, &bad)?;
            let joins: usize = spec.parse().map_err(|_| syntax("bad join count"))?;
            if joins == 0 {
                return Err(bad(
                    "a flash crowd of zero joins does nothing",
                    ScheduleErrorKind::ZeroLength,
                ));
            }
            workload.phases.push(PhaseSpec::FlashCrowd {
                joins,
                contacts: overrides.contacts,
                herd: overrides.herd,
            });
        }
        "part" => {
            let (spec, _) = parse_overrides(spec, false, false, &bad)?;
            let (shape, loss) = match spec.split_once('@') {
                Some((shape, loss)) => (shape, Some(loss)),
                None => (spec, None),
            };
            let (groups, periods) = shape
                .split_once('x')
                .ok_or_else(|| syntax("expected `part:GxP[@L[/L2]]`"))?;
            let groups: u32 = groups.parse().map_err(|_| syntax("bad group count"))?;
            if groups < 2 {
                return Err(bad(
                    "need at least two groups",
                    ScheduleErrorKind::OutOfRange,
                ));
            }
            let periods: u64 = periods.parse().map_err(|_| syntax("bad period count"))?;
            if periods == 0 {
                return Err(bad(
                    "a zero-length phase would silently vanish",
                    ScheduleErrorKind::ZeroLength,
                ));
            }
            let (fwd, bwd): (f64, f64) = match loss {
                None => (1.0, 1.0),
                Some(loss) => match loss.split_once('/') {
                    Some((f, b)) => (
                        f.parse().map_err(|_| syntax("bad forward loss"))?,
                        b.parse().map_err(|_| syntax("bad backward loss"))?,
                    ),
                    None => {
                        let l: f64 = loss.parse().map_err(|_| syntax("bad loss"))?;
                        (l, l)
                    }
                },
            };
            if !((0.0..=1.0).contains(&fwd) && (0.0..=1.0).contains(&bwd)) {
                return Err(bad(
                    "loss probabilities must be within [0, 1]",
                    ScheduleErrorKind::OutOfRange,
                ));
            }
            let partition = Partition::asymmetric(groups, fwd, bwd);
            if partition.fwd_permille == 0 && partition.bwd_permille == 0 {
                return Err(bad(
                    "a lossless partition blocks nothing — say quiet:P",
                    ScheduleErrorKind::ZeroRate,
                ));
            }
            workload
                .phases
                .push(PhaseSpec::Partition { partition, periods });
        }
        "adv" => {
            let advbad = |reason: &str| bad(reason, ScheduleErrorKind::Adversary);
            let (kind, rest) = spec
                .split_once('@')
                .ok_or_else(|| advbad("expected `adv:kind@fraction`"))?;
            let kind: AdversaryKind = kind
                .parse()
                .map_err(|e| bad(&format!("{e}"), ScheduleErrorKind::UnknownKind))?;
            let (fraction, victims) = match rest.split_once('>') {
                Some((f, extra)) => {
                    let victims = extra
                        .strip_prefix("victims:")
                        .ok_or_else(|| advbad("expected `>victims:N`"))?;
                    let victims: u64 = victims.parse().map_err(|_| advbad("bad victim count"))?;
                    (f, Some(victims))
                }
                None => (rest, None),
            };
            let fraction: f64 = fraction.parse().map_err(|_| advbad("bad fraction"))?;
            let adversary = match (kind, victims) {
                (AdversaryKind::Eclipse, Some(victims)) => {
                    AdversarySpec::eclipse(fraction, victims)
                }
                (AdversaryKind::Eclipse, None) => return Err(advbad("eclipse needs `>victims:N`")),
                (_, Some(_)) => return Err(advbad("only eclipse takes a victim set")),
                (kind, None) => AdversarySpec::new(kind, fraction),
            }
            .map_err(|e| advbad(&format!("{e}")))?;
            if workload.adversary.is_some() {
                return Err(advbad("at most one adv item per schedule"));
            }
            workload.adversary = Some(adversary);
        }
        other => {
            return Err(bad(
                &format!("unknown phase kind `{other}`"),
                ScheduleErrorKind::UnknownKind,
            ))
        }
    }
    Ok(())
}

impl std::fmt::Display for PhaseSpec {
    /// The phase in schedule-grammar form; [`Workload::parse`] accepts the
    /// output verbatim.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PhaseSpec::Quiet { periods } => write!(f, "quiet:{periods}"),
            PhaseSpec::Churn {
                periods,
                leave_rate,
                join_rate,
                contacts,
            } => {
                if leave_rate == join_rate {
                    write!(f, "churn:{leave_rate}x{periods}")?;
                } else {
                    write!(f, "churn:{leave_rate}/{join_rate}x{periods}")?;
                }
                if let Some(contacts) = contacts {
                    write!(f, "[contacts={contacts}]")?;
                }
                Ok(())
            }
            PhaseSpec::Catastrophe { fraction } => write!(f, "kill:{fraction}"),
            PhaseSpec::FlashCrowd {
                joins,
                contacts,
                herd,
            } => {
                write!(f, "flash:{joins}")?;
                if herd {
                    write!(f, "[herd]")?;
                } else if let Some(contacts) = contacts {
                    write!(f, "[contacts={contacts}]")?;
                }
                Ok(())
            }
            PhaseSpec::Partition { partition, periods } => {
                write!(
                    f,
                    "part:{}x{}{}",
                    partition.groups(),
                    periods,
                    partition.loss_suffix()
                )
            }
        }
    }
}

impl std::fmt::Display for Workload {
    /// The canonical (flattened) schedule string: repetition groups are
    /// expanded and overrides normalized, and `Workload::parse(s, seed)`
    /// of the output reproduces the workload exactly — the grammar
    /// round-trip the proptests pin.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        if let Some(adv) = &self.adversary {
            write!(f, "adv:{}@{}", adv.kind().token(), adv.fraction())?;
            if adv.kind() == AdversaryKind::Eclipse {
                write!(f, ">victims:{}", adv.victims())?;
            }
            sep = ",";
        }
        for phase in &self.phases {
            write!(f, "{sep}{phase}")?;
            sep = ",";
        }
        Ok(())
    }
}

/// One concrete membership operation, applied at a period boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Crash-stop (or gracefully leave, on the network runtime) one node.
    Kill(NodeId),
    /// One node joins with exactly this id, bootstrapping off exactly
    /// these contacts. Targets must assign ids sequentially, so the
    /// compiled id always matches — the conformance harness asserts it.
    Join {
        /// The id the target must assign.
        id: NodeId,
        /// Live contacts the joiner bootstraps off.
        contacts: Vec<NodeId>,
    },
    /// Installs (`Some`) or heals (`None`) a partition loss matrix.
    SetPartition(Option<Partition>),
}

/// The operations to apply *before* running one gossip period.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Step {
    /// Operations in application order.
    pub ops: Vec<Op>,
}

/// A fully-resolved schedule: every membership event of every period,
/// fixed at compile time. See [`Workload::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledWorkload {
    /// The initial population size the schedule was compiled for.
    pub initial_nodes: usize,
    /// Total id space touched by the run: initial nodes plus every join.
    pub id_space: usize,
    /// One step per gossip period.
    pub steps: Vec<Step>,
    /// Per-id Byzantine role assignment, if the schedule declared one.
    pub adversary: Option<AdversaryRoles>,
}

impl CompiledWorkload {
    /// Number of gossip periods the schedule spans.
    pub fn periods(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Total joins across the schedule.
    pub fn total_joins(&self) -> usize {
        self.id_space - self.initial_nodes
    }
}

/// What a workload drives: any engine ([`crate::Engine`] gets a blanket
/// implementation) or the deployed network stack (`pss-net` implements it
/// for the runtime and executes compiled steps inside the UDP cluster
/// harness).
pub trait WorkloadTarget {
    /// Kills (crash-stops or gracefully leaves) one node.
    fn kill(&mut self, id: NodeId) -> bool;

    /// Adds one node bootstrapped off `contacts`. Must assign exactly
    /// `id` — ids are sequential on every stack, and the compiled
    /// schedule's ids are the cross-stack membership contract.
    fn join(&mut self, id: NodeId, contacts: &[NodeId]);

    /// Installs or lifts the partition loss matrix.
    fn set_partition(&mut self, partition: Option<Partition>);

    /// Runs one gossip period (one cycle on the cycle engines, one period
    /// of virtual or wall time elsewhere).
    fn run_period(&mut self);

    /// Appends every live node's `(id, view targets)` in increasing id
    /// order.
    fn collect_rows(&self, rows: &mut Vec<(NodeId, Vec<NodeId>)>);
}

impl<E: crate::Engine> WorkloadTarget for E {
    fn kill(&mut self, id: NodeId) -> bool {
        crate::Engine::kill(self, id)
    }

    fn join(&mut self, id: NodeId, contacts: &[NodeId]) {
        let got = self.add_seeded_node(contacts);
        assert_eq!(
            got, id,
            "engine assigned id {got}, workload compiled id {id}"
        );
    }

    fn set_partition(&mut self, partition: Option<Partition>) {
        crate::Engine::set_partition(self, partition);
    }

    fn run_period(&mut self) {
        self.run_cycle();
    }

    fn collect_rows(&self, rows: &mut Vec<(NodeId, Vec<NodeId>)>) {
        for id in self.alive_ids() {
            let view = self.view_of(id).expect("alive ids have views");
            rows.push((id, view.ids().collect()));
        }
    }
}

/// Overlay statistics of one period under a workload — the paper's
/// convergence metrics plus the self-healing and partition observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodRecord {
    /// 1-based period index.
    pub period: u64,
    /// Live nodes after this period.
    pub live: usize,
    /// Nodes killed at the period boundary.
    pub killed: usize,
    /// Nodes joined at the period boundary.
    pub joined: usize,
    /// Live nodes whose view is full (length = c).
    pub full_views: usize,
    /// Mean in-degree of the live-to-live view graph.
    pub in_degree_mean: f64,
    /// Standard deviation of the live-to-live in-degree.
    pub in_degree_sd: f64,
    /// View entries pointing at dead nodes, across all live views.
    pub dead_links: usize,
    /// Total view entries across all live views.
    pub total_links: usize,
    /// Largest connected component of the undirected live overlay.
    pub largest_component: usize,
    /// True while a partition loss matrix was installed.
    pub partitioned: bool,
}

impl PeriodRecord {
    /// Fraction of live nodes with full views.
    pub fn full_fraction(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.full_views as f64 / self.live as f64
        }
    }

    /// Fraction of view entries that are dead links (Figure 7's y-axis,
    /// normalized).
    pub fn dead_link_fraction(&self) -> f64 {
        if self.total_links == 0 {
            0.0
        } else {
            self.dead_links as f64 / self.total_links as f64
        }
    }

    /// Largest-component size as a fraction of the live population.
    pub fn component_fraction(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.largest_component as f64 / self.live as f64
        }
    }
}

/// Reduces one period's live view rows to a [`PeriodRecord`] through the
/// CSR metrics path shared with the simulators and the cluster harness.
/// `rows` must be sorted by increasing id below `id_space`; `is_live`
/// classifies view targets (dead targets count as dead links and are
/// excluded from the in-degree graph and components).
pub fn measure_rows(
    id_space: usize,
    rows: &[(NodeId, Vec<NodeId>)],
    is_live: impl Fn(NodeId) -> bool,
    view_size: usize,
) -> PeriodRecord {
    let csr = CsrSnapshot::from_rows(id_space, rows);
    let in_degrees = csr.graph().in_degrees();
    let n = in_degrees.len().max(1) as f64;
    let mean = in_degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / n;
    let var = in_degrees
        .iter()
        .map(|&d| {
            let diff = f64::from(d) - mean;
            diff * diff
        })
        .sum::<f64>()
        / n;

    let mut dead_links = 0;
    let mut total_links = 0;
    for (_, targets) in rows {
        total_links += targets.len();
        dead_links += targets.iter().filter(|&&t| !is_live(t)).count();
    }

    // Components over the same live-to-live graph, directed edges treated
    // as undirected, straight over the CSR.
    let largest_component = pss_graph::components::largest_weak_component(csr.graph());

    PeriodRecord {
        period: 0,
        live: rows.len(),
        killed: 0,
        joined: 0,
        full_views: rows
            .iter()
            .filter(|(_, targets)| targets.len() == view_size)
            .count(),
        in_degree_mean: mean,
        in_degree_sd: var.sqrt(),
        dead_links,
        total_links,
        largest_component,
        partitioned: false,
    }
}

/// Drives `target` through every step of a compiled workload: apply the
/// step's operations, run one period, snapshot. Returns one
/// [`PeriodRecord`] per period.
///
/// `view_size` is the protocol's `c`, for the full-view statistic.
pub fn run_workload<T: WorkloadTarget>(
    target: &mut T,
    compiled: &CompiledWorkload,
    view_size: usize,
) -> Vec<PeriodRecord> {
    run_workload_observed(target, compiled, view_size, &mut |_, _, _| {})
}

/// The per-period observer hook of [`run_workload_observed`]: receives the
/// 1-based period index, the sorted live view rows, and the liveness
/// predicate.
pub type PeriodObserver<'a> =
    dyn FnMut(u64, &[(NodeId, Vec<NodeId>)], &dyn Fn(NodeId) -> bool) + 'a;

/// [`run_workload`] with a per-period observer: after each period's
/// snapshot, `observe` sees the 1-based period index, the sorted live view
/// rows, and the liveness predicate. The overlay health auditor
/// ([`crate::audit`]) taps attacked runs through this hook without touching
/// the driver loop.
pub fn run_workload_observed<T: WorkloadTarget>(
    target: &mut T,
    compiled: &CompiledWorkload,
    view_size: usize,
    observe: &mut PeriodObserver<'_>,
) -> Vec<PeriodRecord> {
    let mut dead: HashSet<NodeId> = HashSet::new();
    let mut partitioned = false;
    let mut rows: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut records = Vec::with_capacity(compiled.steps.len());
    let period_ns = pss_telemetry::global().histogram(
        "pss_workload_period_ns",
        "Wall time of one workload-driver period (ops + run + snapshot), nanoseconds",
    );
    let ops_applied = pss_telemetry::global().counter(
        "pss_workload_ops_total",
        "Membership operations applied by the workload driver",
    );
    for (i, step) in compiled.steps.iter().enumerate() {
        let period_started = std::time::Instant::now();
        let period = i as u64 + 1;
        let mut killed = 0;
        let mut joined = 0;
        for op in &step.ops {
            if pss_telemetry::enabled() {
                let (label, subject) = match op {
                    Op::Kill(id) => ("kill", id.as_index() as u64),
                    Op::Join { id, .. } => ("join", id.as_index() as u64),
                    Op::SetPartition(Some(_)) => ("partition_on", 0),
                    Op::SetPartition(None) => ("partition_off", 0),
                };
                pss_telemetry::flight().record(
                    pss_telemetry::EventKind::MembershipOp,
                    label,
                    subject,
                    period,
                );
                ops_applied.inc();
            }
            match op {
                Op::Kill(id) => {
                    // Compilation guarantees the victim is live; a false
                    // here means the target diverged from the schedule,
                    // which would otherwise only surface as a distant
                    // statistical assertion.
                    assert!(target.kill(*id), "kill of live node {id} was a no-op");
                    dead.insert(*id);
                    killed += 1;
                }
                Op::Join { id, contacts } => {
                    target.join(*id, contacts);
                    joined += 1;
                }
                Op::SetPartition(partition) => {
                    target.set_partition(*partition);
                    partitioned = partition.is_some();
                }
            }
        }
        target.run_period();
        rows.clear();
        target.collect_rows(&mut rows);
        let mut record = measure_rows(
            compiled.id_space,
            &rows,
            |id| !dead.contains(&id),
            view_size,
        );
        record.period = i as u64 + 1;
        record.killed = killed;
        record.joined = joined;
        record.partitioned = partitioned;
        observe(record.period, &rows, &|id| !dead.contains(&id));
        records.push(record);
        if pss_telemetry::enabled() {
            period_ns.record(period_started.elapsed().as_nanos() as u64);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, Simulation};
    use pss_core::{PolicyTriple, ProtocolConfig};

    fn acceptance() -> Workload {
        Workload::new(7).quiet(10).catastrophe(0.5).churn(0.01, 20)
    }

    #[test]
    fn partition_groups_and_blocking() {
        let p = Partition::new(2);
        assert_eq!(p.groups(), 2);
        assert_eq!(p.group_of(NodeId::new(4)), 0);
        assert_eq!(p.group_of(NodeId::new(7)), 1);
        assert!(p.blocks(NodeId::new(0), NodeId::new(1)));
        assert!(!p.blocks(NodeId::new(2), NodeId::new(4)));
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn single_group_partition_rejected() {
        let _ = Partition::new(1);
    }

    #[test]
    fn parse_round_trips_the_builder() {
        let parsed = Workload::parse("quiet:10,kill:0.5,churn:0.01x20", 7).unwrap();
        assert_eq!(parsed, acceptance());
        let full = Workload::parse("churn:0.02/0.03x5,flash:40,part:2x3,quiet:1", 1).unwrap();
        assert_eq!(
            full.phases(),
            &[
                PhaseSpec::Churn {
                    periods: 5,
                    leave_rate: 0.02,
                    join_rate: 0.03,
                    contacts: None,
                },
                PhaseSpec::FlashCrowd {
                    joins: 40,
                    contacts: None,
                    herd: false,
                },
                PhaseSpec::Partition {
                    partition: Partition::new(2),
                    periods: 3
                },
                PhaseSpec::Quiet { periods: 1 },
            ]
        );
    }

    #[test]
    fn parse_extended_grammar() {
        // Repetition groups expand in place, preserving order.
        let repeated = Workload::parse("(churn:0.01x5,kill:0.3)x2,quiet:1", 3).unwrap();
        assert_eq!(
            repeated.phases(),
            Workload::parse("churn:0.01x5,kill:0.3,churn:0.01x5,kill:0.3,quiet:1", 3)
                .unwrap()
                .phases()
        );

        // Per-phase overrides and the herd variant.
        let overridden = Workload::parse("churn:0.01x5[contacts=7],flash:40[herd]", 1).unwrap();
        assert_eq!(
            overridden.phases(),
            &[
                PhaseSpec::Churn {
                    periods: 5,
                    leave_rate: 0.01,
                    join_rate: 0.01,
                    contacts: Some(7),
                },
                PhaseSpec::FlashCrowd {
                    joins: 40,
                    contacts: None,
                    herd: true,
                },
            ]
        );

        // Lossy and asymmetric partitions.
        let lossy = Workload::parse("part:2x20@0.98,part:3x4@0.9/0.5", 1).unwrap();
        assert_eq!(
            lossy.phases(),
            &[
                PhaseSpec::Partition {
                    partition: Partition::lossy(2, 0.98),
                    periods: 20
                },
                PhaseSpec::Partition {
                    partition: Partition::asymmetric(3, 0.9, 0.5),
                    periods: 4
                },
            ]
        );
    }

    #[test]
    fn lossy_partition_semantics() {
        use rand::SeedableRng;
        let total = Partition::new(2);
        assert!(total.is_total());
        assert!(total.blocks(NodeId::new(0), NodeId::new(1)));

        let lossy = Partition::lossy(2, 0.5);
        assert!(!lossy.is_total());
        assert!(!lossy.blocks(NodeId::new(0), NodeId::new(1)));
        assert_eq!(lossy.loss_toward(NodeId::new(0), NodeId::new(1)), 0.5);
        assert_eq!(lossy.loss_toward(NodeId::new(0), NodeId::new(2)), 0.0);

        let asym = Partition::asymmetric(2, 1.0, 0.25);
        // Group 0 → group 1 is a blackout; the reverse is only degraded.
        assert!(asym.blocks(NodeId::new(0), NodeId::new(1)));
        assert!(!asym.blocks(NodeId::new(1), NodeId::new(0)));
        assert_eq!(asym.loss_toward(NodeId::new(1), NodeId::new(0)), 0.25);

        // Extremes consume no randomness: identical rng state afterwards.
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert!(total.drops(NodeId::new(0), NodeId::new(1), &mut a));
        assert!(!total.drops(NodeId::new(0), NodeId::new(2), &mut a));
        assert_eq!(
            rand::Rng::random::<u64>(&mut a),
            rand::Rng::random::<u64>(&mut b)
        );
        // Intermediate losses do draw: the rng advances past its twin.
        let mut c = SmallRng::seed_from_u64(1);
        let mut d = SmallRng::seed_from_u64(1);
        let _ = lossy.drops(NodeId::new(0), NodeId::new(1), &mut c);
        assert_ne!(
            rand::Rng::random::<u64>(&mut c),
            rand::Rng::random::<u64>(&mut d)
        );
    }

    #[test]
    fn herd_flash_shares_one_introducer() {
        let compiled = Workload::new(5).flash_herd(20).compile(50);
        let mut introducers: Vec<NodeId> = compiled.steps[0]
            .ops
            .iter()
            .map(|op| match op {
                Op::Join { contacts, .. } => {
                    assert_eq!(contacts.len(), 1, "herd joiners have one contact");
                    contacts[0]
                }
                other => panic!("expected joins, got {other:?}"),
            })
            .collect();
        introducers.dedup();
        assert_eq!(
            introducers.len(),
            1,
            "all herd joiners share the introducer"
        );
        assert!(
            introducers[0].as_u64() < 50,
            "introducer is an initial node"
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        for schedule in [
            "quiet:10,kill:0.5,churn:0.01x20",
            "churn:0.02/0.03x5[contacts=2],flash:40[herd],part:2x3@0.95,quiet:1",
            "adv:eclipse@0.05>victims:8,quiet:3,part:3x4@0.9/0.5",
            "(churn:0.01x5,kill:0.3)x2,flash:7[contacts=1]",
        ] {
            let parsed = Workload::parse(schedule, 11).unwrap();
            let shown = parsed.to_string();
            let reparsed = Workload::parse(&shown, 11)
                .unwrap_or_else(|e| panic!("display output `{shown}` must reparse: {e}"));
            assert_eq!(parsed, reparsed, "round-trip of `{schedule}` via `{shown}`");
        }
    }

    #[test]
    fn zero_phases_are_typed_errors() {
        for (schedule, kind) in [
            ("quiet:0", ScheduleErrorKind::ZeroLength),
            ("churn:0.01x0", ScheduleErrorKind::ZeroLength),
            ("part:2x0", ScheduleErrorKind::ZeroLength),
            ("flash:0", ScheduleErrorKind::ZeroLength),
            ("(quiet:5)x0", ScheduleErrorKind::ZeroLength),
            ("()x3", ScheduleErrorKind::ZeroLength),
            ("churn:0x5", ScheduleErrorKind::ZeroRate),
            ("churn:0/0x5", ScheduleErrorKind::ZeroRate),
            ("kill:0", ScheduleErrorKind::ZeroRate),
            ("part:2x5@0", ScheduleErrorKind::ZeroRate),
            ("kill:1.5", ScheduleErrorKind::OutOfRange),
            ("part:1x5", ScheduleErrorKind::OutOfRange),
            ("part:2x5@1.5", ScheduleErrorKind::OutOfRange),
            ("churn:-0.1x5", ScheduleErrorKind::OutOfRange),
            ("bogus:1", ScheduleErrorKind::UnknownKind),
            ("adv:gremlin@0.1", ScheduleErrorKind::UnknownKind),
            ("adv:hub@0.9", ScheduleErrorKind::Adversary),
            ("quiet:5[contacts=3]", ScheduleErrorKind::Override),
            ("flash:9[contacts=0]", ScheduleErrorKind::Override),
            ("flash:9[herd,contacts=2]", ScheduleErrorKind::Override),
            ("churn:0.01x5[turbo=1]", ScheduleErrorKind::Override),
            ("(quiet:5", ScheduleErrorKind::Repetition),
            ("quiet:5)x2", ScheduleErrorKind::Repetition),
            ("((quiet:5)x2)x2", ScheduleErrorKind::Repetition),
            ("(adv:hub@0.1)x2", ScheduleErrorKind::Repetition),
            ("(quiet:5)y2", ScheduleErrorKind::Repetition),
            ("quiet", ScheduleErrorKind::Syntax),
            ("quiet:x", ScheduleErrorKind::Syntax),
            ("churn:ax5", ScheduleErrorKind::Syntax),
        ] {
            let err = Workload::parse(schedule, 0).unwrap_err();
            assert_eq!(err.kind, kind, "`{schedule}` → {err}");
        }
    }

    #[test]
    fn parse_compiles_adversary_roles() {
        let parsed = Workload::parse("adv:hub@0.02,quiet:5", 7).unwrap();
        assert_eq!(
            parsed.adversary_spec(),
            Some(&AdversarySpec::new(AdversaryKind::Hub, 0.02).unwrap())
        );
        let compiled = parsed.compile(200);
        let roles = compiled.adversary.expect("adv compiles to roles");
        assert_eq!(roles.kind(), AdversaryKind::Hub);
        assert_eq!(roles.attacker_count(), 4);

        let eclipse = Workload::parse("adv:eclipse@0.05>victims:8,quiet:3", 7).unwrap();
        let roles = eclipse.compile(100).adversary.unwrap();
        assert_eq!(roles.kind(), AdversaryKind::Eclipse);
        assert_eq!(roles.victim_count(), 8);

        // Identical schedules place identical roles regardless of phases.
        let a = Workload::parse("adv:liar@0.1,quiet:1", 1)
            .unwrap()
            .compile(64);
        let b = Workload::parse("adv:liar@0.1,churn:0.01x4", 1)
            .unwrap()
            .compile(64);
        assert_eq!(a.adversary, b.adversary);

        // Clean schedules compile no roles.
        assert_eq!(
            Workload::parse("quiet:2", 0).unwrap().compile(10).adversary,
            None
        );

        // One placement per schedule.
        assert!(Workload::parse("adv:hub@0.1,adv:liar@0.1", 0).is_err());
    }

    #[test]
    fn parse_rejects_malformed_items() {
        for bad in [
            "quiet",
            "quiet:x",
            "churn:0.1",
            "churn:ax5",
            "kill:1.5",
            "kill:x",
            "flash:x",
            "part:1x5",
            "part:2",
            "bogus:1",
            "adv:hub",
            "adv:gremlin@0.1",
            "adv:hub@0.9",
            "adv:hub@x",
            "adv:hub@0.1>victims:4",
            "adv:eclipse@0.1",
            "adv:eclipse@0.1>victims:x",
            "adv:eclipse@0.1>foes:4",
        ] {
            let err = Workload::parse(bad, 0).unwrap_err();
            assert_eq!(err.item, bad.split_once(',').map_or(bad, |(a, _)| a));
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let w = acceptance();
        let a = w.compile(200);
        let b = w.compile(200);
        assert_eq!(a, b);
        let c = Workload::new(8).quiet(10).catastrophe(0.5).churn(0.01, 20);
        assert_ne!(a, c.compile(200));
    }

    #[test]
    fn compiled_catastrophe_lands_on_the_next_period() {
        let compiled = acceptance().compile(100);
        assert_eq!(compiled.periods(), 30);
        assert_eq!(compiled.initial_nodes, 100);
        // Periods 1..=10 are quiet; period 11 opens with the 50% kill.
        for step in &compiled.steps[..10] {
            assert!(step.ops.is_empty());
        }
        let kills = compiled.steps[10]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Kill(_)))
            .count();
        assert_eq!(kills, 50);
        // Kills are distinct ids.
        let mut victims: Vec<NodeId> = compiled.steps[10]
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Kill(id) => Some(*id),
                _ => None,
            })
            .collect();
        victims.sort();
        victims.dedup();
        assert_eq!(victims.len(), 50);
    }

    #[test]
    fn churn_counts_follow_the_carry_accumulator() {
        // 1% of 100 live = 1 kill + 1 join every period, exactly.
        let compiled = Workload::new(3).churn(0.01, 10).compile(100);
        for step in &compiled.steps {
            let kills = step.ops.iter().filter(|o| matches!(o, Op::Kill(_))).count();
            let joins = step
                .ops
                .iter()
                .filter(|o| matches!(o, Op::Join { .. }))
                .count();
            assert_eq!((kills, joins), (1, 1), "{step:?}");
        }
        assert_eq!(compiled.total_joins(), 10);
        assert_eq!(compiled.id_space, 110);
    }

    #[test]
    fn joins_get_sequential_ids_and_live_contacts() {
        let compiled = Workload::new(5).flash_crowd(20).compile(50);
        // Trailing instantaneous phase gets its own observation period.
        assert_eq!(compiled.periods(), 1);
        for (expected, op) in (50u64..).zip(compiled.steps[0].ops.iter()) {
            let Op::Join { id, contacts } = op else {
                panic!("expected joins, got {op:?}");
            };
            assert_eq!(id.as_u64(), expected);
            assert!(!contacts.is_empty() && contacts.len() <= 3);
            for c in contacts {
                assert!(c.as_u64() < 50 || c.as_u64() < id.as_u64());
            }
        }
        assert_eq!(compiled.id_space, 70);
    }

    #[test]
    fn partition_heals_on_the_following_period() {
        let compiled = Workload::new(1)
            .quiet(2)
            .partition(2, 3)
            .quiet(2)
            .compile(10);
        assert_eq!(compiled.periods(), 7);
        assert_eq!(
            compiled.steps[2].ops,
            vec![Op::SetPartition(Some(Partition::new(2)))]
        );
        assert_eq!(compiled.steps[5].ops, vec![Op::SetPartition(None)]);
        // Trailing partition gets a synthetic heal step.
        let tail = Workload::new(1).partition(2, 2).compile(10);
        assert_eq!(tail.periods(), 3);
        assert_eq!(tail.steps[2].ops, vec![Op::SetPartition(None)]);
    }

    #[test]
    fn zero_rate_churn_never_mutates_membership() {
        let compiled = Workload::new(9).churn(0.0, 25).compile(64);
        assert!(compiled.steps.iter().all(|s| s.ops.is_empty()));
        assert_eq!(compiled.id_space, 64);
    }

    #[test]
    fn runs_on_the_cycle_engine_end_to_end() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 10).unwrap();
        let mut sim = scenario::random_overlay(&config, 120, 11);
        sim.run_cycles(15);
        let compiled = Workload::new(2)
            .quiet(2)
            .catastrophe(0.5)
            .churn(0.02, 8)
            .compile(120);
        let records = run_workload(&mut sim, &compiled, 10);
        // 2 quiet + 8 churn periods; the catastrophe merges into period 3.
        assert_eq!(records.len(), 10);
        // Period 3 opens with the 50% kill plus that period's churn share.
        assert!(records[2].killed >= 60, "{:?}", records[2]);
        let last = records.last().unwrap();
        assert!(last.live > 40 && last.live < 80, "{last:?}");
        // Healing: dead-link fraction decays well below the catastrophe's.
        assert!(records[2].dead_link_fraction() > 0.2, "{:?}", records[2]);
        assert!(last.dead_link_fraction() < 0.1, "{last:?}");
        assert!(last.component_fraction() > 0.95, "{last:?}");
    }

    #[test]
    fn measure_rows_reports_the_basics() {
        let rows = vec![
            (NodeId::new(0), vec![NodeId::new(1), NodeId::new(3)]),
            (NodeId::new(1), vec![NodeId::new(0)]),
        ];
        // Node 3 is dead: one dead link, excluded from the graph.
        let r = measure_rows(4, &rows, |id| id.as_u64() < 2, 2);
        assert_eq!(r.live, 2);
        assert_eq!(r.dead_links, 1);
        assert_eq!(r.total_links, 3);
        assert_eq!(r.full_views, 1);
        assert_eq!(r.largest_component, 2);
        assert!((r.in_degree_mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_satisfies_workload_target() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap();
        let mut sim = Simulation::new(config, 3);
        sim.add_node([]);
        sim.add_node([pss_core::NodeDescriptor::fresh(NodeId::new(0))]);
        WorkloadTarget::join(&mut sim, NodeId::new(2), &[NodeId::new(0)]);
        assert_eq!(sim.node_count(), 3);
        WorkloadTarget::set_partition(&mut sim, Some(Partition::new(2)));
        WorkloadTarget::run_period(&mut sim);
        WorkloadTarget::set_partition(&mut sim, None);
        assert!(WorkloadTarget::kill(&mut sim, NodeId::new(2)));
        let mut rows = Vec::new();
        WorkloadTarget::collect_rows(&sim, &mut rows);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "workload compiled id")]
    fn join_id_mismatch_is_detected() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap();
        let mut sim = Simulation::new(config, 3);
        sim.add_node([]);
        WorkloadTarget::join(&mut sim, NodeId::new(5), &[NodeId::new(0)]);
    }
}
