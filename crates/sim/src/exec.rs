//! Shared sharded-execution machinery.
//!
//! Both parallel engines — the cycle-driven [`crate::ShardedSimulation`]
//! and the event-driven [`crate::ShardedEventSimulation`] — run the same
//! execution skeleton: a population partitioned into shards, phases executed
//! by a persistent [`WorkerPool`] with a static contiguous shard→worker
//! assignment, and fixed-order per-`(src, dst)` mailboxes that are
//! pointer-swap transposed on the driver thread between phases. This module
//! holds that skeleton so the two engines share one implementation (and one
//! set of invariants):
//!
//! * [`run_phase`] — pool execution of a per-shard closure. Shards are
//!   data-isolated within a phase, so the shard→worker assignment is pure
//!   load balancing and can never affect results; it is *contiguous and
//!   static* (worker `w` always owns the same shard range) so each shard's
//!   memory stays affine to one worker across phases and cycles.
//! * [`Mailboxes`]/[`transpose`] — the fixed-order cross-shard queues. A
//!   mailbox lane is written by exactly one shard and read by exactly one
//!   shard, on opposite sides of a phase barrier; transposition swaps the
//!   vectors (no copies) and recycles the drained capacity back to the
//!   sender.
//! * [`SlotRef`]/[`Directory`] — the global id → `(shard, slot)` mapping
//!   with its liveness bitset, the single source of truth shared by every
//!   accessor on both engines.

use std::sync::Mutex;

use pss_core::{GossipNode, NodeDescriptor, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::pool::WorkerPool;
use crate::population::Population;

/// Where a global node id lives: `(shard, slot within the shard)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotRef {
    pub(crate) shard: u32,
    pub(crate) slot: u32,
}

/// SplitMix64 finalizer, for deriving independent per-shard and per-node
/// seeds from one construction seed.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG seed of shard `index` from the construction seed:
/// an independent per-shard stream, offset by a golden-ratio multiple so
/// shard 0 does not alias the control RNG.
pub(crate) fn shard_seed(seed: u64, index: usize) -> u64 {
    mix(seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The global id → `(shard, slot)` directory plus the liveness bitset.
///
/// Ids are assigned densely in join order and never reused. Ids below the
/// planned capacity map to contiguous per-shard ranges (so bulk
/// construction can proceed shard-parallel); later joins are placed by the
/// owning engine (least-loaded).
#[derive(Debug, Default)]
pub(crate) struct Directory {
    slots: Vec<SlotRef>,
    /// Bit per global id; the single source of truth for liveness.
    alive_bits: Vec<u64>,
    alive_count: usize,
    /// Ids below this were pre-planned and map to contiguous shard ranges.
    planned: u64,
}

impl Directory {
    pub(crate) fn new() -> Self {
        Directory::default()
    }

    /// Declares that the next `n` ids will be bulk-added into contiguous
    /// per-shard ranges (shard `k` of `s` owns ids `[k·n/s, (k+1)·n/s)`).
    ///
    /// # Panics
    ///
    /// Panics if nodes were already added.
    pub(crate) fn plan_capacity(&mut self, n: usize) {
        assert!(
            self.slots.is_empty(),
            "plan_capacity must precede the first add_node"
        );
        self.planned = n as u64;
    }

    /// The shard a fresh id belongs to: its planned range, or the
    /// least-loaded shard (lowest index on ties) given per-shard loads.
    pub(crate) fn shard_for_new(
        &self,
        id: u64,
        loads: impl ExactSizeIterator<Item = usize>,
    ) -> usize {
        let s = loads.len() as u64;
        debug_assert!(s > 0, "need at least one shard");
        if id < self.planned {
            ((id * s) / self.planned) as usize
        } else {
            loads
                .enumerate()
                .min_by_key(|(i, load)| (*load, *i))
                .map(|(i, _)| i)
                .expect("at least one shard")
        }
    }

    /// The full id → `(shard, slot)` table, indexable by `id.as_index()`.
    pub(crate) fn slots(&self) -> &[SlotRef] {
        &self.slots
    }

    /// Total ids ever assigned (dead ones included).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Number of live ids.
    pub(crate) fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Registers the next id as living in `(shard, slot)` and marks it
    /// alive. Returns the id.
    pub(crate) fn push(&mut self, shard: u32, slot: u32) -> NodeId {
        let id = NodeId::new(self.slots.len() as u64);
        self.slots.push(SlotRef { shard, slot });
        let bit = id.as_index();
        if bit / 64 >= self.alive_bits.len() {
            self.alive_bits.push(0);
        }
        self.alive_bits[bit / 64] |= 1 << (bit % 64);
        self.alive_count += 1;
        id
    }

    /// True if `id` exists and is alive.
    pub(crate) fn is_alive(&self, id: NodeId) -> bool {
        let slot = id.as_index();
        self.alive_bits
            .get(slot / 64)
            .is_some_and(|word| word & (1 << (slot % 64)) != 0)
    }

    /// Clears the liveness bit of `id`. Returns its slot if it was alive.
    pub(crate) fn kill(&mut self, id: NodeId) -> Option<SlotRef> {
        if !self.is_alive(id) {
            return None;
        }
        let bit = id.as_index();
        self.alive_bits[bit / 64] &= !(1 << (bit % 64));
        self.alive_count -= 1;
        Some(self.slots[bit])
    }

    /// The `(shard, slot)` of `id`, dead or alive.
    pub(crate) fn slot_ref(&self, id: NodeId) -> Option<SlotRef> {
        self.slots.get(id.as_index()).copied()
    }

    /// The liveness bitset (bit per global id).
    pub(crate) fn alive_bits(&self) -> &[u64] {
        &self.alive_bits
    }

    /// Ids of all live nodes, in increasing order.
    pub(crate) fn alive_ids(&self) -> Vec<NodeId> {
        (0..self.slots.len() as u64)
            .map(NodeId::new)
            .filter(|&id| self.is_alive(id))
            .collect()
    }
}

/// One message-loss draw against the shard-local RNG stream.
#[inline]
pub(crate) fn lose(rng: &mut SmallRng, loss: f64) -> bool {
    loss > 0.0 && rng.random::<f64>() < loss
}

/// Crash-stop kill shared by both engines: clears the directory liveness
/// bit and the owning shard's population slot. `pop` projects the
/// population out of the engine-specific shard type.
pub(crate) fn kill_node<S, N: GossipNode>(
    dir: &mut Directory,
    shards: &mut [S],
    id: NodeId,
    pop: impl Fn(&mut S) -> &mut Population<N>,
) -> bool {
    let Some(slot_ref) = dir.kill(id) else {
        return false;
    };
    let killed = pop(&mut shards[slot_ref.shard as usize]).kill_slot(slot_ref.slot);
    debug_assert!(killed);
    true
}

/// Worker-parallel bulk construction shared by both engines: plans `n`
/// contiguous per-shard id ranges, builds every shard's partition
/// concurrently with `(seed, id)`-pure node seeds, runs the
/// engine-specific `per_node` hook (the event engine schedules the initial
/// timer there), then registers the ids in the directory — bit-identical
/// at any worker count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bulk_build<S, N, I>(
    dir: &mut Directory,
    shards: &mut [S],
    pool: &WorkerPool,
    n: usize,
    seed: u64,
    factory: &(dyn Fn(NodeId, u64) -> N + Send + Sync),
    seeds: impl Fn(NodeId) -> I + Sync,
    pop: impl Fn(&mut S) -> &mut Population<N> + Sync,
    index: impl Fn(&S) -> usize + Sync,
    per_node: impl Fn(&mut S, u32, NodeId) + Sync,
) where
    S: Send,
    N: GossipNode + Send,
    I: IntoIterator<Item = NodeDescriptor>,
{
    dir.plan_capacity(n);
    let shard_count = shards.len();
    // Routed through the pool with the same contiguous partition the
    // phases use, so each shard's nodes are first-touched (and thus, on
    // NUMA systems, placed) by the worker that will run them.
    run_phase(shards, pool, |shard| {
        let (start, end) = planned_range(n, shard_count, index(shard));
        for raw in start..end {
            let id = NodeId::new(raw as u64);
            let node = factory(id, bulk_node_seed(seed, id.as_u64()));
            debug_assert_eq!(node.id(), id, "factory must honor the assigned id");
            let slot = pop(shard).add_slot(node);
            debug_assert_eq!(slot as usize, raw - start);
            pop(shard)
                .slot_mut(slot)
                .node
                .init(&mut seeds(id).into_iter());
            per_node(shard, slot, id);
        }
    });
    for raw in 0..n as u64 {
        // Same placement formula `shard_for_new` uses for planned ids.
        let shard = ((raw * shard_count as u64) / n as u64) as usize;
        let (start, _) = planned_range(n, shard_count, shard);
        dir.push(shard as u32, (raw as usize - start) as u32);
    }
}

/// The contiguous id range shard `index` of `shards` owns under a plan of
/// `n` ids: `[⌈index·n/shards⌉, ⌈(index+1)·n/shards⌉)` — exactly the ids
/// [`Directory::shard_for_new`] maps to that shard, so bulk construction
/// and incremental joins agree on placement.
pub(crate) fn planned_range(n: usize, shards: usize, index: usize) -> (usize, usize) {
    let start = (index * n).div_ceil(shards);
    let end = ((index + 1) * n).div_ceil(shards);
    (start, end.min(n))
}

/// The (construction seed, id)-pure node seed used by bulk construction —
/// independent of the driver's control RNG, so per-shard workers can build
/// their partitions concurrently with bit-identical results at any worker
/// count.
pub(crate) fn bulk_node_seed(seed: u64, id: u64) -> u64 {
    mix(seed ^ 0x9159_015a_3070_dd17 ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// The (construction seed, id)-pure initial timer phase used by the event
/// engine's bulk construction, uniform over `[0, period)`.
pub(crate) fn bulk_timer_phase(seed: u64, id: u64, period: u64) -> u64 {
    mix(seed ^ 0x7c15_9e37_79b9_7f4a ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d)) % period
}

/// Builds the flat CSR live-view snapshot shared by both engines'
/// `csr_snapshot`: `for_each` must visit every live `(id, view)` in
/// increasing id order (both engines' `for_each_live_view`), and is called
/// twice — once to build the compact index, once to emit edges. Dead view
/// targets are dropped, exactly as in the `Vec`-based snapshot.
pub(crate) fn csr_from_views(
    id_space: usize,
    alive_count: usize,
    for_each: impl Fn(&mut dyn FnMut(NodeId, &pss_core::View)),
) -> crate::CsrSnapshot {
    let mut index = vec![u32::MAX; id_space];
    let mut ids: Vec<NodeId> = Vec::with_capacity(alive_count);
    let mut per_node = 0usize;
    for_each(&mut |id, view| {
        index[id.as_index()] = ids.len() as u32;
        ids.push(id);
        // Estimate edge capacity from the first live view (views share c).
        if per_node == 0 {
            per_node = view.len();
        }
    });
    let mut builder = pss_graph::csr::CsrBuilder::with_capacity(ids.len(), ids.len() * per_node);
    for_each(&mut |_, view| {
        builder.push_node(view.ids().filter_map(|target| {
            index
                .get(target.as_index())
                .copied()
                .filter(|&compact| compact != u32::MAX)
        }));
    });
    let graph = builder.finish().expect("compact indices are in range");
    crate::CsrSnapshot::new(graph, ids)
}

/// The outgoing/incoming cross-shard queues of one shard, one fixed-order
/// lane per peer shard. `out[dst]` is filled by this shard during a phase;
/// [`transpose`] then moves every `out[dst]` into the destination shard's
/// `inbox[src]`, where lane index = sender shard, so draining the inbox in
/// lane order is the deterministic sender-shard order the engines' contracts
/// rely on.
pub(crate) struct Mailboxes<T> {
    pub(crate) out: Vec<Vec<T>>,
    pub(crate) inbox: Vec<Vec<T>>,
}

impl<T> Mailboxes<T> {
    pub(crate) fn new(shards: usize) -> Self {
        Mailboxes {
            out: (0..shards).map(|_| Vec::new()).collect(),
            inbox: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// True if every outgoing lane is empty.
    pub(crate) fn out_is_empty(&self) -> bool {
        self.out.iter().all(Vec::is_empty)
    }
}

/// Two distinct mutable shards by index.
///
/// # Panics
///
/// Panics if `i == j` or either is out of range.
pub(crate) fn shard_pair<S>(shards: &mut [S], i: usize, j: usize) -> (&mut S, &mut S) {
    assert_ne!(i, j);
    if i < j {
        let (lo, hi) = shards.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = shards.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

/// Moves every shard's `out[dst]` lane into the destination's `inbox[src]`
/// lane: the mailbox transposition between phases. Vectors are swapped, not
/// copied, and the drained inbox capacity flows back to the sender —
/// O(S²) pointer swaps on the driver thread. `mail` projects the mailboxes
/// out of the engine-specific shard type.
pub(crate) fn transpose<S, T>(shards: &mut [S], mail: impl Fn(&mut S) -> &mut Mailboxes<T>) {
    for src in 0..shards.len() {
        for dst in 0..shards.len() {
            if src == dst {
                continue;
            }
            let (sender, receiver) = shard_pair(shards, src, dst);
            let out = core::mem::take(&mut mail(sender).out[dst]);
            let spent = core::mem::replace(&mut mail(receiver).inbox[src], out);
            debug_assert!(spent.is_empty(), "inbox must be drained before refill");
            mail(sender).out[dst] = spent; // recycle capacity
        }
    }
}

/// Runs `f` over every shard on the persistent [`WorkerPool`], with a
/// static *contiguous* shard→worker partition: worker `w` of `W` owns the
/// shard range [`planned_range`]`(shards, W, w)`. The assignment is pure
/// load balancing — shards are data-isolated within a phase, so which
/// worker runs which shard can never affect results — but keeping it
/// static and contiguous means a shard's memory is always touched by the
/// same pool thread, so caches (and, under first-touch placement, pages)
/// stay local to that worker.
pub(crate) fn run_phase<S, F>(shards: &mut [S], pool: &WorkerPool, f: F)
where
    S: Send,
    F: Fn(&mut S) + Sync,
{
    let workers = pool.workers().clamp(1, shards.len().max(1));
    if workers <= 1 {
        for shard in shards.iter_mut() {
            f(shard);
        }
        return;
    }
    // Hand each worker its contiguous chunk through a take-once slot; the
    // chunks are disjoint `&mut` slices, so there is no aliasing to police
    // beyond the one-time take.
    let total = shards.len();
    let mut chunks: Vec<Mutex<Option<&mut [S]>>> = Vec::with_capacity(workers);
    let mut rest = shards;
    for w in 0..workers {
        let (start, end) = planned_range(total, workers, w);
        let (chunk, tail) = rest.split_at_mut(end - start);
        rest = tail;
        chunks.push(Mutex::new(Some(chunk)));
    }
    pool.run(workers, &|w| {
        let chunk = chunks[w]
            .lock()
            .expect("chunk slot never poisoned: taken before f runs")
            .take()
            .expect("each chunk is taken exactly once");
        for shard in chunk.iter_mut() {
            f(shard);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_assigns_planned_then_least_loaded() {
        let mut dir = Directory::new();
        dir.plan_capacity(4);
        // Planned ids split evenly over 2 shards.
        assert_eq!(dir.shard_for_new(0, [0, 0].into_iter()), 0);
        assert_eq!(dir.shard_for_new(1, [0, 0].into_iter()), 0);
        assert_eq!(dir.shard_for_new(2, [0, 0].into_iter()), 1);
        assert_eq!(dir.shard_for_new(3, [0, 0].into_iter()), 1);
        // Beyond the plan: least loaded, lowest index on ties.
        assert_eq!(dir.shard_for_new(4, [3, 2].into_iter()), 1);
        assert_eq!(dir.shard_for_new(4, [2, 2].into_iter()), 0);
    }

    #[test]
    fn directory_tracks_liveness() {
        let mut dir = Directory::new();
        let a = dir.push(0, 0);
        let b = dir.push(1, 0);
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.alive_count(), 2);
        assert!(dir.is_alive(a) && dir.is_alive(b));
        let slot = dir.kill(b).expect("was alive");
        assert_eq!(slot.shard, 1);
        assert!(dir.kill(b).is_none());
        assert_eq!(dir.alive_count(), 1);
        assert_eq!(dir.alive_ids(), vec![a]);
        assert_eq!(dir.alive_bits(), &[0b01]);
        assert!(dir.slot_ref(b).is_some(), "dead ids keep their slot");
    }

    #[test]
    fn transpose_moves_and_recycles() {
        struct S {
            mail: Mailboxes<u32>,
        }
        let mut shards: Vec<S> = (0..3)
            .map(|_| S {
                mail: Mailboxes::new(3),
            })
            .collect();
        shards[0].mail.out[1].extend([10, 11]);
        shards[0].mail.out[2].push(20);
        shards[2].mail.out[0].push(99);
        transpose(&mut shards, |s| &mut s.mail);
        assert_eq!(shards[1].mail.inbox[0], vec![10, 11]);
        assert_eq!(shards[2].mail.inbox[0], vec![20]);
        assert_eq!(shards[0].mail.inbox[2], vec![99]);
        assert!(shards.iter().all(|s| s.mail.out_is_empty()));
    }

    #[test]
    fn run_phase_covers_every_shard_at_any_worker_count() {
        for workers in [1, 2, 5, 8] {
            let pool = WorkerPool::new(workers);
            let mut shards: Vec<u64> = vec![0; 5];
            run_phase(&mut shards, &pool, |s| *s += 1);
            assert_eq!(shards, vec![1; 5], "workers = {workers}");
        }
    }

    #[test]
    fn run_phase_partition_is_contiguous_and_covers_exactly_once() {
        // Tag each shard with the worker that ran it; the static partition
        // must be contiguous ranges in shard order.
        let pool = WorkerPool::new(3);
        let mut shards: Vec<(usize, Mutex<usize>)> =
            (0..7).map(|i| (i, Mutex::new(usize::MAX))).collect();
        let worker_of = Mutex::new(std::collections::HashMap::new());
        run_phase(&mut shards, &pool, |(index, tag)| {
            let key = std::thread::current().id();
            let mut map = worker_of.lock().unwrap();
            let next = map.len();
            let worker = *map.entry(key).or_insert(next);
            *tag.get_mut().unwrap() = worker;
            let _ = index;
        });
        let tags: Vec<usize> = shards.iter().map(|(_, t)| *t.lock().unwrap()).collect();
        assert!(tags.iter().all(|&t| t != usize::MAX), "every shard ran");
        // Contiguity: equal tags form runs (no interleaving).
        let mut seen = Vec::new();
        for &t in &tags {
            if seen.last() != Some(&t) {
                assert!(!seen.contains(&t), "partition must be contiguous: {tags:?}");
                seen.push(t);
            }
        }
    }
}
