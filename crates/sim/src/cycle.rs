//! The cycle-driven simulation engine (the paper's execution model).
//!
//! Since the sharded-engine refactor there is exactly **one** cycle engine:
//! [`crate::ShardedSimulation`]. The [`Simulation`] type here is that
//! engine pinned to a single shard and a single worker — every peer is then
//! local, every exchange completes inline and atomically in initiation
//! order, and the cross-shard mailboxes are never touched. The historical
//! API is preserved verbatim.

use pss_core::{GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig, View};

use crate::population::BoxedNode;
use crate::shard::ShardedSimulation;
use crate::workload::Partition;
use crate::{CycleReport, FailureMode, GrowthPlan, Snapshot};

/// The sequential cycle-driven simulator.
///
/// In each cycle every live node initiates exactly one exchange, in a fresh
/// uniform-random order; each exchange runs atomically (initiate →
/// handle_request → handle_reply). An exchange whose peer is dead does
/// nothing at all on the initiator side — push messages are lost, pull
/// requests time out — matching the paper's model where self-healing comes
/// exclusively from view selection.
///
/// All randomness derives from the construction seed, so runs are exactly
/// reproducible. `Simulation` is the 1-shard special case of
/// [`ShardedSimulation`]; the two are interchangeable and produce identical
/// results at equal seeds (pinned by the differential tests).
///
/// # Node type parameter
///
/// `Simulation` defaults to heterogeneous boxed nodes
/// ([`BoxedNode`], virtual dispatch per protocol call), which keeps the
/// historical API: `Simulation::new(config, seed)` and
/// [`Simulation::with_factory`] with a boxing factory compile unchanged.
/// For large populations, [`Simulation::typed`] (or `with_factory` with a
/// concrete node type) builds a **monomorphized** simulation whose inner
/// loop is devirtualized and inlined — measurably faster at N = 10⁴ and
/// beyond (see `benches/throughput.rs`).
pub struct Simulation<N: GossipNode + Send = BoxedNode> {
    inner: ShardedSimulation<N>,
}

impl Simulation {
    /// Creates an empty simulation whose (boxed) nodes run the generic
    /// protocol of the paper under `config`.
    pub fn new(config: ProtocolConfig, seed: u64) -> Self {
        Simulation {
            inner: ShardedSimulation::new(config, seed, 1),
        }
    }
}

impl Simulation<PeerSamplingNode> {
    /// Creates an empty **monomorphized** simulation of
    /// [`PeerSamplingNode`]s: identical behavior to [`Simulation::new`]
    /// (same seeds ⇒ same exchanges), minus the virtual dispatch.
    pub fn typed(config: ProtocolConfig, seed: u64) -> Self {
        Simulation {
            inner: ShardedSimulation::typed(config, seed, 1),
        }
    }
}

impl<N: GossipNode + Send> Simulation<N> {
    /// Creates an empty simulation with a custom node factory (e.g. for
    /// [`pss_core::hs::HsNode`] or user protocols). The factory receives the
    /// assigned node id and a derived RNG seed. It must be `Fn + Sync` —
    /// the contract shared by every engine so populations can be built
    /// worker-parallel (see [`ShardedSimulation::add_nodes_bulk`]).
    pub fn with_factory(
        seed: u64,
        factory: impl Fn(NodeId, u64) -> N + Send + Sync + 'static,
    ) -> Self {
        Simulation {
            inner: ShardedSimulation::with_factory(seed, 1, factory),
        }
    }

    /// The underlying sharded engine (always one shard).
    pub fn as_sharded(&self) -> &ShardedSimulation<N> {
        &self.inner
    }

    /// Selects how exchanges with dead peers are handled (default:
    /// [`FailureMode::SkipDead`], the paper's model).
    pub fn set_failure_mode(&mut self, mode: FailureMode) {
        self.inner.set_failure_mode(mode);
    }

    /// Installs a growth plan (see [`GrowthPlan`]). Growth happens at the
    /// beginning of each subsequent cycle.
    pub fn set_growth(&mut self, plan: GrowthPlan) {
        self.inner.set_growth(plan);
    }

    /// Sets a per-message loss probability (0.0 = the paper's lossless
    /// model). Both requests and replies are subject to loss.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_message_loss(&mut self, p: f64) {
        self.inner.set_message_loss(p);
    }

    /// Installs (`Some`) or lifts (`None`) a partition loss matrix; see
    /// [`ShardedSimulation::set_partition`].
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        self.inner.set_partition(partition);
    }

    /// Adds one node bootstrapped from `seeds` and returns its id.
    pub fn add_node(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) -> NodeId {
        self.inner.add_node(seeds)
    }

    /// Adds `count` nodes, each bootstrapped with `contacts` uniform-random
    /// live contacts (join under churn). Contacts are drawn from the
    /// members that existed *before* this batch — fresh joiners never
    /// bootstrap off each other, which would risk isolated joiner islands.
    /// Returns the new ids.
    pub fn add_nodes_with_random_contacts(&mut self, count: usize, contacts: usize) -> Vec<NodeId> {
        self.inner.add_nodes_with_random_contacts(count, contacts)
    }

    /// Runs one full cycle and reports what happened.
    pub fn run_cycle(&mut self) -> CycleReport {
        self.inner.run_cycle()
    }

    /// Runs `n` cycles, discarding the per-cycle reports.
    pub fn run_cycles(&mut self, n: u64) {
        self.inner.run_cycles(n);
    }

    /// Number of cycles run so far.
    pub fn cycle(&self) -> u64 {
        self.inner.cycle()
    }

    /// Total nodes ever added (dead slots included).
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.inner.alive_count()
    }

    /// True if `id` exists and is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.inner.is_alive(id)
    }

    /// Ids of all live nodes, in increasing order.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.inner.alive_ids()
    }

    /// The view of a live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        self.inner.view_of(id)
    }

    /// Calls the peer sampling service (`getPeer()`) on a live node.
    pub fn get_peer(&mut self, id: NodeId) -> Option<NodeId> {
        self.inner.get_peer(id)
    }

    /// Re-initializes a live node's view from fresh seed descriptors (the
    /// service's `init()` called again). Returns false for dead/unknown
    /// nodes.
    pub fn reinit_node(
        &mut self,
        id: NodeId,
        seeds: impl IntoIterator<Item = NodeDescriptor>,
    ) -> bool {
        self.inner.reinit_node(id, seeds)
    }

    /// Kills one node (crash-stop). Returns false if already dead/unknown.
    pub fn kill(&mut self, id: NodeId) -> bool {
        self.inner.kill(id)
    }

    /// Kills a uniform-random set of `count` live nodes and returns them.
    pub fn kill_random(&mut self, count: usize) -> Vec<NodeId> {
        self.inner.kill_random(count)
    }

    /// Kills `fraction` (0..=1) of the live population at random.
    pub fn kill_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        self.inner.kill_random_fraction(fraction)
    }

    /// Descriptors in live views that point to dead nodes (Figure 7's
    /// y-axis).
    pub fn dead_link_count(&self) -> usize {
        self.inner.dead_link_count()
    }

    /// Builds the communication-graph snapshot over live nodes.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }
}

impl<N: GossipNode + Send> std::fmt::Debug for Simulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cycle", &self.inner.cycle())
            .field("nodes", &self.inner.node_count())
            .field("alive", &self.inner.alive_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::PolicyTriple;

    fn config() -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap()
    }

    fn two_node_sim() -> Simulation {
        let mut sim = Simulation::new(config(), 7);
        // Node 0 bootstraps knowing the (yet to join) node 1; node 1 joins
        // knowing node 0.
        let a = sim.add_node([NodeDescriptor::fresh(NodeId::new(1))]);
        let b = sim.add_node([NodeDescriptor::fresh(a)]);
        assert_eq!(b, NodeId::new(1));
        sim
    }

    #[test]
    fn add_node_assigns_sequential_ids() {
        let mut sim = Simulation::new(config(), 1);
        assert_eq!(sim.add_node([]), NodeId::new(0));
        assert_eq!(sim.add_node([]), NodeId::new(1));
        assert_eq!(sim.node_count(), 2);
        assert_eq!(sim.alive_count(), 2);
    }

    #[test]
    fn seeds_initialize_views() {
        let mut sim = Simulation::new(config(), 1);
        let a = sim.add_node([]);
        let b = sim.add_node([NodeDescriptor::fresh(a)]);
        assert!(sim.view_of(b).unwrap().contains(a));
        assert!(sim.view_of(a).unwrap().is_empty());
    }

    #[test]
    fn cycle_completes_exchanges() {
        let mut sim = two_node_sim();
        let report = sim.run_cycle();
        assert_eq!(sim.cycle(), 1);
        assert_eq!(report.completed, 2);
        assert_eq!(report.empty_view, 0);
        // After one pushpull cycle both know each other.
        assert!(sim
            .view_of(NodeId::new(0))
            .unwrap()
            .contains(NodeId::new(1)));
        assert!(sim
            .view_of(NodeId::new(1))
            .unwrap()
            .contains(NodeId::new(0)));
    }

    #[test]
    fn typed_simulation_matches_boxed_exactly() {
        // The monomorphized fast path must be observationally identical to
        // the boxed engine: same seeds, same exchanges, same views.
        let fingerprint = |views: Vec<Vec<(u64, u32)>>| views;
        let run_boxed = || {
            let mut sim = Simulation::new(config(), 99);
            let first = sim.add_node([]);
            for _ in 0..14 {
                sim.add_node([NodeDescriptor::fresh(first)]);
            }
            sim.run_cycles(8);
            fingerprint(
                sim.alive_ids()
                    .into_iter()
                    .map(|id| {
                        sim.view_of(id)
                            .unwrap()
                            .iter()
                            .map(|d| (d.id().as_u64(), d.hop_count()))
                            .collect()
                    })
                    .collect(),
            )
        };
        let run_typed = || {
            let mut sim = Simulation::typed(config(), 99);
            let first = sim.add_node([]);
            for _ in 0..14 {
                sim.add_node([NodeDescriptor::fresh(first)]);
            }
            sim.run_cycles(8);
            fingerprint(
                sim.alive_ids()
                    .into_iter()
                    .map(|id| {
                        sim.view_of(id)
                            .unwrap()
                            .iter()
                            .map(|d| (d.id().as_u64(), d.hop_count()))
                            .collect()
                    })
                    .collect(),
            )
        };
        assert_eq!(run_boxed(), run_typed());
    }

    #[test]
    fn empty_views_are_reported() {
        let mut sim = Simulation::new(config(), 1);
        sim.add_node([]);
        let report = sim.run_cycle();
        assert_eq!(report.empty_view, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn dead_peer_exchanges_fail_silently() {
        let mut sim = two_node_sim();
        sim.kill(NodeId::new(1));
        let report = sim.run_cycle();
        assert_eq!(report.failed_dead_peer, 1);
        assert_eq!(report.completed, 0);
        // Initiator's view content unchanged (the dead link stays; entries
        // only aged).
        let view = sim.view_of(NodeId::new(0)).unwrap();
        assert!(view.contains(NodeId::new(1)));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn attempt_and_lose_mode_targets_dead_peers() {
        let mut sim = two_node_sim();
        sim.set_failure_mode(FailureMode::AttemptAndLose);
        sim.kill(NodeId::new(1));
        let report = sim.run_cycle();
        // Node 0 blindly selects its only (dead) entry and loses the cycle.
        assert_eq!(report.failed_dead_peer, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn skip_dead_mode_finds_live_alternatives() {
        // Node 0 knows a dead node and a live one; SkipDead must pick the
        // live one every cycle.
        let mut sim = Simulation::new(config(), 13);
        let a = sim.add_node([]); // will die
        let b = sim.add_node([]); // stays
        let c = sim.add_node([NodeDescriptor::fresh(a), NodeDescriptor::fresh(b)]);
        sim.kill(a);
        let report = sim.run_cycle();
        // c's exchange went to b (never the dead a); b may then have
        // initiated its own exchange in the same cycle.
        assert!(report.completed >= 1, "{report:?}");
        assert_eq!(report.failed_dead_peer, 0, "{report:?}");
        assert!(sim.view_of(b).unwrap().contains(c));
    }

    #[test]
    fn kill_bookkeeping() {
        let mut sim = two_node_sim();
        assert!(sim.is_alive(NodeId::new(1)));
        assert!(sim.kill(NodeId::new(1)));
        assert!(!sim.kill(NodeId::new(1)));
        assert!(!sim.is_alive(NodeId::new(1)));
        assert_eq!(sim.alive_count(), 1);
        assert_eq!(sim.node_count(), 2);
        assert_eq!(sim.alive_ids(), vec![NodeId::new(0)]);
    }

    #[test]
    fn kill_random_fraction_halves() {
        let mut sim = Simulation::new(config(), 3);
        for _ in 0..100 {
            sim.add_node([]);
        }
        let victims = sim.kill_random_fraction(0.5);
        assert_eq!(victims.len(), 50);
        assert_eq!(sim.alive_count(), 50);
        // Victims are distinct.
        let mut v = victims.clone();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 50);
    }

    #[test]
    fn kill_random_caps_at_population() {
        let mut sim = two_node_sim();
        let victims = sim.kill_random(10);
        assert_eq!(victims.len(), 2);
        assert_eq!(sim.alive_count(), 0);
    }

    #[test]
    fn dead_links_counted() {
        let mut sim = two_node_sim();
        assert_eq!(sim.dead_link_count(), 0);
        sim.kill(NodeId::new(0));
        // b's view points at dead a.
        assert_eq!(sim.dead_link_count(), 1);
    }

    #[test]
    fn growth_plan_adds_nodes_each_cycle() {
        let mut sim = Simulation::new(config(), 5);
        sim.add_node([]);
        sim.set_growth(GrowthPlan {
            nodes_per_cycle: 10,
            target: 25,
        });
        sim.run_cycle();
        assert_eq!(sim.node_count(), 11);
        sim.run_cycle();
        assert_eq!(sim.node_count(), 21);
        sim.run_cycle();
        assert_eq!(sim.node_count(), 25); // clamped at target
        sim.run_cycle();
        assert_eq!(sim.node_count(), 25);
    }

    #[test]
    fn growth_seeds_point_at_oldest() {
        let mut sim = Simulation::new(config(), 5);
        sim.add_node([]);
        sim.set_growth(GrowthPlan {
            nodes_per_cycle: 3,
            target: 4,
        });
        sim.run_cycle();
        // New nodes joined knowing node 0 (they may have gossiped since,
        // but their views must be non-empty).
        for id in 1..4 {
            assert!(!sim.view_of(NodeId::new(id)).unwrap().is_empty());
        }
    }

    #[test]
    fn snapshot_excludes_dead() {
        let mut sim = two_node_sim();
        sim.run_cycle();
        sim.kill(NodeId::new(1));
        let snap = sim.snapshot();
        assert_eq!(snap.node_count(), 1);
        assert_eq!(snap.directed().edge_count(), 0); // link to dead dropped
    }

    #[test]
    fn deterministic_runs_with_same_seed() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(config(), seed);
            let first = sim.add_node([]);
            for _ in 0..19 {
                sim.add_node([NodeDescriptor::fresh(first)]);
            }
            sim.run_cycles(10);
            // Full view fingerprint: every node's view contents in order.
            sim.alive_ids()
                .into_iter()
                .map(|id| {
                    sim.view_of(id)
                        .unwrap()
                        .iter()
                        .map(|d| (d.id().as_u64(), d.hop_count()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn message_loss_drops_exchanges() {
        let mut sim = two_node_sim();
        sim.set_message_loss(1.0);
        let report = sim.run_cycle();
        assert_eq!(report.completed, 0);
        assert_eq!(report.dropped_messages, 2);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let mut sim = two_node_sim();
        sim.set_message_loss(1.5);
    }

    #[test]
    fn get_peer_service() {
        let mut sim = two_node_sim();
        sim.run_cycle();
        let p = sim.get_peer(NodeId::new(0)).unwrap();
        assert_eq!(p, NodeId::new(1));
        sim.kill(NodeId::new(1));
        assert!(sim.get_peer(NodeId::new(1)).is_none());
    }

    #[test]
    fn reinit_node_replaces_view() {
        let mut sim = two_node_sim();
        assert!(sim.reinit_node(NodeId::new(1), [NodeDescriptor::fresh(NodeId::new(0))]));
        let view = sim.view_of(NodeId::new(1)).unwrap();
        assert_eq!(view.len(), 1);
        assert!(view.contains(NodeId::new(0)));
        sim.kill(NodeId::new(1));
        assert!(!sim.reinit_node(NodeId::new(1), []));
        assert!(!sim.reinit_node(NodeId::new(99), []));
    }

    #[test]
    fn add_nodes_with_random_contacts_yields_live_seeds() {
        let mut sim = Simulation::new(config(), 9);
        sim.add_node([]);
        sim.add_node([NodeDescriptor::fresh(NodeId::new(0))]);
        let ids = sim.add_nodes_with_random_contacts(5, 2);
        assert_eq!(ids.len(), 5);
        for id in ids {
            let view = sim.view_of(id).unwrap();
            assert!(!view.is_empty());
            for d in view.iter() {
                assert!(d.id().as_u64() < id.as_u64());
            }
        }
    }

    #[test]
    fn debug_format_mentions_state() {
        let sim = two_node_sim();
        let text = format!("{sim:?}");
        assert!(text.contains("cycle"));
        assert!(text.contains("alive"));
    }

    #[test]
    fn as_sharded_exposes_single_shard_engine() {
        let sim = two_node_sim();
        assert_eq!(sim.as_sharded().shard_count(), 1);
        assert_eq!(sim.as_sharded().alive_count(), 2);
    }

    #[test]
    fn report_initiated_totals() {
        let r = CycleReport {
            completed: 3,
            failed_dead_peer: 2,
            empty_view: 1,
            dropped_messages: 4,
        };
        assert_eq!(r.initiated(), 10);
    }
}
