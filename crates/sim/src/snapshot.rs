//! Overlay snapshots: from live views to analyzable graphs.

use pss_core::{NodeId, View};
use pss_graph::csr::Csr;
use pss_graph::{DiGraph, UGraph};

/// The communication topology at one instant: a directed graph over the
/// *live* nodes, with compact indices, plus the index ↔ id mapping.
///
/// Edges to dead nodes are excluded (they are *dead links*, counted
/// separately by [`crate::Simulation::dead_link_count`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    directed: DiGraph,
    ids: Vec<NodeId>,
}

impl Snapshot {
    /// Builds a snapshot from `(id, view)` pairs of live nodes; `is_live`
    /// classifies view targets (targets that are not live are dropped).
    pub fn build<'a>(
        nodes: impl IntoIterator<Item = (NodeId, &'a View)>,
        is_live: impl Fn(NodeId) -> bool,
    ) -> Self {
        let collected: Vec<(NodeId, &View)> = nodes.into_iter().collect();
        let ids: Vec<NodeId> = collected.iter().map(|(id, _)| *id).collect();
        let max_id = ids
            .iter()
            .map(|id| id.as_index())
            .max()
            .map_or(0, |m| m + 1);
        let mut index = vec![u32::MAX; max_id];
        for (i, id) in ids.iter().enumerate() {
            index[id.as_index()] = i as u32;
        }
        let views: Vec<Vec<u32>> = collected
            .iter()
            .map(|(_, view)| {
                view.ids()
                    .filter(|&t| {
                        is_live(t) && t.as_index() < max_id && index[t.as_index()] != u32::MAX
                    })
                    .map(|t| index[t.as_index()])
                    .collect()
            })
            .collect();
        let directed = DiGraph::from_views(ids.len(), views).expect("compact indices are in range");
        Snapshot { directed, ids }
    }

    /// The directed view graph (compact indices).
    pub fn directed(&self) -> &DiGraph {
        &self.directed
    }

    /// The undirected communication graph the paper measures.
    pub fn undirected(&self) -> UGraph {
        self.directed.to_undirected()
    }

    /// Number of live nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Maps a compact index back to the simulator [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_id(&self, index: u32) -> NodeId {
        self.ids[index as usize]
    }

    /// Maps a simulator [`NodeId`] to its compact index, if the node is in
    /// the snapshot.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        // ids is sorted (populations enumerate in id order), so binary
        // search applies.
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The live node ids, in increasing order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }
}

/// A flat CSR variant of [`Snapshot`] for very large overlays: the directed
/// live-view graph in two arrays plus the compact-index ↔ id mapping, built
/// without any per-node allocation (see
/// [`crate::ShardedSimulation::csr_snapshot`]).
#[derive(Debug, Clone)]
pub struct CsrSnapshot {
    graph: Csr,
    ids: Vec<NodeId>,
}

impl CsrSnapshot {
    pub(crate) fn new(graph: Csr, ids: Vec<NodeId>) -> Self {
        debug_assert_eq!(graph.node_count(), ids.len());
        CsrSnapshot { graph, ids }
    }

    /// Builds a CSR snapshot from raw `(id, view-target ids)` rows — the
    /// entry point for drivers outside this crate (the `pss-net` cluster
    /// harness gathers rows from runtime threads and feeds them here, so
    /// live-network overlays flow into the same CSR metrics the simulators
    /// use). Rows must be in increasing id order with every id below
    /// `id_space`; targets without a row (dead or remote-unknown nodes) are
    /// dropped, exactly as in the engine-built snapshots.
    ///
    /// # Panics
    ///
    /// Panics if rows are out of order or an id is at or above `id_space`.
    pub fn from_rows(id_space: usize, rows: &[(NodeId, Vec<NodeId>)]) -> Self {
        let mut index = vec![u32::MAX; id_space];
        for (i, (id, _)) in rows.iter().enumerate() {
            assert!(
                i == 0 || rows[i - 1].0 < *id,
                "rows must be sorted by increasing id"
            );
            index[id.as_index()] = i as u32;
        }
        let per_node = rows.first().map_or(0, |(_, targets)| targets.len());
        let mut builder =
            pss_graph::csr::CsrBuilder::with_capacity(rows.len(), rows.len() * per_node);
        for (_, targets) in rows {
            builder.push_node(targets.iter().filter_map(|t| {
                index
                    .get(t.as_index())
                    .copied()
                    .filter(|&compact| compact != u32::MAX)
            }));
        }
        let graph = builder.finish().expect("compact indices are in range");
        CsrSnapshot::new(graph, rows.iter().map(|(id, _)| *id).collect())
    }

    /// The directed view graph over compact indices.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Number of live nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Maps a compact index back to the simulator [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_id(&self, index: u32) -> NodeId {
        self.ids[index as usize]
    }

    /// Maps a simulator [`NodeId`] to its compact index, if present.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        // ids is sorted (built in increasing id order).
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The live node ids, in increasing order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::NodeDescriptor;

    fn view(ids: &[u64]) -> View {
        ids.iter()
            .map(|&i| NodeDescriptor::new(NodeId::new(i), 0))
            .collect()
    }

    #[test]
    fn builds_compact_graph() {
        // Nodes 0, 2, 5 live; node 1 dead. Views reference both.
        let v0 = view(&[2, 1]); // edge to dead 1 dropped
        let v2 = view(&[0, 5]);
        let v5 = view(&[2]);
        let live = [NodeId::new(0), NodeId::new(2), NodeId::new(5)];
        let snap = Snapshot::build(
            vec![
                (NodeId::new(0), &v0),
                (NodeId::new(2), &v2),
                (NodeId::new(5), &v5),
            ],
            |id| live.contains(&id),
        );
        assert_eq!(snap.node_count(), 3);
        let g = snap.directed();
        assert_eq!(g.edge_count(), 4);
        // Compact indices follow input order: 0->0, 2->1, 5->2.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert_eq!(snap.node_id(1), NodeId::new(2));
        assert_eq!(snap.index_of(NodeId::new(5)), Some(2));
        assert_eq!(snap.index_of(NodeId::new(1)), None);
    }

    #[test]
    fn undirected_projection() {
        let v0 = view(&[1]);
        let v1 = view(&[]);
        let snap = Snapshot::build(vec![(NodeId::new(0), &v0), (NodeId::new(1), &v1)], |_| true);
        let u = snap.undirected();
        assert_eq!(u.edge_count(), 1);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 0));
    }

    #[test]
    fn empty_snapshot() {
        let snap = Snapshot::build(Vec::<(NodeId, &View)>::new(), |_| true);
        assert_eq!(snap.node_count(), 0);
        assert_eq!(snap.undirected().node_count(), 0);
        assert_eq!(snap.index_of(NodeId::new(0)), None);
    }

    #[test]
    fn csr_from_rows_matches_build_semantics() {
        // Nodes 0, 2, 5 live; node 1 has no row (dead): edges to it drop.
        let rows = vec![
            (NodeId::new(0), vec![NodeId::new(2), NodeId::new(1)]),
            (NodeId::new(2), vec![NodeId::new(0), NodeId::new(5)]),
            (NodeId::new(5), vec![NodeId::new(2)]),
        ];
        let snap = CsrSnapshot::from_rows(6, &rows);
        assert_eq!(snap.node_count(), 3);
        assert_eq!(snap.graph().edge_count(), 4);
        assert_eq!(snap.graph().out_neighbors(0), &[1]); // dead 1 dropped
        assert_eq!(snap.graph().in_degrees(), vec![1, 2, 1]);
        assert_eq!(snap.node_id(2), NodeId::new(5));
        assert_eq!(snap.index_of(NodeId::new(2)), Some(1));
        assert_eq!(snap.index_of(NodeId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn csr_from_rows_rejects_unsorted_rows() {
        let rows = vec![(NodeId::new(2), vec![]), (NodeId::new(0), vec![])];
        let _ = CsrSnapshot::from_rows(3, &rows);
    }

    #[test]
    fn node_ids_are_sorted() {
        let v = view(&[]);
        let snap = Snapshot::build(
            vec![
                (NodeId::new(1), &v),
                (NodeId::new(3), &v),
                (NodeId::new(7), &v),
            ],
            |_| true,
        );
        assert_eq!(
            snap.node_ids(),
            &[NodeId::new(1), NodeId::new(3), NodeId::new(7)]
        );
    }
}
