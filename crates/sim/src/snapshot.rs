//! Overlay snapshots: from live views to analyzable graphs.

use pss_core::{NodeId, View};
use pss_graph::csr::Csr;
use pss_graph::{DiGraph, UGraph};

/// The communication topology at one instant: a directed graph over the
/// *live* nodes, with compact indices, plus the index ↔ id mapping.
///
/// Edges to dead nodes are excluded (they are *dead links*, counted
/// separately by [`crate::Simulation::dead_link_count`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    directed: DiGraph,
    ids: Vec<NodeId>,
}

impl Snapshot {
    /// Builds a snapshot from `(id, view)` pairs of live nodes; `is_live`
    /// classifies view targets (targets that are not live are dropped).
    pub fn build<'a>(
        nodes: impl IntoIterator<Item = (NodeId, &'a View)>,
        is_live: impl Fn(NodeId) -> bool,
    ) -> Self {
        let collected: Vec<(NodeId, &View)> = nodes.into_iter().collect();
        let ids: Vec<NodeId> = collected.iter().map(|(id, _)| *id).collect();
        let max_id = ids
            .iter()
            .map(|id| id.as_index())
            .max()
            .map_or(0, |m| m + 1);
        let mut index = vec![u32::MAX; max_id];
        for (i, id) in ids.iter().enumerate() {
            index[id.as_index()] = i as u32;
        }
        let views: Vec<Vec<u32>> = collected
            .iter()
            .map(|(_, view)| {
                view.ids()
                    .filter(|&t| {
                        is_live(t) && t.as_index() < max_id && index[t.as_index()] != u32::MAX
                    })
                    .map(|t| index[t.as_index()])
                    .collect()
            })
            .collect();
        let directed = DiGraph::from_views(ids.len(), views).expect("compact indices are in range");
        Snapshot { directed, ids }
    }

    /// The directed view graph (compact indices).
    pub fn directed(&self) -> &DiGraph {
        &self.directed
    }

    /// The undirected communication graph the paper measures.
    pub fn undirected(&self) -> UGraph {
        self.directed.to_undirected()
    }

    /// Number of live nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Maps a compact index back to the simulator [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_id(&self, index: u32) -> NodeId {
        self.ids[index as usize]
    }

    /// Maps a simulator [`NodeId`] to its compact index, if the node is in
    /// the snapshot.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        // ids is sorted (populations enumerate in id order), so binary
        // search applies.
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The live node ids, in increasing order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }
}

/// A flat CSR variant of [`Snapshot`] for very large overlays: the directed
/// live-view graph in two arrays plus the compact-index ↔ id mapping, built
/// without any per-node allocation (see
/// [`crate::ShardedSimulation::csr_snapshot`]).
#[derive(Debug, Clone)]
pub struct CsrSnapshot {
    graph: Csr,
    ids: Vec<NodeId>,
}

impl CsrSnapshot {
    pub(crate) fn new(graph: Csr, ids: Vec<NodeId>) -> Self {
        debug_assert_eq!(graph.node_count(), ids.len());
        CsrSnapshot { graph, ids }
    }

    /// Builds a CSR snapshot from raw `(id, view-target ids)` rows — the
    /// entry point for drivers outside this crate (the `pss-net` cluster
    /// harness gathers rows from runtime threads and feeds them here, so
    /// live-network overlays flow into the same CSR metrics the simulators
    /// use). Rows must be in increasing id order with every id below
    /// `id_space`; targets without a row (dead or remote-unknown nodes) are
    /// dropped, exactly as in the engine-built snapshots.
    ///
    /// # Panics
    ///
    /// Panics if rows are out of order or an id is at or above `id_space`.
    pub fn from_rows(id_space: usize, rows: &[(NodeId, Vec<NodeId>)]) -> Self {
        let mut index = vec![u32::MAX; id_space];
        for (i, (id, _)) in rows.iter().enumerate() {
            assert!(
                i == 0 || rows[i - 1].0 < *id,
                "rows must be sorted by increasing id"
            );
            index[id.as_index()] = i as u32;
        }
        let per_node = rows.first().map_or(0, |(_, targets)| targets.len());
        let mut builder =
            pss_graph::csr::CsrBuilder::with_capacity(rows.len(), rows.len() * per_node);
        for (_, targets) in rows {
            builder.push_node(targets.iter().filter_map(|t| {
                index
                    .get(t.as_index())
                    .copied()
                    .filter(|&compact| compact != u32::MAX)
            }));
        }
        let graph = builder.finish().expect("compact indices are in range");
        CsrSnapshot::new(graph, rows.iter().map(|(id, _)| *id).collect())
    }

    /// The directed view graph over compact indices.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Number of live nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Maps a compact index back to the simulator [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_id(&self, index: u32) -> NodeId {
        self.ids[index as usize]
    }

    /// Maps a simulator [`NodeId`] to its compact index, if present.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        // ids is sorted (built in increasing id order).
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The live node ids, in increasing order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }
}

/// Overlay health estimated **by streaming** view rows — no edge array.
///
/// [`CsrSnapshot`] materializes every directed edge (~120 MB at N = 10⁶,
/// c = 30) before anything can be measured. For the health numbers the
/// large-scale drivers actually watch — is the overlay in one piece, how
/// skewed is the in-degree distribution — that is pure overhead: both are
/// computable in O(id-space) memory from a single-visit stream of
/// `(id, view)` rows. This does exactly that: weak connectivity through a
/// union–find keyed by raw node id, in-degrees through one counter per id.
/// Per-edge state is never stored, so memory is ~13 MB at N = 10⁶
/// regardless of `c`.
///
/// Semantics match the materialized path bit for bit (pinned by tests
/// against [`CsrSnapshot`]): rows are live nodes, view targets without a
/// row are dead links and are dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingMetrics {
    /// Live nodes (rows streamed).
    pub live_nodes: usize,
    /// Live → live directed view edges (dead links excluded).
    pub edge_count: u64,
    /// Largest weakly-connected component over live nodes — equals
    /// [`pss_graph::components::largest_weak_component`] of the CSR graph.
    pub largest_component: usize,
    /// `in_degree_histogram[d]` = number of live nodes with in-degree `d`
    /// in the directed view graph — equals the histogram of the CSR
    /// graph's `in_degrees()`.
    pub in_degree_histogram: Vec<u64>,
}

impl StreamingMetrics {
    /// Computes the metrics from a view-row stream: `for_each` must visit
    /// every live `(id, view)` exactly once per call with every id below
    /// `id_space`, and is called twice — once to learn which ids are live,
    /// once to walk edges (the same contract as the engines'
    /// `for_each_live_view`).
    pub fn from_views(id_space: usize, for_each: impl Fn(&mut dyn FnMut(NodeId, &View))) -> Self {
        let mut live = vec![false; id_space];
        let mut live_nodes = 0usize;
        for_each(&mut |id, _| {
            live[id.as_index()] = true;
            live_nodes += 1;
        });

        // Union–find over raw ids, path-halving find + union by size, so
        // component sizes fall out of the roots at the end.
        let mut parent: Vec<u32> = (0..id_space as u32).collect();
        let mut size: Vec<u32> = vec![1; id_space];
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize];
                v = parent[v as usize];
            }
            v
        }

        let mut in_degrees: Vec<u32> = vec![0; id_space];
        let mut edge_count = 0u64;
        for_each(&mut |id, view| {
            for target in view.ids() {
                let t = target.as_index();
                if !live.get(t).copied().unwrap_or(false) {
                    continue; // dead link: dropped, as in the CSR path
                }
                edge_count += 1;
                in_degrees[t] += 1;
                let a = find(&mut parent, id.as_index() as u32);
                let b = find(&mut parent, t as u32);
                if a != b {
                    let (big, small) = if size[a as usize] >= size[b as usize] {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    parent[small as usize] = big;
                    size[big as usize] += size[small as usize];
                }
            }
        });

        let mut largest_component = 0usize;
        let mut in_degree_histogram = Vec::new();
        for id in 0..id_space {
            if !live[id] {
                continue;
            }
            let root = find(&mut parent, id as u32);
            if root == id as u32 {
                largest_component = largest_component.max(size[id] as usize);
            }
            let d = in_degrees[id] as usize;
            if d >= in_degree_histogram.len() {
                in_degree_histogram.resize(d + 1, 0);
            }
            in_degree_histogram[d] += 1;
        }

        StreamingMetrics {
            live_nodes,
            edge_count,
            largest_component,
            in_degree_histogram,
        }
    }

    /// True if every live node sits in one weak component.
    pub fn is_connected(&self) -> bool {
        self.largest_component == self.live_nodes
    }

    /// Mean in-degree over live nodes (= mean out-degree = mean view fill).
    pub fn mean_in_degree(&self) -> f64 {
        if self.live_nodes == 0 {
            0.0
        } else {
            self.edge_count as f64 / self.live_nodes as f64
        }
    }

    /// Largest in-degree — the hub/hotspot indicator the audit layer
    /// watches under attack.
    pub fn max_in_degree(&self) -> usize {
        self.in_degree_histogram.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::NodeDescriptor;

    fn view(ids: &[u64]) -> View {
        ids.iter()
            .map(|&i| NodeDescriptor::new(NodeId::new(i), 0))
            .collect()
    }

    #[test]
    fn builds_compact_graph() {
        // Nodes 0, 2, 5 live; node 1 dead. Views reference both.
        let v0 = view(&[2, 1]); // edge to dead 1 dropped
        let v2 = view(&[0, 5]);
        let v5 = view(&[2]);
        let live = [NodeId::new(0), NodeId::new(2), NodeId::new(5)];
        let snap = Snapshot::build(
            vec![
                (NodeId::new(0), &v0),
                (NodeId::new(2), &v2),
                (NodeId::new(5), &v5),
            ],
            |id| live.contains(&id),
        );
        assert_eq!(snap.node_count(), 3);
        let g = snap.directed();
        assert_eq!(g.edge_count(), 4);
        // Compact indices follow input order: 0->0, 2->1, 5->2.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert_eq!(snap.node_id(1), NodeId::new(2));
        assert_eq!(snap.index_of(NodeId::new(5)), Some(2));
        assert_eq!(snap.index_of(NodeId::new(1)), None);
    }

    #[test]
    fn undirected_projection() {
        let v0 = view(&[1]);
        let v1 = view(&[]);
        let snap = Snapshot::build(vec![(NodeId::new(0), &v0), (NodeId::new(1), &v1)], |_| true);
        let u = snap.undirected();
        assert_eq!(u.edge_count(), 1);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 0));
    }

    #[test]
    fn empty_snapshot() {
        let snap = Snapshot::build(Vec::<(NodeId, &View)>::new(), |_| true);
        assert_eq!(snap.node_count(), 0);
        assert_eq!(snap.undirected().node_count(), 0);
        assert_eq!(snap.index_of(NodeId::new(0)), None);
    }

    #[test]
    fn csr_from_rows_matches_build_semantics() {
        // Nodes 0, 2, 5 live; node 1 has no row (dead): edges to it drop.
        let rows = vec![
            (NodeId::new(0), vec![NodeId::new(2), NodeId::new(1)]),
            (NodeId::new(2), vec![NodeId::new(0), NodeId::new(5)]),
            (NodeId::new(5), vec![NodeId::new(2)]),
        ];
        let snap = CsrSnapshot::from_rows(6, &rows);
        assert_eq!(snap.node_count(), 3);
        assert_eq!(snap.graph().edge_count(), 4);
        assert_eq!(snap.graph().out_neighbors(0), &[1]); // dead 1 dropped
        assert_eq!(snap.graph().in_degrees(), vec![1, 2, 1]);
        assert_eq!(snap.node_id(2), NodeId::new(5));
        assert_eq!(snap.index_of(NodeId::new(2)), Some(1));
        assert_eq!(snap.index_of(NodeId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn csr_from_rows_rejects_unsorted_rows() {
        let rows = vec![(NodeId::new(2), vec![]), (NodeId::new(0), vec![])];
        let _ = CsrSnapshot::from_rows(3, &rows);
    }

    #[test]
    fn streaming_metrics_match_hand_counts() {
        // Live 0, 2, 5 (two components: {0, 2} via mutual edges, {5}
        // isolated after its only target 1 turns out dead).
        let v0 = view(&[2, 1]);
        let v2 = view(&[0]);
        let v5 = view(&[1]);
        let rows = vec![
            (NodeId::new(0), v0),
            (NodeId::new(2), v2),
            (NodeId::new(5), v5),
        ];
        let m = StreamingMetrics::from_views(6, |f| {
            for (id, view) in &rows {
                f(*id, view);
            }
        });
        assert_eq!(m.live_nodes, 3);
        assert_eq!(m.edge_count, 2); // both edges to dead 1 dropped
        assert_eq!(m.largest_component, 2);
        assert!(!m.is_connected());
        // In-degrees: node 0 ← 2, node 2 ← 0, node 5 ← nothing.
        assert_eq!(m.in_degree_histogram, vec![1, 2]);
        assert_eq!(m.max_in_degree(), 1);
    }

    #[test]
    fn streaming_metrics_of_empty_overlay() {
        let m = StreamingMetrics::from_views(4, |_| {});
        assert_eq!(m.live_nodes, 0);
        assert_eq!(m.edge_count, 0);
        assert_eq!(m.largest_component, 0);
        assert!(m.is_connected());
        assert_eq!(m.mean_in_degree(), 0.0);
    }

    #[test]
    fn node_ids_are_sorted() {
        let v = view(&[]);
        let snap = Snapshot::build(
            vec![
                (NodeId::new(1), &v),
                (NodeId::new(3), &v),
                (NodeId::new(7), &v),
            ],
            |_| true,
        );
        assert_eq!(
            snap.node_ids(),
            &[NodeId::new(1), NodeId::new(3), NodeId::new(7)]
        );
    }
}
