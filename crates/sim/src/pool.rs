//! Persistent worker pool shared by both sharded engines.
//!
//! Earlier revisions spawned scoped threads for every phase of every cycle
//! (and for every lookahead bucket of the event engine) — at N = 10⁶ with
//! short phases the spawn/join cost dominated. This pool creates its
//! threads **once per simulation** and parks them on a condvar between
//! phases; dispatching a phase is one mutex lock plus one `notify_all`.
//!
//! The pool is deliberately dumb: it runs one job at a time, where a job is
//! a `Fn(usize)` invoked once per participating worker with the worker
//! index. Work partitioning (which shards a worker owns) lives in the
//! caller ([`crate::exec::run_phase`]), which hands each worker a
//! *contiguous* shard chunk — static shard→worker assignment, so a shard's
//! memory is touched by the same worker every phase (shard-affine access,
//! and first-touch pages land on the worker that will keep using them).
//!
//! # Safety
//!
//! This is the one module in the crate that needs `unsafe`, in two places:
//!
//! * **Lifetime erasure of the job closure.** [`WorkerPool::run`] borrows
//!   the job as `&(dyn Fn(usize) + Sync)` and stores a raw pointer to it in
//!   the shared state so worker threads can call it. The pointer only
//!   outlives the borrow in the type system: `run` blocks on the `done`
//!   condvar until every worker has acknowledged completion, and workers
//!   never touch the job pointer outside the epoch it was published in, so
//!   the closure is provably alive for every dereference.
//! * **The `sched_setaffinity` syscall** for optional core pinning
//!   (Linux/x86_64 only, opt-in via `PSS_PIN_WORKERS`). It passes a
//!   stack-local cpu mask to the kernel and ignores failure; no memory is
//!   retained past the call.
//!
//! Worker panics are caught with `catch_unwind`: the panicking worker still
//! decrements the completion counter (no barrier deadlock), a flag is set,
//! and the *driver* re-panics after the phase barrier. The pool itself
//! stays consistent and can keep running jobs afterwards; `Drop` always
//! joins every thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A published job: a type-erased pointer to the caller's closure plus the
/// number of workers that should invoke it (workers with a higher index
/// just acknowledge the epoch).
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    workers: usize,
}

// SAFETY: the pointer is only dereferenced while `WorkerPool::run` blocks
// on the `done` barrier, which keeps the pointee borrowed and alive.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

struct State {
    /// Incremented per published job; workers detect work as an epoch change.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet acknowledged the current epoch.
    remaining: usize,
    /// At least one worker panicked while running the current job.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Driver → workers: a new epoch (or shutdown) was published.
    go: Condvar,
    /// Workers → driver: `remaining` reached zero.
    done: Condvar,
}

/// Locks the pool state, recovering from poisoning: the state is a plain
/// counter record with no invariants a panic could tear, and recovering
/// here is what keeps a worker panic from deadlocking the barrier.
fn lock(mutex: &Mutex<State>) -> MutexGuard<'_, State> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A pool of `workers` long-lived threads parked between jobs.
///
/// `workers <= 1` spawns no threads at all; [`WorkerPool::run`] then
/// executes the job inline on the caller, which keeps the single-worker
/// configuration byte-for-byte identical to a plain sequential loop.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `workers` threads (none for `workers <= 1`).
    /// Threads are created here, once, and live until the pool is dropped.
    ///
    /// If the environment variable `PSS_PIN_WORKERS` is set (to anything
    /// but `0`), each worker pins itself to core `index % cores`
    /// (Linux/x86_64; elsewhere the flag is ignored). Pinning is
    /// best-effort and can never affect results — only locality.
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let pin = pin_requested();
        let handles = if workers <= 1 {
            Vec::new()
        } else {
            (0..workers)
                .map(|index| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("pss-worker-{index}"))
                        .spawn(move || worker_loop(&shared, index, pin))
                        .expect("spawn pool worker")
                })
                .collect()
        };
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// The configured worker count (≥ 1).
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one job: `f(w)` is invoked exactly once for every worker index
    /// `w < workers.min(self.workers())`, concurrently on the pool threads
    /// (inline on the caller if the pool is single-worker). Blocks until
    /// every invocation returns.
    ///
    /// # Panics
    ///
    /// Re-panics on the caller if any worker invocation panicked. The pool
    /// remains usable afterwards.
    pub(crate) fn run(&self, workers: usize, f: &(dyn Fn(usize) + Sync)) {
        let workers = workers.clamp(1, self.workers);
        if self.handles.is_empty() || workers <= 1 {
            f(0);
            return;
        }
        // Erase the borrow lifetime so the pointer can cross into the
        // worker threads. SAFETY: see the module docs — the barrier below
        // keeps `f` borrowed until every worker is done with it.
        #[allow(unsafe_code)]
        let job = Job {
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f as *const (dyn Fn(usize) + Sync))
            },
            workers,
        };
        let mut state = lock(&self.shared.state);
        debug_assert!(state.job.is_none(), "pool runs one job at a time");
        state.job = Some(job);
        state.remaining = self.handles.len();
        state.panicked = false;
        state.epoch = state.epoch.wrapping_add(1);
        self.shared.go.notify_all();
        while state.remaining > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.job = None;
        let panicked = state.panicked;
        drop(state);
        if panicked {
            panic!("worker pool job panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.go.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside catch_unwind would surface
            // here; join errors are deliberately ignored so teardown
            // always completes.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize, pin: bool) {
    if pin {
        pin_to_core(index);
    }
    let mut seen_epoch = 0u64;
    loop {
        let (f, workers) = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break;
                }
                state = shared
                    .go
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let job = state.job.as_ref().expect("epoch advanced with a job");
            (job.f, job.workers)
        };
        let panicked = if index < workers {
            // SAFETY: the driver blocks on `done` until we decrement
            // `remaining` below, so the closure behind `f` is still alive.
            #[allow(unsafe_code)]
            let f = unsafe { &*f };
            catch_unwind(AssertUnwindSafe(|| f(index))).is_err()
        } else {
            false
        };
        let mut state = lock(&shared.state);
        if panicked {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// True if the user asked for core pinning via `PSS_PIN_WORKERS`.
fn pin_requested() -> bool {
    std::env::var_os("PSS_PIN_WORKERS").is_some_and(|v| v != "0")
}

/// Pins the calling thread to core `index % cores`, best-effort.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_to_core(index: usize) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let core = index % cores.min(16 * 64);
    let mut mask = [0u64; 16];
    mask[core / 64] = 1 << (core % 64);
    // SAFETY: raw `sched_setaffinity(2)` (x86_64 syscall 203) on a
    // stack-local mask; the kernel copies the mask during the call and
    // retains nothing. Failure (ret < 0) is ignored — pinning is a hint.
    #[allow(unsafe_code)]
    unsafe {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0,
            in("rsi") mask.len() * core::mem::size_of::<u64>(),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_to_core(_index: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        assert!(pool.handles.is_empty());
        let hits = AtomicUsize::new(0);
        pool.run(1, &|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_worker_index_runs_exactly_once_per_job() {
        let pool = WorkerPool::new(4);
        for _ in 0..100 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(4, &|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "worker {w}");
            }
        }
    }

    #[test]
    fn narrower_jobs_leave_extra_workers_idle() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let max_index = AtomicUsize::new(0);
        pool.run(2, &|w| {
            hits.fetch_add(1, Ordering::Relaxed);
            max_index.fetch_max(w, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert!(max_index.load(Ordering::Relaxed) < 2);
    }

    #[test]
    fn worker_panic_propagates_without_deadlocking_the_pool() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|w| {
                if w == 1 {
                    panic!("injected worker failure");
                }
            });
        }));
        assert!(result.is_err(), "driver must observe the worker panic");
        // The pool must remain fully usable after a job panicked...
        let hits = AtomicUsize::new(0);
        pool.run(2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        // ...and Drop must join cleanly (no hung barrier). Implicit here.
    }

    #[test]
    fn drop_joins_parked_workers_promptly() {
        let pool = WorkerPool::new(8);
        pool.run(8, &|_| {});
        drop(pool); // would hang the test if shutdown were broken
    }
}
