//! **Extension:** event-driven simulation with latency, jitter and loss.
//!
//! The paper's experiments use the idealized cycle model. This engine
//! relaxes it: every node runs its own periodic timer with bounded jitter,
//! messages take a random latency to arrive, and may be lost. Exchanges are
//! no longer atomic — a node may receive requests while its own exchange is
//! in flight. The extension experiments use this engine to check that the
//! cycle-model conclusions survive asynchrony.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pss_core::{NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig, Reply, Request, View};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::population::{BoxedNode, Population};
use crate::Snapshot;

/// Message latency model, in abstract time ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LatencyModel {
    /// Instant delivery.
    Zero,
    /// Uniform latency in `[min, max]` ticks.
    Uniform {
        /// Minimum latency.
        min: u64,
        /// Maximum latency (inclusive).
        max: u64,
    },
}

impl LatencyModel {
    fn sample(self, rng: &mut impl Rng) -> u64 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.random_range(min..=max)
                }
            }
        }
    }
}

/// Parameters of the event-driven engine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventConfig {
    /// Gossip period `T` in ticks (the paper's "wait(T time units)").
    pub period: u64,
    /// Uniform timer jitter in ticks, applied as `±jitter` around the
    /// period. Must be `< period`.
    pub jitter: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Probability that any message is lost in transit.
    pub loss_probability: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            period: 1000,
            jitter: 100,
            latency: LatencyModel::Uniform { min: 10, max: 50 },
            loss_probability: 0.0,
        }
    }
}

/// Why an [`EventConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventConfigError {
    /// The period must be positive (timers could never advance otherwise).
    ZeroPeriod,
    /// `jitter` must be strictly below `period`: the timer re-arms at
    /// `period - jitter + U[0, 2·jitter]`, which for `jitter >= period`
    /// could fire at or before the current tick and stall time.
    JitterNotBelowPeriod {
        /// The offending jitter.
        jitter: u64,
        /// The configured period.
        period: u64,
    },
    /// The loss probability must lie in `[0, 1]`.
    InvalidLossProbability(f64),
}

impl std::fmt::Display for EventConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventConfigError::ZeroPeriod => write!(f, "gossip period must be positive"),
            EventConfigError::JitterNotBelowPeriod { jitter, period } => write!(
                f,
                "timer jitter ({jitter}) must be strictly below the period ({period})"
            ),
            EventConfigError::InvalidLossProbability(p) => {
                write!(f, "loss probability {p} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for EventConfigError {}

impl EventConfig {
    /// Checks the configuration invariants; constructors run this for you.
    pub fn validate(&self) -> Result<(), EventConfigError> {
        if self.period == 0 {
            return Err(EventConfigError::ZeroPeriod);
        }
        if self.jitter >= self.period {
            return Err(EventConfigError::JitterNotBelowPeriod {
                jitter: self.jitter,
                period: self.period,
            });
        }
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(EventConfigError::InvalidLossProbability(
                self.loss_probability,
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
enum EventKind {
    Timer(NodeId),
    Request {
        from: NodeId,
        to: NodeId,
        request: Request,
    },
    Reply {
        from: NodeId,
        to: NodeId,
        reply: Reply,
    },
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Discrete-event simulator over the same node population type as
/// [`crate::Simulation`].
///
/// # Examples
///
/// ```
/// use pss_core::{PolicyTriple, ProtocolConfig};
/// use pss_sim::{EventConfig, EventSimulation};
///
/// let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 20)?;
/// let mut sim = EventSimulation::new(protocol, EventConfig::default(), 7)?;
/// sim.add_connected_nodes(100);
/// sim.run_for(20_000); // ≈ 20 gossip periods
/// assert!(sim.snapshot().undirected().average_degree() > 20.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EventSimulation {
    pop: Population,
    factory: Box<dyn FnMut(NodeId, u64) -> BoxedNode + Send>,
    config: EventConfig,
    queue: BinaryHeap<Reverse<Event>>,
    now: u64,
    seq: u64,
    rng: SmallRng,
}

impl EventSimulation {
    /// Creates an empty event simulation for the paper's generic protocol.
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant
    /// (zero period, `jitter >= period`, loss probability outside `[0, 1]`).
    pub fn new(
        protocol: ProtocolConfig,
        config: EventConfig,
        seed: u64,
    ) -> Result<Self, EventConfigError> {
        Self::with_factory(config, seed, move |id, node_seed| {
            Box::new(PeerSamplingNode::with_seed(id, protocol.clone(), node_seed)) as BoxedNode
        })
    }

    /// Creates an empty event simulation with a custom node factory.
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant.
    pub fn with_factory(
        config: EventConfig,
        seed: u64,
        factory: impl FnMut(NodeId, u64) -> BoxedNode + Send + 'static,
    ) -> Result<Self, EventConfigError> {
        config.validate()?;
        Ok(EventSimulation {
            pop: Population::new(),
            factory: Box::new(factory),
            config,
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.pop.alive_count()
    }

    /// The view of a live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        self.pop.view_of(id)
    }

    /// Adds a node bootstrapped from `seeds`; its first timer fires at a
    /// uniform-random phase within one period (nodes are not synchronized).
    pub fn add_node(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) -> NodeId {
        let node_seed = self.rng.random();
        let factory = &mut self.factory;
        let id = self.pop.add_with(|id| factory(id, node_seed));
        self.pop
            .get_mut(id)
            .expect("just added")
            .node
            .init(&mut seeds.into_iter());
        let phase = self.rng.random_range(0..self.config.period);
        self.schedule(self.now + phase, EventKind::Timer(id));
        id
    }

    /// Adds `n` nodes where node `i` bootstraps off node `i − 1` (a simple
    /// connected chain, convenient for tests and examples).
    pub fn add_connected_nodes(&mut self, n: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(n);
        let mut prev: Option<NodeId> = None;
        for _ in 0..n {
            let seeds: Vec<NodeDescriptor> = prev.into_iter().map(NodeDescriptor::fresh).collect();
            let id = self.add_node(seeds);
            prev = Some(id);
            ids.push(id);
        }
        ids
    }

    /// Kills one node (crash-stop): pending deliveries to it are dropped at
    /// delivery time.
    pub fn kill(&mut self, id: NodeId) -> bool {
        self.pop.kill(id)
    }

    /// Runs until the queue is empty or simulation time exceeds `deadline`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        let mut processed = 0;
        while let Some(Reverse(event)) = self.queue.peek().map(|e| Reverse(&e.0)) {
            if event.time > deadline {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            self.now = event.time;
            self.dispatch(event.kind);
            processed += 1;
        }
        self.now = self.now.max(deadline);
        processed
    }

    /// Runs for `duration` ticks from the current time.
    pub fn run_for(&mut self, duration: u64) -> u64 {
        self.run_until(self.now.saturating_add(duration))
    }

    /// Descriptors in live views pointing at dead nodes.
    pub fn dead_link_count(&self) -> usize {
        self.pop.dead_link_count()
    }

    /// Builds the communication-graph snapshot over live nodes.
    pub fn snapshot(&self) -> Snapshot {
        self.pop.snapshot()
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn send_latency(&mut self) -> u64 {
        self.config.latency.sample(&mut self.rng)
    }

    fn lost(&mut self) -> bool {
        self.config.loss_probability > 0.0
            && self.rng.random::<f64>() < self.config.loss_probability
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Timer(id) => {
                if self.pop.is_alive(id) {
                    if let Some(exchange) = self.pop.get_mut(id).expect("alive").node.initiate() {
                        if !self.lost() {
                            let at = self.now + self.send_latency();
                            self.schedule(
                                at,
                                EventKind::Request {
                                    from: id,
                                    to: exchange.peer,
                                    request: exchange.request,
                                },
                            );
                        }
                    }
                    // Re-arm the timer with jitter regardless.
                    let jitter = if self.config.jitter == 0 {
                        0
                    } else {
                        self.rng.random_range(0..=2 * self.config.jitter)
                    };
                    let next = self.now + self.config.period - self.config.jitter + jitter;
                    self.schedule(next, EventKind::Timer(id));
                }
            }
            EventKind::Request { from, to, request } => {
                if !self.pop.is_alive(to) {
                    return;
                }
                let reply = self
                    .pop
                    .get_mut(to)
                    .expect("alive")
                    .node
                    .handle_request(from, request);
                if let Some(reply) = reply {
                    if !self.lost() {
                        let at = self.now + self.send_latency();
                        self.schedule(
                            at,
                            EventKind::Reply {
                                from: to,
                                to: from,
                                reply,
                            },
                        );
                    }
                }
            }
            EventKind::Reply { from, to, reply } => {
                if self.pop.is_alive(to) {
                    self.pop
                        .get_mut(to)
                        .expect("alive")
                        .node
                        .handle_reply(from, reply);
                }
            }
        }
    }
}

impl std::fmt::Debug for EventSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSimulation")
            .field("now", &self.now)
            .field("nodes", &self.pop.len())
            .field("alive", &self.pop.alive_count())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::PolicyTriple;

    fn protocol() -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap()
    }

    fn sim(config: EventConfig) -> EventSimulation {
        EventSimulation::new(protocol(), config, 11).expect("valid config")
    }

    #[test]
    fn latency_model_sampling() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), 0);
        for _ in 0..100 {
            let l = LatencyModel::Uniform { min: 5, max: 9 }.sample(&mut rng);
            assert!((5..=9).contains(&l));
        }
        // Degenerate range.
        assert_eq!(LatencyModel::Uniform { min: 7, max: 7 }.sample(&mut rng), 7);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let build = |config: EventConfig| EventSimulation::new(protocol(), config, 11).err();
        assert_eq!(
            build(EventConfig {
                period: 100,
                jitter: 100,
                latency: LatencyModel::Zero,
                loss_probability: 0.0,
            }),
            Some(EventConfigError::JitterNotBelowPeriod {
                jitter: 100,
                period: 100,
            })
        );
        assert_eq!(
            build(EventConfig {
                period: 0,
                jitter: 0,
                latency: LatencyModel::Zero,
                loss_probability: 0.0,
            }),
            Some(EventConfigError::ZeroPeriod)
        );
        assert_eq!(
            build(EventConfig {
                period: 100,
                jitter: 10,
                latency: LatencyModel::Zero,
                loss_probability: 1.5,
            }),
            Some(EventConfigError::InvalidLossProbability(1.5))
        );
        // Errors display a human-readable reason.
        let err = EventConfig {
            period: 50,
            jitter: 99,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("99"));
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        });
        s.add_connected_nodes(2);
        let processed = s.run_for(1000);
        // ~10 periods × 2 nodes × (timer + request + reply) events.
        assert!(processed >= 40, "only {processed} events");
        // Both learned each other.
        assert!(s.view_of(NodeId::new(0)).unwrap().contains(NodeId::new(1)));
        assert!(s.view_of(NodeId::new(1)).unwrap().contains(NodeId::new(0)));
    }

    #[test]
    fn overlay_converges_under_jitter_and_latency() {
        // View size 16: comfortably above the small-overlay connectivity
        // threshold (tiny views can genuinely partition, see Section 4.3
        // experiments).
        let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 16).unwrap();
        let mut s = EventSimulation::new(
            protocol,
            EventConfig {
                period: 1000,
                jitter: 300,
                latency: LatencyModel::Uniform { min: 10, max: 200 },
                loss_probability: 0.0,
            },
            11,
        )
        .expect("valid config");
        // Tree bootstrap (every joiner knows an introducer): a bare chain
        // can genuinely be cut into two self-reinforcing communities under
        // concurrent exchanges.
        s.add_node([]);
        for i in 1..80u64 {
            s.add_node([NodeDescriptor::fresh(NodeId::new(i / 2))]);
        }
        s.run_for(30_000);
        let g = s.snapshot().undirected();
        assert!(pss_graph::components::is_connected(&g));
        assert!(g.average_degree() > 16.0);
    }

    #[test]
    fn dead_nodes_stop_participating() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        });
        s.add_connected_nodes(3);
        s.run_for(500);
        assert!(s.kill(NodeId::new(2)));
        assert_eq!(s.alive_count(), 2);
        s.run_for(500);
        assert!(s.dead_link_count() <= 16); // bounded by views, no panic
        let snap = s.snapshot();
        assert_eq!(snap.node_count(), 2);
    }

    #[test]
    fn total_loss_freezes_view_membership() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 1.0,
        });
        s.add_connected_nodes(4);
        let ids = |s: &EventSimulation, i: u64| -> Vec<NodeId> {
            s.view_of(NodeId::new(i)).unwrap().ids().collect()
        };
        let before: Vec<_> = (0..4).map(|i| ids(&s, i)).collect();
        s.run_for(2000);
        // No message ever arrives, so nobody learns anything; views only
        // age in place.
        let after: Vec<_> = (0..4).map(|i| ids(&s, i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut s = EventSimulation::new(protocol(), EventConfig::default(), seed)
                .expect("valid config");
            s.add_connected_nodes(30);
            s.run_for(20_000);
            let g = s.snapshot().undirected();
            (g.edge_count(), g.max_degree())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        });
        s.add_connected_nodes(2);
        s.run_until(250);
        assert_eq!(s.now(), 250);
        // Events beyond the deadline remain queued.
        let more = s.run_until(1000);
        assert!(more > 0);
    }

    #[test]
    fn debug_format() {
        let s = sim(EventConfig::default());
        assert!(format!("{s:?}").contains("pending_events"));
    }
}
