//! **Extension:** event-driven simulation with latency, jitter and loss —
//! sharded across worker threads with conservative lookahead.
//!
//! The paper's experiments use the idealized cycle model. This engine
//! relaxes it: every node runs its own periodic timer with bounded jitter,
//! messages take a random latency to arrive, and may be lost. Exchanges are
//! no longer atomic — a node may receive requests while its own exchange is
//! in flight. The extension experiments use this engine to check that the
//! cycle-model conclusions survive asynchrony.
//!
//! # Execution model
//!
//! [`ShardedEventSimulation`] partitions the population into `S` shards,
//! each owning a time-ordered event queue over its own nodes. Simulated
//! time advances in **buckets** of width `W` = the minimum network latency
//! (the *conservative lookahead window* of parallel discrete-event
//! simulation): within the bucket `[t, t + W)` every shard processes its
//! local queue independently, because any message sent at or after `t`
//! arrives at `t + latency ≥ t + W` — no event generated inside the bucket
//! can affect another shard within it. Cross-shard messages accumulate in
//! fixed-order per-`(src, dst)` mailboxes ([`crate::exec`], shared with the
//! cycle engine) and are exchanged at bucket boundaries: transposed on the
//! driver, then merged into each destination queue in sender-shard order.
//!
//! # Determinism contract
//!
//! Mirrors the cycle engine's ([`crate::ShardedSimulation`]): all
//! randomness derives from the construction seed — a *control* RNG on the
//! driver (node seeds, timer phases, churn) plus one RNG per shard (timer
//! jitter, message latency and loss, drawn by the shard that owns the
//! sending node). Shards share no mutable state within a bucket, and the
//! mailbox exchange is fixed-order, so for a fixed `(seed, shard_count)`
//! results are **bit-identical at any worker count** — and invariant under
//! how a run is chunked into [`ShardedEventSimulation::run_until`] calls,
//! because mailboxes are only exchanged at absolute bucket boundaries.
//! Changing the *shard count* legitimately changes results (same-time
//! deliveries tie-break in mailbox order rather than global schedule
//! order), exactly like changing the seed does.
//!
//! The single-threaded [`EventSimulation`] is this engine with one shard:
//! every message is then shard-local, the global `(time, seq)` order is the
//! schedule order, and the mailbox machinery is never touched.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pss_core::{
    Arena, GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig, Reply, Request,
    View,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::exec::{self, lose, Directory, Mailboxes, SlotRef};
use crate::pool::WorkerPool;
use crate::population::{BoxedNode, Population};
use crate::workload::Partition;
use crate::{CycleReport, Snapshot};

/// Message latency model, in abstract time ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LatencyModel {
    /// Instant delivery.
    Zero,
    /// Uniform latency in `[min, max]` ticks.
    Uniform {
        /// Minimum latency.
        min: u64,
        /// Maximum latency (inclusive).
        max: u64,
    },
}

impl LatencyModel {
    /// Draws one message latency. Public so transports outside this crate
    /// (the `pss-net` in-memory mesh) can mirror the engine's per-message
    /// model exactly.
    pub fn sample(self, rng: &mut impl Rng) -> u64 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.random_range(min..=max)
                }
            }
        }
    }

    /// The smallest latency the model can produce — the conservative
    /// lookahead window of the sharded engine.
    pub fn minimum(self) -> u64 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Uniform { min, .. } => min,
        }
    }
}

/// Parameters of the event-driven engine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventConfig {
    /// Gossip period `T` in ticks (the paper's "wait(T time units)").
    pub period: u64,
    /// Uniform timer jitter in ticks, applied as `±jitter` around the
    /// period. Must be `< period`.
    pub jitter: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Probability that any message is lost in transit.
    pub loss_probability: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            period: 1000,
            jitter: 100,
            latency: LatencyModel::Uniform { min: 10, max: 50 },
            loss_probability: 0.0,
        }
    }
}

/// Why an [`EventConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventConfigError {
    /// The period must be positive (timers could never advance otherwise).
    ZeroPeriod,
    /// `jitter` must be strictly below `period`: the timer re-arms at
    /// `period - jitter + U[0, 2·jitter]`, which for `jitter >= period`
    /// could fire at or before the current tick and stall time.
    JitterNotBelowPeriod {
        /// The offending jitter.
        jitter: u64,
        /// The configured period.
        period: u64,
    },
    /// The loss probability must lie in `[0, 1]`.
    InvalidLossProbability(f64),
    /// Multi-shard runs need a minimum latency of at least one tick: the
    /// conservative lookahead window *is* the minimum latency, and a zero
    /// window would force shards into lock-step on every tick.
    NoLookahead {
        /// The requested shard count.
        shards: usize,
    },
}

impl std::fmt::Display for EventConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventConfigError::ZeroPeriod => write!(f, "gossip period must be positive"),
            EventConfigError::JitterNotBelowPeriod { jitter, period } => write!(
                f,
                "timer jitter ({jitter}) must be strictly below the period ({period})"
            ),
            EventConfigError::InvalidLossProbability(p) => {
                write!(f, "loss probability {p} is outside [0, 1]")
            }
            EventConfigError::NoLookahead { shards } => write!(
                f,
                "{shards}-shard event simulation needs a minimum latency of at least 1 tick \
                 (the conservative lookahead window equals the minimum latency)"
            ),
        }
    }
}

impl std::error::Error for EventConfigError {}

impl EventConfig {
    /// Checks the configuration invariants; constructors run this for you.
    pub fn validate(&self) -> Result<(), EventConfigError> {
        if self.period == 0 {
            return Err(EventConfigError::ZeroPeriod);
        }
        if self.jitter >= self.period {
            return Err(EventConfigError::JitterNotBelowPeriod {
                jitter: self.jitter,
                period: self.period,
            });
        }
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(EventConfigError::InvalidLossProbability(
                self.loss_probability,
            ));
        }
        Ok(())
    }

    /// [`EventConfig::validate`] plus the sharded-engine requirement: with
    /// more than one shard the minimum latency (= lookahead window) must be
    /// at least one tick.
    pub fn validate_sharded(&self, shards: usize) -> Result<(), EventConfigError> {
        self.validate()?;
        if shards > 1 && self.latency.minimum() == 0 {
            return Err(EventConfigError::NoLookahead { shards });
        }
        Ok(())
    }
}

/// Cumulative accounting of a ([`Sharded`](ShardedEventSimulation)`)
/// [`EventSimulation`] run — the event-engine analogue of
/// [`CycleReport`], as totals since construction rather than per cycle
/// (an "exchange" spans multiple events here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventReport {
    /// Timer events fired by live nodes.
    pub timers_fired: u64,
    /// Timer fires that could not initiate (empty view).
    pub empty_view: u64,
    /// Requests delivered to live nodes.
    pub requests_delivered: u64,
    /// Replies delivered to live nodes.
    pub replies_delivered: u64,
    /// Exchanges completed: push-only requests delivered plus replies
    /// absorbed by their initiators.
    pub exchanges_completed: u64,
    /// Messages that arrived at a dead node and were dropped.
    pub dead_deliveries: u64,
    /// Messages dropped in transit by the loss model.
    pub dropped_messages: u64,
}

impl core::ops::AddAssign for EventReport {
    fn add_assign(&mut self, rhs: EventReport) {
        self.timers_fired += rhs.timers_fired;
        self.empty_view += rhs.empty_view;
        self.requests_delivered += rhs.requests_delivered;
        self.replies_delivered += rhs.replies_delivered;
        self.exchanges_completed += rhs.exchanges_completed;
        self.dead_deliveries += rhs.dead_deliveries;
        self.dropped_messages += rhs.dropped_messages;
    }
}

impl EventReport {
    /// Field-wise difference from an earlier snapshot of the same run.
    pub fn since(&self, earlier: &EventReport) -> EventReport {
        EventReport {
            timers_fired: self.timers_fired - earlier.timers_fired,
            empty_view: self.empty_view - earlier.empty_view,
            requests_delivered: self.requests_delivered - earlier.requests_delivered,
            replies_delivered: self.replies_delivered - earlier.replies_delivered,
            exchanges_completed: self.exchanges_completed - earlier.exchanges_completed,
            dead_deliveries: self.dead_deliveries - earlier.dead_deliveries,
            dropped_messages: self.dropped_messages - earlier.dropped_messages,
        }
    }

    /// Projects the totals onto the cycle engine's report shape, so generic
    /// drivers ([`crate::Engine`]) can aggregate either engine: completed
    /// exchanges, dead deliveries as failed peers, empty views, losses.
    pub fn as_cycle_report(&self) -> CycleReport {
        CycleReport {
            completed: self.exchanges_completed,
            failed_dead_peer: self.dead_deliveries,
            empty_view: self.empty_view,
            dropped_messages: self.dropped_messages,
        }
    }
}

/// One recorded message arrival, for the delivery-order test harness (see
/// [`ShardedEventSimulation::set_record_deliveries`]). Records are kept in
/// per-shard processing order; [`ShardedEventSimulation::take_deliveries`]
/// concatenates them in shard order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the message was sent.
    pub sent: u64,
    /// When it arrived (event time).
    pub delivered: u64,
    /// Sending node.
    pub from: NodeId,
    /// Destination node (dead targets are recorded too — the arrival
    /// happened, the payload was dropped).
    pub to: NodeId,
    /// Shard of the sender.
    pub src_shard: u32,
    /// Shard of the destination.
    pub dst_shard: u32,
    /// The sender shard's monotone event sequence at send time: within one
    /// `(src, dst)` pair, send order.
    pub sent_seq: u64,
    /// True for requests, false for replies.
    pub is_request: bool,
}

/// A pending event in a shard's local queue.
struct Event {
    time: u64,
    /// Tie-breaker for equal times: local schedule order.
    seq: u64,
    kind: EventKind,
}

enum EventKind {
    /// A node's gossip timer (local slot).
    Timer(u32),
    /// A request arriving at local slot `to_slot`.
    Request {
        from: NodeId,
        to_slot: u32,
        sent: u64,
        sent_seq: u64,
        src_shard: u32,
        request: Request,
    },
    /// A reply arriving at local slot `to_slot`.
    Reply {
        from: NodeId,
        to_slot: u32,
        sent: u64,
        sent_seq: u64,
        src_shard: u32,
        reply: Reply,
    },
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A message crossing a shard boundary, parked in a mailbox lane until the
/// bucket ends. Lane index gives the destination; the sender shard is the
/// lane it sits in after transposition.
struct WireEvent {
    time: u64,
    sent: u64,
    sent_seq: u64,
    from: NodeId,
    to_slot: u32,
    msg: WireMsg,
}

enum WireMsg {
    Request(Request),
    Reply(Reply),
}

/// Upper bound on recycled payload buffers pooled per shard arena; beyond
/// this, spent buffers are dropped. Sized to cover the in-flight payload
/// demand of large-c, high-loss runs without letting a transient spike pin
/// memory.
const PAYLOAD_POOL_LIMIT: usize = 1024;

/// One shard of the event engine: a node partition, its local event queue,
/// its RNG stream, and its cross-shard mailboxes.
struct EventShard<N> {
    index: usize,
    pop: Population<N>,
    /// Shard-owned staging arena. Every protocol call on this shard's nodes
    /// works out of it: absorbed payload buffers are parked in its pool and
    /// reused for outgoing messages. Sends and receives balance per shard
    /// in steady state, so ownership replaces the cross-shard
    /// capacity-return lanes earlier revisions needed when the pool was
    /// tied to short-lived worker threads.
    arena: Arena,
    /// Shard-local RNG: timer jitter, message latency, message loss.
    rng: SmallRng,
    queue: BinaryHeap<Reverse<Event>>,
    /// Monotone event sequence; tie-breaks equal times, orders sends.
    seq: u64,
    mail: Mailboxes<WireEvent>,
    report: EventReport,
    /// Events processed by this shard (monotone).
    processed: u64,
    /// Arrival log, filled only when tracing is on.
    deliveries: Vec<Delivery>,
    trace: bool,
}

impl<N> EventShard<N> {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq();
        self.queue.push(Reverse(Event { time, seq, kind }));
    }
}

/// Read-only context shared by all workers during a bucket.
struct EventCtx<'a> {
    directory: &'a [SlotRef],
    config: EventConfig,
    partition: Option<Partition>,
}

/// The sharded discrete-event simulator over the same node population
/// types as [`crate::ShardedSimulation`]. See the [module docs](self) for
/// the lookahead model and determinism contract.
///
/// # Examples
///
/// ```
/// use pss_core::{PolicyTriple, ProtocolConfig};
/// use pss_sim::{EventConfig, ShardedEventSimulation};
///
/// let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 20)?;
/// let mut sim = ShardedEventSimulation::new(protocol, EventConfig::default(), 7, 2)?;
/// sim.add_connected_nodes(100);
/// sim.run_for(20_000); // ≈ 20 gossip periods
/// assert!(sim.snapshot().undirected().average_degree() > 20.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardedEventSimulation<N: GossipNode + Send = BoxedNode> {
    shards: Vec<EventShard<N>>,
    dir: Directory,
    factory: Box<dyn Fn(NodeId, u64) -> N + Send + Sync>,
    /// Driver-thread RNG: node seeds, timer phases, churn.
    control_rng: SmallRng,
    config: EventConfig,
    /// Conservative lookahead window = minimum latency (≥ 1 when sharded).
    window: u64,
    /// Current simulation time: the largest deadline reached so far.
    now: u64,
    /// Processing frontier: every event *strictly before* it has been
    /// processed. Advances bucket-by-bucket; the bucket grid is absolute
    /// (multiples of the window), which is what makes results invariant
    /// under how a run is chunked into `run_until` calls.
    frontier: u64,
    /// Construction seed, kept for (seed, id)-pure bulk construction.
    seed: u64,
    /// Persistent bucket executor: threads live as long as the simulation.
    pool: WorkerPool,
    /// True while cross-shard messages are parked in out-lanes mid-bucket.
    pending_mail: bool,
    /// Completed [`ShardedEventSimulation::run_cycle`] calls.
    cycles: u64,
    /// Installed partition loss matrix, if any.
    partition: Option<Partition>,
    /// Phase/imbalance telemetry (`engine="event"`); purely observational.
    tele: crate::telemetry::EngineTele,
}

impl ShardedEventSimulation {
    /// Creates an empty sharded event simulation for the paper's generic
    /// protocol with (boxed) nodes.
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant
    /// (zero period, `jitter >= period`, loss probability outside `[0, 1]`,
    /// or zero minimum latency with more than one shard).
    pub fn new(
        protocol: ProtocolConfig,
        config: EventConfig,
        seed: u64,
        shards: usize,
    ) -> Result<Self, EventConfigError> {
        Self::with_factory(config, seed, shards, move |id, node_seed| {
            Box::new(PeerSamplingNode::with_seed(id, protocol.clone(), node_seed)) as BoxedNode
        })
    }
}

impl ShardedEventSimulation<PeerSamplingNode> {
    /// Creates an empty **monomorphized** sharded event simulation of
    /// [`PeerSamplingNode`]s: identical behavior to
    /// [`ShardedEventSimulation::new`] (same seeds ⇒ same events), minus
    /// the virtual dispatch.
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant.
    pub fn typed(
        protocol: ProtocolConfig,
        config: EventConfig,
        seed: u64,
        shards: usize,
    ) -> Result<Self, EventConfigError> {
        Self::with_factory(config, seed, shards, move |id, node_seed| {
            PeerSamplingNode::with_seed(id, protocol.clone(), node_seed)
        })
    }
}

impl<N: GossipNode + Send> ShardedEventSimulation<N> {
    /// Creates an empty sharded event simulation with a custom node
    /// factory. The factory receives the assigned node id and a derived RNG
    /// seed; it must be `Fn + Sync` so per-shard populations can be built
    /// in parallel ([`ShardedEventSimulation::add_nodes_bulk`]).
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_factory(
        config: EventConfig,
        seed: u64,
        shards: usize,
        factory: impl Fn(NodeId, u64) -> N + Send + Sync + 'static,
    ) -> Result<Self, EventConfigError> {
        assert!(shards > 0, "need at least one shard");
        config.validate_sharded(shards)?;
        let tele = crate::telemetry::EngineTele::new("event", &["process", "merge"], shards);
        let default_workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(shards);
        let shards: Vec<EventShard<N>> = (0..shards)
            .map(|index| EventShard {
                index,
                pop: Population::new(),
                arena: Arena::with_pool_limit(PAYLOAD_POOL_LIMIT),
                rng: SmallRng::seed_from_u64(exec::shard_seed(seed, index)),
                queue: BinaryHeap::new(),
                seq: 0,
                mail: Mailboxes::new(shards),
                report: EventReport::default(),
                processed: 0,
                deliveries: Vec::new(),
                trace: false,
            })
            .collect();
        Ok(ShardedEventSimulation {
            shards,
            dir: Directory::new(),
            factory: Box::new(factory),
            control_rng: SmallRng::seed_from_u64(seed),
            config,
            window: config.latency.minimum().max(1),
            now: 0,
            frontier: 0,
            seed,
            pool: WorkerPool::new(default_workers),
            pending_mail: false,
            cycles: 0,
            partition: None,
            tele,
        })
    }

    /// Number of shards (fixed at construction; part of the result
    /// contract, unlike the worker count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used per bucket.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Sets the worker-thread count (clamped to `1..=shard_count`),
    /// rebuilding the persistent pool. Affects wall-clock time only;
    /// results are bit-identical for any value.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.clamp(1, self.shards.len());
        if workers != self.pool.workers() {
            self.pool = WorkerPool::new(workers);
        }
    }

    /// The conservative lookahead window in ticks (= the minimum latency,
    /// at least 1).
    pub fn lookahead(&self) -> u64 {
        self.window
    }

    /// The engine configuration.
    pub fn config(&self) -> EventConfig {
        self.config
    }

    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cumulative event statistics since construction.
    pub fn report(&self) -> EventReport {
        let mut total = EventReport::default();
        for shard in &self.shards {
            total += shard.report;
        }
        total
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Recycled payload buffers currently pooled across all shard arenas —
    /// a pooling diagnostic.
    pub fn pooled_payloads(&self) -> usize {
        self.shards.iter().map(|s| s.arena.pooled_buffers()).sum()
    }

    /// Installs (`Some`) or lifts (`None`) a partition loss matrix
    /// ([`Partition`]): messages whose sender and destination sit in
    /// different groups are dropped at send time (before any latency draw),
    /// counted as [`EventReport::dropped_messages`]. Messages already in
    /// flight still deliver — a partition cuts links, it does not reach
    /// into the network and destroy packets. The check is a pure function
    /// of the two ids, so the worker-invariance contract is unaffected.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        self.partition = partition;
    }

    /// Turns the per-arrival delivery log on or off (off by default; the
    /// log grows with every message arrival). The test harness uses it to
    /// check the lookahead and FIFO invariants from outside.
    pub fn set_record_deliveries(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.trace = on;
        }
    }

    /// Drains the delivery log: per-shard arrival order, concatenated in
    /// shard order.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            all.append(&mut shard.deliveries);
        }
        all
    }

    /// Declares that the next `n` node ids will be bulk-added into
    /// contiguous per-shard ranges; see
    /// [`crate::ShardedSimulation::plan_capacity`].
    ///
    /// # Panics
    ///
    /// Panics if nodes were already added.
    pub fn plan_capacity(&mut self, n: usize) {
        self.dir.plan_capacity(n);
    }

    fn shard_for_new(&self, id: u64) -> usize {
        self.dir
            .shard_for_new(id, self.shards.iter().map(|sh| sh.pop.len()))
    }

    /// Adds a node bootstrapped from `seeds`; its first timer fires at a
    /// uniform-random phase within one period (nodes are not synchronized).
    /// Node seed and phase come from the driver's control RNG; for the
    /// worker-parallel bulk path see
    /// [`ShardedEventSimulation::add_nodes_bulk`].
    pub fn add_node(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) -> NodeId {
        let node_seed = self.control_rng.random();
        let id = NodeId::new(self.dir.len() as u64);
        let shard = self.shard_for_new(id.as_u64());
        let node = (self.factory)(id, node_seed);
        debug_assert_eq!(node.id(), id, "factory must honor the assigned id");
        let slot = self.shards[shard].pop.add_slot(node);
        let pushed = self.dir.push(shard as u32, slot);
        debug_assert_eq!(pushed, id);
        self.shards[shard]
            .pop
            .slot_mut(slot)
            .node
            .init(&mut seeds.into_iter());
        let phase = self.control_rng.random_range(0..self.config.period);
        // Never schedule below the processing frontier: a bucket that was
        // already exchanged is frozen, and a timer inside it could emit a
        // cross-shard message due before the next boundary (a lookahead
        // violation). Only a phase-0 draw right after a run can hit this.
        let at = (self.now + phase).max(self.frontier);
        self.shards[shard].schedule(at, EventKind::Timer(slot));
        id
    }

    /// Bulk-adds `n` nodes with **worker-parallel per-shard construction**:
    /// node `i` gets the view returned by `seeds(i)`, and its RNG seed,
    /// shard placement and initial timer phase are pure functions of
    /// `(construction seed, id)` — the resulting population and event
    /// schedule are bit-identical at any worker count. `seeds` must be pure
    /// for the same reason.
    ///
    /// # Panics
    ///
    /// Panics if nodes were already added.
    pub fn add_nodes_bulk<I>(&mut self, n: usize, seeds: impl Fn(NodeId) -> I + Sync)
    where
        I: IntoIterator<Item = NodeDescriptor>,
    {
        let seed = self.seed;
        let period = self.config.period;
        let now = self.now;
        let frontier = self.frontier;
        exec::bulk_build(
            &mut self.dir,
            &mut self.shards,
            &self.pool,
            n,
            seed,
            self.factory.as_ref(),
            seeds,
            |shard| &mut shard.pop,
            |shard| shard.index,
            |shard, slot, id| {
                let phase = exec::bulk_timer_phase(seed, id.as_u64(), period);
                // Clamp below-frontier phases exactly like `add_node`.
                let at = (now + phase).max(frontier);
                shard.schedule(at, EventKind::Timer(slot));
            },
        );
    }

    /// Adds `n` nodes where node `i` bootstraps off node `i − 1` (a simple
    /// connected chain, convenient for tests and examples).
    pub fn add_connected_nodes(&mut self, n: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(n);
        let mut prev: Option<NodeId> = None;
        for _ in 0..n {
            let seeds: Vec<NodeDescriptor> = prev.into_iter().map(NodeDescriptor::fresh).collect();
            let id = self.add_node(seeds);
            prev = Some(id);
            ids.push(id);
        }
        ids
    }

    /// Adds `count` nodes, each bootstrapped with `contacts` uniform-random
    /// live contacts (join under churn); see
    /// [`crate::ShardedSimulation::add_nodes_with_random_contacts`].
    pub fn add_nodes_with_random_contacts(&mut self, count: usize, contacts: usize) -> Vec<NodeId> {
        let existing: Vec<NodeId> = self.alive_ids();
        let mut new_ids = Vec::with_capacity(count);
        for _ in 0..count {
            let seeds: Vec<NodeDescriptor> = if existing.is_empty() {
                Vec::new()
            } else {
                (0..contacts)
                    .map(|_| {
                        let pick = existing[self.control_rng.random_range(0..existing.len())];
                        NodeDescriptor::fresh(pick)
                    })
                    .collect()
            };
            new_ids.push(self.add_node(seeds));
        }
        new_ids
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.dir.alive_count()
    }

    /// Total nodes ever added (dead ones included).
    pub fn node_count(&self) -> usize {
        self.dir.len()
    }

    /// True if `id` exists and is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.dir.is_alive(id)
    }

    /// Ids of all live nodes, in increasing order.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.dir.alive_ids()
    }

    fn entry(&self, id: NodeId) -> Option<&crate::population::Entry<N>> {
        let slot_ref = self.dir.slot_ref(id)?;
        Some(self.shards[slot_ref.shard as usize].pop.slot(slot_ref.slot))
    }

    /// The view of a live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        if !self.is_alive(id) {
            return None;
        }
        self.entry(id).map(|e| e.node.view())
    }

    /// Kills one node (crash-stop): pending deliveries to it are dropped at
    /// delivery time, and its timer never re-arms. Returns false if already
    /// dead/unknown.
    pub fn kill(&mut self, id: NodeId) -> bool {
        exec::kill_node(&mut self.dir, &mut self.shards, id, |shard| &mut shard.pop)
    }

    /// Kills a uniform-random set of `count` live nodes and returns them.
    pub fn kill_random(&mut self, count: usize) -> Vec<NodeId> {
        use rand::seq::SliceRandom;
        let mut alive: Vec<NodeId> = self.alive_ids();
        let count = count.min(alive.len());
        let (victims, _) = alive.partial_shuffle(&mut self.control_rng, count);
        let victims = victims.to_vec();
        for &v in &victims {
            self.kill(v);
        }
        victims
    }

    /// Kills `fraction` (0..=1) of the live population at random.
    pub fn kill_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let fraction = fraction.clamp(0.0, 1.0);
        let count = (self.alive_count() as f64 * fraction).round() as usize;
        self.kill_random(count)
    }

    /// Descriptors in live views pointing at dead nodes.
    pub fn dead_link_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.pop.dead_link_count_with(|id| self.is_alive(id)))
            .sum()
    }

    /// Builds the communication-graph snapshot over live nodes, in global
    /// id order.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::build(
            (0..self.dir.len() as u64)
                .map(NodeId::new)
                .filter(|&id| self.is_alive(id))
                .map(|id| (id, self.entry(id).expect("in directory").node.view())),
            |id| self.is_alive(id),
        )
    }

    /// Visits every live node's `(id, view)` in increasing id order.
    pub fn for_each_live_view(&self, mut f: impl FnMut(NodeId, &View)) {
        for id in (0..self.dir.len() as u64).map(NodeId::new) {
            if self.is_alive(id) {
                f(id, self.entry(id).expect("in directory").node.view());
            }
        }
    }

    /// Builds the directed live-view graph as a flat CSR — the snapshot
    /// path that survives N = 10⁶ (see
    /// [`crate::ShardedSimulation::csr_snapshot`]).
    pub fn csr_snapshot(&self) -> crate::CsrSnapshot {
        exec::csr_from_views(self.dir.len(), self.dir.alive_count(), |f| {
            self.for_each_live_view(f)
        })
    }

    /// Estimates overlay health by streaming view rows — the O(id-space)
    /// alternative to materializing [`ShardedEventSimulation::csr_snapshot`]'s
    /// edge arrays at very large N (see [`crate::StreamingMetrics`]).
    pub fn streaming_metrics(&self) -> crate::StreamingMetrics {
        crate::StreamingMetrics::from_views(self.dir.len(), |f| self.for_each_live_view(f))
    }

    /// Runs until simulation time reaches `deadline`: every event at or
    /// before it is processed. Returns the number of events processed.
    ///
    /// How a run is chunked into `run_until` calls never changes results:
    /// cross-shard messages are exchanged only at absolute bucket
    /// boundaries (multiples of the lookahead window), so a partial bucket
    /// parks them in their fixed-order lanes until the bucket completes.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        let before = self.events_processed();
        let Self {
            shards,
            dir,
            config,
            window,
            frontier,
            pool,
            pending_mail,
            partition,
            tele,
            ..
        } = self;
        let ctx = EventCtx {
            directory: dir.slots(),
            config: *config,
            partition: *partition,
        };

        if shards.len() == 1 {
            // Sequential special case: every message is local, the global
            // (time, seq) order is the schedule order, buckets are moot.
            if *frontier <= deadline {
                tele.time_solo(0, || process_until(&mut shards[0], deadline, &ctx));
                *frontier = deadline.saturating_add(1);
            }
            self.now = self.now.max(deadline);
            return self.events_processed() - before;
        }

        let window = *window;
        while *frontier <= deadline {
            // The next absolute bucket boundary past the frontier. Near
            // u64::MAX there is none (run-to-exhaustion calls saturate the
            // frontier); whatever remains is one final partial bucket.
            let bucket_end = (*frontier / window)
                .checked_add(1)
                .and_then(|k| k.checked_mul(window));
            let full = bucket_end.is_some_and(|end| end - 1 <= deadline);
            if !*pending_mail {
                // Fast-forward across empty stretches: with no parked mail,
                // every pending event sits in some shard's queue.
                match earliest(shards) {
                    None => {
                        *frontier = deadline.saturating_add(1);
                        break;
                    }
                    Some(t) if t > deadline => {
                        *frontier = deadline.saturating_add(1);
                        break;
                    }
                    Some(t) if bucket_end.is_some_and(|end| t >= end) => {
                        *frontier = (t / window) * window;
                        continue;
                    }
                    _ => {}
                }
            }
            let limit = match bucket_end {
                Some(end) if full => end - 1,
                _ => deadline,
            };
            // Per-bucket phases go to the histograms only (`trail: false`):
            // buckets are far too frequent for the flight ring; the period
            // driver records the trail events instead.
            let index = |shard: &EventShard<N>| shard.index;
            tele.run_phase(0, None, shards, pool, index, |shard| {
                process_until(shard, limit, &ctx);
            });
            if full {
                let end = bucket_end.expect("full implies a boundary");
                // Bucket boundary: exchange mailboxes and merge, in fixed
                // sender-shard order.
                exec::transpose(shards, |shard| &mut shard.mail);
                tele.run_phase(1, None, shards, pool, index, |shard| {
                    merge_inbox(shard, end)
                });
                *pending_mail = false;
                *frontier = end;
            } else {
                // Mid-bucket stop: cross-shard messages stay parked in
                // their fixed-order lanes until the bucket completes, so
                // chunked and unchunked runs merge them identically.
                *pending_mail = !shards.iter().all(|s| s.mail.out_is_empty());
                *frontier = deadline.saturating_add(1);
                break;
            }
        }
        self.now = self.now.max(deadline);
        self.events_processed() - before
    }

    /// Runs for `duration` ticks from the current time.
    pub fn run_for(&mut self, duration: u64) -> u64 {
        self.run_until(self.now.saturating_add(duration))
    }

    /// Runs one gossip period — the event engine's notion of a "cycle" for
    /// generic drivers ([`crate::Engine`]) — and reports what happened
    /// during it, projected onto the cycle engine's report shape.
    pub fn run_cycle(&mut self) -> CycleReport {
        let before = self.report();
        if pss_telemetry::enabled() {
            pss_telemetry::flight().record(
                pss_telemetry::EventKind::PhaseStart,
                "event/period",
                self.cycles + 1,
                0,
            );
            let started = std::time::Instant::now();
            self.run_for(self.config.period);
            pss_telemetry::flight().record(
                pss_telemetry::EventKind::PhaseEnd,
                "event/period",
                self.cycles + 1,
                started.elapsed().as_nanos() as u64,
            );
        } else {
            self.run_for(self.config.period);
        }
        self.cycles += 1;
        self.tele.cycle_done();
        self.report().since(&before).as_cycle_report()
    }

    /// Completed [`ShardedEventSimulation::run_cycle`] periods.
    pub fn cycle(&self) -> u64 {
        self.cycles
    }
}

/// Smallest pending event time across all shard queues.
fn earliest<N>(shards: &[EventShard<N>]) -> Option<u64> {
    shards
        .iter()
        .filter_map(|s| s.queue.peek().map(|Reverse(e)| e.time))
        .min()
}

/// Merges a shard's freshly transposed inbox into its event queue, in
/// sender-shard lane order (FIFO within each lane): the deterministic
/// cross-shard arrival order of the engine's contract.
fn merge_inbox<N: GossipNode + Send>(shard: &mut EventShard<N>, horizon: u64) {
    let mut inbox = core::mem::take(&mut shard.mail.inbox);
    for (src_shard, lane) in inbox.iter_mut().enumerate() {
        for wire in lane.drain(..) {
            debug_assert!(
                wire.time >= horizon,
                "lookahead violation: cross-shard message for t={} merged at horizon {}",
                wire.time,
                horizon
            );
            let kind = match wire.msg {
                WireMsg::Request(request) => EventKind::Request {
                    from: wire.from,
                    to_slot: wire.to_slot,
                    sent: wire.sent,
                    sent_seq: wire.sent_seq,
                    src_shard: src_shard as u32,
                    request,
                },
                WireMsg::Reply(reply) => EventKind::Reply {
                    from: wire.from,
                    to_slot: wire.to_slot,
                    sent: wire.sent,
                    sent_seq: wire.sent_seq,
                    src_shard: src_shard as u32,
                    reply,
                },
            };
            shard.schedule(wire.time, kind);
        }
    }
    shard.mail.inbox = inbox;
}

/// Processes every event with `time <= limit` in this shard's queue, in
/// `(time, seq)` order. New local events (timers, same-shard messages) go
/// back into the queue; cross-shard messages park in the out-mailboxes.
fn process_until<N: GossipNode + Send>(shard: &mut EventShard<N>, limit: u64, ctx: &EventCtx<'_>) {
    while let Some(Reverse(head)) = shard.queue.peek() {
        if head.time > limit {
            break;
        }
        let Reverse(event) = shard.queue.pop().expect("peeked");
        shard.processed += 1;
        dispatch(shard, event, ctx);
    }
}

fn dispatch<N: GossipNode + Send>(shard: &mut EventShard<N>, event: Event, ctx: &EventCtx<'_>) {
    let now = event.time;
    match event.kind {
        EventKind::Timer(slot) => {
            // Dead nodes stop participating: no exchange, no re-arm.
            if !shard.pop.slot(slot).alive {
                return;
            }
            shard.report.timers_fired += 1;
            let entry = shard.pop.slot_mut(slot);
            let initiator = entry.node.id();
            match entry.node.initiate(&mut shard.arena) {
                Some(exchange) => {
                    if lose(&mut shard.rng, ctx.config.loss_probability) {
                        shard.report.dropped_messages += 1;
                    } else {
                        let peer = exchange.peer;
                        send(
                            shard,
                            ctx,
                            now,
                            initiator,
                            peer,
                            WireMsg::Request(exchange.request),
                        );
                    }
                }
                None => shard.report.empty_view += 1,
            }
            // Re-arm the timer with jitter regardless.
            let jitter = if ctx.config.jitter == 0 {
                0
            } else {
                shard.rng.random_range(0..=2 * ctx.config.jitter)
            };
            let next = now + ctx.config.period - ctx.config.jitter + jitter;
            shard.schedule(next, EventKind::Timer(slot));
        }
        EventKind::Request {
            from,
            to_slot,
            sent,
            sent_seq,
            src_shard,
            request,
        } => {
            record_delivery(shard, sent, now, from, to_slot, src_shard, sent_seq, true);
            if !shard.pop.slot(to_slot).alive {
                shard.report.dead_deliveries += 1;
                return;
            }
            shard.report.requests_delivered += 1;
            // The reply (if any) builds from the shard arena's pool; the
            // spent request buffer is recycled into the same pool by the
            // node's absorb, whichever shard it was allocated on.
            let responder = shard.pop.slot_mut(to_slot);
            let responder_id = responder.node.id();
            match responder
                .node
                .handle_request(&mut shard.arena, from, request)
            {
                Some(reply) => {
                    if lose(&mut shard.rng, ctx.config.loss_probability) {
                        shard.report.dropped_messages += 1;
                    } else {
                        send(shard, ctx, now, responder_id, from, WireMsg::Reply(reply));
                    }
                }
                // Push-only exchange: complete on request delivery.
                None => shard.report.exchanges_completed += 1,
            }
        }
        EventKind::Reply {
            from,
            to_slot,
            sent,
            sent_seq,
            src_shard,
            reply,
        } => {
            record_delivery(shard, sent, now, from, to_slot, src_shard, sent_seq, false);
            if !shard.pop.slot(to_slot).alive {
                shard.report.dead_deliveries += 1;
                return;
            }
            shard
                .pop
                .slot_mut(to_slot)
                .node
                .handle_reply(&mut shard.arena, from, reply);
            shard.report.replies_delivered += 1;
            shard.report.exchanges_completed += 1;
        }
    }
}

/// Sends `msg` from `from` (on `shard`) to `to`, drawing the latency from
/// the sender shard's RNG: local destinations go straight into the queue,
/// remote ones park in the out-mailbox lane until the bucket ends.
#[allow(clippy::too_many_arguments)]
fn send<N: GossipNode + Send>(
    shard: &mut EventShard<N>,
    ctx: &EventCtx<'_>,
    now: u64,
    from: NodeId,
    to: NodeId,
    msg: WireMsg,
) {
    // Partition loss matrix: decided before the latency draw, so a
    // totally-partitioned run consumes no RNG for traffic that never
    // leaves (lossy matrices draw once per cross-group message, from the
    // sender shard's stream — still worker-count invariant). Requests and
    // replies both pass through here, so asymmetric matrices apply their
    // per-direction loss naturally.
    if ctx
        .partition
        .is_some_and(|p| p.drops(from, to, &mut shard.rng))
    {
        shard.report.dropped_messages += 1;
        return;
    }
    let latency = ctx.config.latency.sample(&mut shard.rng);
    let at = now + latency;
    let sent_seq = shard.next_seq();
    let dest = ctx.directory[to.as_index()];
    if dest.shard as usize == shard.index {
        let src_shard = shard.index as u32;
        let kind = match msg {
            WireMsg::Request(request) => EventKind::Request {
                from,
                to_slot: dest.slot,
                sent: now,
                sent_seq,
                src_shard,
                request,
            },
            WireMsg::Reply(reply) => EventKind::Reply {
                from,
                to_slot: dest.slot,
                sent: now,
                sent_seq,
                src_shard,
                reply,
            },
        };
        shard.schedule(at, kind);
    } else {
        shard.mail.out[dest.shard as usize].push(WireEvent {
            time: at,
            sent: now,
            sent_seq,
            from,
            to_slot: dest.slot,
            msg,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn record_delivery<N: GossipNode + Send>(
    shard: &mut EventShard<N>,
    sent: u64,
    delivered: u64,
    from: NodeId,
    to_slot: u32,
    src_shard: u32,
    sent_seq: u64,
    is_request: bool,
) {
    if !shard.trace {
        return;
    }
    let to = shard.pop.slot(to_slot).node.id();
    shard.deliveries.push(Delivery {
        sent,
        delivered,
        from,
        to,
        src_shard,
        dst_shard: shard.index as u32,
        sent_seq,
        is_request,
    });
}

impl<N: GossipNode + Send> std::fmt::Debug for ShardedEventSimulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEventSimulation")
            .field("now", &self.now)
            .field("shards", &self.shards.len())
            .field("workers", &self.pool.workers())
            .field("lookahead", &self.window)
            .field("nodes", &self.dir.len())
            .field("alive", &self.dir.alive_count())
            .field(
                "pending_events",
                &self.shards.iter().map(|s| s.queue.len()).sum::<usize>(),
            )
            .finish()
    }
}

/// The single-threaded discrete-event simulator over boxed nodes — the
/// 1-shard special case of [`ShardedEventSimulation`], keeping the
/// historical API (exactly as [`crate::Simulation`] wraps
/// [`crate::ShardedSimulation`]).
///
/// # Examples
///
/// ```
/// use pss_core::{PolicyTriple, ProtocolConfig};
/// use pss_sim::{EventConfig, EventSimulation};
///
/// let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 20)?;
/// let mut sim = EventSimulation::new(protocol, EventConfig::default(), 7)?;
/// sim.add_connected_nodes(100);
/// sim.run_for(20_000); // ≈ 20 gossip periods
/// assert!(sim.snapshot().undirected().average_degree() > 20.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EventSimulation {
    inner: ShardedEventSimulation<BoxedNode>,
}

impl EventSimulation {
    /// Creates an empty event simulation for the paper's generic protocol.
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant
    /// (zero period, `jitter >= period`, loss probability outside `[0, 1]`).
    pub fn new(
        protocol: ProtocolConfig,
        config: EventConfig,
        seed: u64,
    ) -> Result<Self, EventConfigError> {
        Ok(EventSimulation {
            inner: ShardedEventSimulation::new(protocol, config, seed, 1)?,
        })
    }

    /// Creates an empty event simulation with a custom node factory.
    ///
    /// # Errors
    ///
    /// Returns an [`EventConfigError`] if `config` violates an invariant.
    pub fn with_factory(
        config: EventConfig,
        seed: u64,
        factory: impl Fn(NodeId, u64) -> BoxedNode + Send + Sync + 'static,
    ) -> Result<Self, EventConfigError> {
        Ok(EventSimulation {
            inner: ShardedEventSimulation::with_factory(config, seed, 1, factory)?,
        })
    }

    /// The underlying sharded engine (always one shard).
    pub fn as_sharded(&self) -> &ShardedEventSimulation<BoxedNode> {
        &self.inner
    }

    /// Mutable access to the underlying 1-shard engine (e.g. for the
    /// delivery log).
    pub fn as_sharded_mut(&mut self) -> &mut ShardedEventSimulation<BoxedNode> {
        &mut self.inner
    }

    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.inner.now()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.inner.alive_count()
    }

    /// The view of a live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        self.inner.view_of(id)
    }

    /// Adds a node bootstrapped from `seeds`; its first timer fires at a
    /// uniform-random phase within one period (nodes are not synchronized).
    pub fn add_node(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) -> NodeId {
        self.inner.add_node(seeds)
    }

    /// Adds `n` nodes where node `i` bootstraps off node `i − 1` (a simple
    /// connected chain, convenient for tests and examples).
    pub fn add_connected_nodes(&mut self, n: usize) -> Vec<NodeId> {
        self.inner.add_connected_nodes(n)
    }

    /// Kills one node (crash-stop): pending deliveries to it are dropped at
    /// delivery time.
    pub fn kill(&mut self, id: NodeId) -> bool {
        self.inner.kill(id)
    }

    /// Installs (`Some`) or lifts (`None`) a partition loss matrix; see
    /// [`ShardedEventSimulation::set_partition`].
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        self.inner.set_partition(partition);
    }

    /// Runs until simulation time reaches `deadline`, processing every
    /// event at or before it. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        self.inner.run_until(deadline)
    }

    /// Runs for `duration` ticks from the current time.
    pub fn run_for(&mut self, duration: u64) -> u64 {
        self.inner.run_for(duration)
    }

    /// Cumulative event statistics since construction.
    pub fn report(&self) -> EventReport {
        self.inner.report()
    }

    /// Descriptors in live views pointing at dead nodes.
    pub fn dead_link_count(&self) -> usize {
        self.inner.dead_link_count()
    }

    /// Builds the communication-graph snapshot over live nodes.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }
}

impl std::fmt::Debug for EventSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSimulation")
            .field("now", &self.inner.now())
            .field("nodes", &self.inner.node_count())
            .field("alive", &self.inner.alive_count())
            .field(
                "pending_events",
                &self
                    .inner
                    .shards
                    .iter()
                    .map(|s| s.queue.len())
                    .sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::PolicyTriple;

    fn protocol() -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap()
    }

    fn sim(config: EventConfig) -> EventSimulation {
        EventSimulation::new(protocol(), config, 11).expect("valid config")
    }

    #[test]
    fn latency_model_sampling() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), 0);
        for _ in 0..100 {
            let l = LatencyModel::Uniform { min: 5, max: 9 }.sample(&mut rng);
            assert!((5..=9).contains(&l));
        }
        // Degenerate range.
        assert_eq!(LatencyModel::Uniform { min: 7, max: 7 }.sample(&mut rng), 7);
        assert_eq!(LatencyModel::Zero.minimum(), 0);
        assert_eq!(LatencyModel::Uniform { min: 3, max: 9 }.minimum(), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let build = |config: EventConfig| EventSimulation::new(protocol(), config, 11).err();
        assert_eq!(
            build(EventConfig {
                period: 100,
                jitter: 100,
                latency: LatencyModel::Zero,
                loss_probability: 0.0,
            }),
            Some(EventConfigError::JitterNotBelowPeriod {
                jitter: 100,
                period: 100,
            })
        );
        assert_eq!(
            build(EventConfig {
                period: 0,
                jitter: 0,
                latency: LatencyModel::Zero,
                loss_probability: 0.0,
            }),
            Some(EventConfigError::ZeroPeriod)
        );
        assert_eq!(
            build(EventConfig {
                period: 100,
                jitter: 10,
                latency: LatencyModel::Zero,
                loss_probability: 1.5,
            }),
            Some(EventConfigError::InvalidLossProbability(1.5))
        );
        // Errors display a human-readable reason.
        let err = EventConfig {
            period: 50,
            jitter: 99,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("99"));
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn multi_shard_requires_lookahead() {
        // Zero minimum latency is fine sequentially...
        let config = EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        };
        assert!(EventSimulation::new(protocol(), config, 1).is_ok());
        // ...but has no lookahead window to run shards concurrently under.
        assert_eq!(
            ShardedEventSimulation::new(protocol(), config, 1, 2).err(),
            Some(EventConfigError::NoLookahead { shards: 2 })
        );
        let err = config.validate_sharded(4).unwrap_err();
        assert!(err.to_string().contains("lookahead"));
        // A positive minimum restores it.
        let ok = EventConfig {
            latency: LatencyModel::Uniform { min: 1, max: 4 },
            ..config
        };
        assert!(ShardedEventSimulation::new(protocol(), ok, 1, 2).is_ok());
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        });
        s.add_connected_nodes(2);
        let processed = s.run_for(1000);
        // ~10 periods × 2 nodes × (timer + request + reply) events.
        assert!(processed >= 40, "only {processed} events");
        // Both learned each other.
        assert!(s.view_of(NodeId::new(0)).unwrap().contains(NodeId::new(1)));
        assert!(s.view_of(NodeId::new(1)).unwrap().contains(NodeId::new(0)));
        let report = s.report();
        assert!(report.timers_fired >= 18);
        assert!(report.requests_delivered > 0);
        assert!(report.exchanges_completed > 0);
    }

    #[test]
    fn overlay_converges_under_jitter_and_latency() {
        // View size 16: comfortably above the small-overlay connectivity
        // threshold (tiny views can genuinely partition, see Section 4.3
        // experiments).
        let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 16).unwrap();
        let mut s = EventSimulation::new(
            protocol,
            EventConfig {
                period: 1000,
                jitter: 300,
                latency: LatencyModel::Uniform { min: 10, max: 200 },
                loss_probability: 0.0,
            },
            11,
        )
        .expect("valid config");
        // Tree bootstrap (every joiner knows an introducer): a bare chain
        // can genuinely be cut into two self-reinforcing communities under
        // concurrent exchanges.
        s.add_node([]);
        for i in 1..80u64 {
            s.add_node([NodeDescriptor::fresh(NodeId::new(i / 2))]);
        }
        s.run_for(30_000);
        let g = s.snapshot().undirected();
        assert!(pss_graph::components::is_connected(&g));
        assert!(g.average_degree() > 16.0);
    }

    #[test]
    fn dead_nodes_stop_participating() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        });
        s.add_connected_nodes(3);
        s.run_for(500);
        assert!(s.kill(NodeId::new(2)));
        assert_eq!(s.alive_count(), 2);
        s.run_for(500);
        assert!(s.dead_link_count() <= 16); // bounded by views, no panic
        let snap = s.snapshot();
        assert_eq!(snap.node_count(), 2);
    }

    #[test]
    fn total_loss_freezes_view_membership() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 1.0,
        });
        s.add_connected_nodes(4);
        let ids = |s: &EventSimulation, i: u64| -> Vec<NodeId> {
            s.view_of(NodeId::new(i)).unwrap().ids().collect()
        };
        let before: Vec<_> = (0..4).map(|i| ids(&s, i)).collect();
        s.run_for(2000);
        // No message ever arrives, so nobody learns anything; views only
        // age in place.
        let after: Vec<_> = (0..4).map(|i| ids(&s, i)).collect();
        assert_eq!(before, after);
        assert_eq!(s.report().requests_delivered, 0);
        assert!(s.report().dropped_messages > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut s = EventSimulation::new(protocol(), EventConfig::default(), seed)
                .expect("valid config");
            s.add_connected_nodes(30);
            s.run_for(20_000);
            let g = s.snapshot().undirected();
            (g.edge_count(), g.max_degree())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = sim(EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
        });
        s.add_connected_nodes(2);
        s.run_until(250);
        assert_eq!(s.now(), 250);
        // Events beyond the deadline remain queued.
        let more = s.run_until(1000);
        assert!(more > 0);
    }

    #[test]
    fn sharded_run_until_respects_deadline() {
        let config = EventConfig {
            period: 100,
            jitter: 0,
            latency: LatencyModel::Uniform { min: 7, max: 13 },
            loss_probability: 0.0,
        };
        let mut s = ShardedEventSimulation::new(protocol(), config, 11, 3).expect("valid config");
        s.add_connected_nodes(9);
        s.run_until(250);
        assert_eq!(s.now(), 250);
        let more = s.run_until(1000);
        assert!(more > 0);
        assert_eq!(s.now(), 1000);
    }

    #[test]
    fn run_cycle_advances_one_period() {
        let mut s = ShardedEventSimulation::new(protocol(), EventConfig::default(), 3, 2)
            .expect("valid config");
        s.add_connected_nodes(20);
        let report = s.run_cycle();
        assert_eq!(s.cycle(), 1);
        assert_eq!(s.now(), 1000);
        assert!(report.initiated() > 0);
    }

    #[test]
    fn debug_format() {
        let s = sim(EventConfig::default());
        assert!(format!("{s:?}").contains("pending_events"));
        let sh = ShardedEventSimulation::new(protocol(), EventConfig::default(), 1, 2)
            .expect("valid config");
        let text = format!("{sh:?}");
        assert!(text.contains("lookahead"));
        assert!(text.contains("shards"));
    }
}
