//! Simulators for gossip-based peer sampling protocols.
//!
//! Three execution models over the same node population:
//!
//! * [`Simulation`] — the **cycle-driven** model the paper's experiments
//!   use: in every cycle each live node initiates exactly one exchange, in a
//!   fresh random order, and each exchange completes atomically. Exchanges
//!   with dead peers silently do nothing to the initiator (no failure
//!   detector; the protocol heals only through view selection).
//! * [`ShardedSimulation`] — the same cycle model **sharded across worker
//!   threads** for large populations (N = 10⁶ and beyond): nodes are
//!   partitioned into shards, cross-shard exchanges flow through
//!   fixed-order mailboxes, and results are bit-identical for a given
//!   `(seed, shard_count)` regardless of the worker-thread count.
//!   [`Simulation`] is exactly this engine with one shard.
//! * [`EventSimulation`] / [`ShardedEventSimulation`] — a **discrete-event**
//!   engine with per-node timer jitter, message latency and message loss.
//!   This goes beyond the paper's model and is used for the
//!   asynchrony-robustness extension experiments. The sharded variant runs
//!   the event queues shard-parallel under a conservative lookahead window
//!   equal to the minimum latency, with the same determinism contract as
//!   the cycle engine; [`EventSimulation`] is exactly its 1-shard special
//!   case.
//!
//! Scenario constructors ([`scenario`]) reproduce the paper's three
//! bootstrap regimes — growing overlay, ring lattice, uniform random — and
//! [`observe`] provides per-cycle recorders for the published metrics.
//! [`workload`] declares seed-deterministic membership-dynamics schedules
//! (churn, catastrophic failure, flash crowds, partition/heal, Byzantine
//! adversary placement) that compile to concrete per-period operations and
//! run identically on every engine and on the deployed `pss-net` runtime;
//! [`audit`] layers attack observables (in-degree capture, victim
//! isolation, chi-square randomness) on attacked runs.
//!
//! # Examples
//!
//! Converging a 500-node Newscast overlay from a random start:
//!
//! ```
//! use pss_core::{PolicyTriple, ProtocolConfig};
//! use pss_sim::scenario;
//!
//! let config = ProtocolConfig::new(PolicyTriple::newscast(), 30)?;
//! let mut sim = scenario::random_overlay(&config, 500, 42);
//! sim.run_cycles(20);
//! let snapshot = sim.snapshot();
//! let graph = snapshot.undirected();
//! assert!(pss_graph::components::is_connected(&graph));
//! # Ok::<(), pss_core::ConfigError>(())
//! ```

// `deny` (not `forbid`) so the one module that needs `unsafe` — the
// persistent worker pool — can opt in locally with documented invariants.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod cycle;
mod engine;
mod event;
mod exec;
mod pool;
mod population;
mod shard;
mod snapshot;
mod telemetry;

pub mod audit;
pub mod observe;
pub mod scenario;
pub mod workload;

pub use churn::{ChurnProcess, RateAccumulator};
pub use cycle::Simulation;
pub use engine::Engine;
pub use event::{
    Delivery, EventConfig, EventConfigError, EventReport, EventSimulation, LatencyModel,
    ShardedEventSimulation,
};
pub use population::BoxedNode;
pub use shard::{CycleReport, FailureMode, GrowthPlan, ShardedSimulation};
pub use snapshot::{CsrSnapshot, Snapshot, StreamingMetrics};
pub use workload::{Partition, Workload, WorkloadTarget};
