//! The paper's three bootstrap scenarios, plus generic graph-seeded setup.
//!
//! Section 5 of the paper evaluates convergence from three initial
//! conditions:
//!
//! * **growing overlay** ([`growing_overlay`]) — start from a single node;
//!   100 nodes join per cycle knowing only the oldest node, until N = 10⁴
//!   (reached at cycle 100),
//! * **ring lattice** ([`lattice_overlay`]) — a structured, large-diameter
//!   start,
//! * **random** ([`random_overlay`]) — views are uniform random samples
//!   (the baseline topology itself).

use pss_core::{GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig};
use pss_graph::{gen, DiGraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{
    EventConfig, EventConfigError, GrowthPlan, ShardedEventSimulation, ShardedSimulation,
    Simulation,
};

/// Seeds an existing (empty) simulation so that node `i`'s view holds a
/// fresh descriptor per out-neighbor of `i` in `graph`. Works for any node
/// type, so boxed and monomorphized scenarios share one implementation.
///
/// # Panics
///
/// Panics if any out-degree exceeds `view_size`.
fn seed_from_digraph<N: GossipNode + Send>(
    sim: &mut Simulation<N>,
    view_size: usize,
    graph: &DiGraph,
) {
    for v in 0..graph.node_count() as u32 {
        let out = graph.out_neighbors(v);
        assert!(
            out.len() <= view_size,
            "initial out-degree {} exceeds view size {}",
            out.len(),
            view_size
        );
        sim.add_node(
            out.iter()
                .map(|&t| NodeDescriptor::fresh(NodeId::new(t as u64))),
        );
    }
}

/// Builds a simulation whose initial views replicate a directed graph:
/// node `i`'s view holds a fresh descriptor per out-neighbor of `i`.
///
/// # Panics
///
/// Panics if any out-degree exceeds the configured view size (the scenario
/// would silently truncate otherwise).
pub fn from_digraph(config: &ProtocolConfig, graph: &DiGraph, seed: u64) -> Simulation {
    let mut sim = Simulation::new(config.clone(), seed);
    seed_from_digraph(&mut sim, config.view_size(), graph);
    sim
}

/// Monomorphized variant of [`from_digraph`]: same seeds, same exchanges,
/// no virtual dispatch in the cycle loop (see [`Simulation::typed`]).
pub fn from_digraph_fast(
    config: &ProtocolConfig,
    graph: &DiGraph,
    seed: u64,
) -> Simulation<PeerSamplingNode> {
    let mut sim = Simulation::typed(config.clone(), seed);
    seed_from_digraph(&mut sim, config.view_size(), graph);
    sim
}

/// The growing-overlay scenario: one initial node, `per_cycle` joiners per
/// cycle (each knowing only node 0) until `target` nodes exist.
///
/// The paper uses `per_cycle = 100` and `target = 10_000`; growth then
/// completes at cycle 100 and the run continues to cycle 300.
pub fn growing_overlay(
    config: &ProtocolConfig,
    target: usize,
    per_cycle: usize,
    seed: u64,
) -> Simulation {
    let mut sim = Simulation::new(config.clone(), seed);
    sim.add_node([]);
    sim.set_growth(GrowthPlan {
        nodes_per_cycle: per_cycle,
        target,
    });
    sim
}

/// The ring-lattice scenario: views hold the `c` nearest ring neighbors.
pub fn lattice_overlay(config: &ProtocolConfig, n: usize, seed: u64) -> Simulation {
    let lattice = gen::ring_lattice(n, config.view_size());
    from_digraph(config, &lattice, seed)
}

/// The random scenario: views are independent uniform samples of the other
/// nodes — the paper's baseline topology as the starting point.
pub fn random_overlay(config: &ProtocolConfig, n: usize, seed: u64) -> Simulation {
    // Derive the topology RNG from the run seed but keep it distinct from
    // the simulation RNG stream.
    let mut topo_rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let graph = gen::uniform_view_digraph(n, config.view_size(), &mut topo_rng);
    from_digraph(config, &graph, seed)
}

/// Monomorphized variant of [`random_overlay`]: identical topology and
/// protocol behavior for the same seed, minus the boxed dispatch.
pub fn random_overlay_fast(
    config: &ProtocolConfig,
    n: usize,
    seed: u64,
) -> Simulation<PeerSamplingNode> {
    let mut topo_rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let graph = gen::uniform_view_digraph(n, config.view_size(), &mut topo_rng);
    from_digraph_fast(config, &graph, seed)
}

/// A star bootstrap: every node knows only node 0 (and node 0 knows node 1).
/// The pathological topology pull-only protocols collapse to.
pub fn star_overlay(config: &ProtocolConfig, n: usize, seed: u64) -> Simulation {
    let graph = gen::star(n);
    from_digraph(config, &graph, seed)
}

/// Seeds an empty [`ShardedSimulation`] from a directed graph, exactly like
/// [`from_digraph`] does for the sequential engine (same per-node seed
/// draws, same views). With `shards == 1` the two engines then produce
/// identical cycles — the differential tests pin this.
///
/// Deliberately **serial** (control-RNG node seeds, unlike the bulk path of
/// [`random_overlay_sharded`]): the 1-shard-equals-`Simulation` contract
/// requires drawing node seeds exactly as `Simulation`'s `add_node` does.
///
/// # Panics
///
/// Panics if any out-degree exceeds the configured view size.
pub fn from_digraph_sharded(
    config: &ProtocolConfig,
    graph: &DiGraph,
    seed: u64,
    shards: usize,
) -> ShardedSimulation<PeerSamplingNode> {
    let mut sim = ShardedSimulation::typed(config.clone(), seed, shards);
    sim.plan_capacity(graph.node_count());
    for v in 0..graph.node_count() as u32 {
        let out = graph.out_neighbors(v);
        assert!(
            out.len() <= config.view_size(),
            "initial out-degree {} exceeds view size {}",
            out.len(),
            config.view_size()
        );
        sim.add_node(
            out.iter()
                .map(|&t| NodeDescriptor::fresh(NodeId::new(t as u64))),
        );
    }
    sim
}

/// The random scenario at sharded scale: every node's initial view is an
/// independent uniform sample of the other nodes, generated **per node**
/// from `(seed, id)` — no N-sized intermediate graph is materialized, so
/// this is the bootstrap path for N = 10⁶ runs.
///
/// The topology depends only on `(seed, n, view size)`: runs with different
/// shard counts start from the *identical* overlay (the cycle dynamics then
/// diverge per the sharding contract, like a seed change would).
///
/// Construction is **worker-parallel** via
/// [`ShardedSimulation::add_nodes_bulk`]: node RNG seeds are `(seed, id)`-
/// pure, so the built population is bit-identical at any worker count.
/// (Bulk seeds differ from the control-RNG seeds serial `add_node` draws —
/// switching this constructor over reseeded its trajectories once, see the
/// pinned-digest test.)
pub fn random_overlay_sharded(
    config: &ProtocolConfig,
    n: usize,
    seed: u64,
    shards: usize,
) -> ShardedSimulation<PeerSamplingNode> {
    let mut sim = ShardedSimulation::typed(config.clone(), seed, shards);
    let want = config.view_size().min(n.saturating_sub(1));
    sim.add_nodes_bulk(n, move |id| random_view_for(seed, n, want, id.as_index()));
    sim
}

/// The per-node `(seed, id)`-pure uniform view used by the sharded random
/// scenarios: `want` distinct, self-excluding picks among the `n` nodes.
/// Pure in `(seed, n, want, i)`, so shard-parallel bulk construction and
/// driver-serial joins produce the identical topology.
fn random_view_for(
    seed: u64,
    n: usize,
    want: usize,
    i: usize,
) -> impl Iterator<Item = NodeDescriptor> {
    use rand::seq::index::sample;

    // Distinct, self-excluding uniform picks: sample from n−1 slots and
    // shift picks at or above the node's own index up by one.
    let mut view_rng = SmallRng::seed_from_u64(crate::exec::mix(
        seed ^ 0xd1b5_4a32_d192_ed03 ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
    ));
    let picks = sample(&mut view_rng, n - 1, want);
    picks.into_iter().map(move |p| {
        let target = if p >= i { p + 1 } else { p };
        NodeDescriptor::fresh(NodeId::new(target as u64))
    })
}

/// The random scenario on the **sharded event engine**: the same
/// `(seed, id)`-pure per-node views as [`random_overlay_sharded`] (so event
/// and cycle runs at equal `(seed, n, c)` start from the identical
/// overlay), built **worker-parallel** via
/// [`ShardedEventSimulation::add_nodes_bulk`] — node seeds and timer
/// phases are pure in `(seed, id)` too, making the constructed simulation
/// bit-identical at any worker count.
///
/// # Errors
///
/// Returns an [`EventConfigError`] if `event` violates an invariant (for
/// multiple shards that includes a zero minimum latency — the lookahead
/// window).
pub fn event_random_overlay_sharded(
    config: &ProtocolConfig,
    event: EventConfig,
    n: usize,
    seed: u64,
    shards: usize,
) -> Result<ShardedEventSimulation<PeerSamplingNode>, EventConfigError> {
    let mut sim = ShardedEventSimulation::typed(config.clone(), event, seed, shards)?;
    let want = config.view_size().min(n.saturating_sub(1));
    sim.add_nodes_bulk(n, move |id| random_view_for(seed, n, want, id.as_index()));
    Ok(sim)
}

/// Seeds an empty [`ShardedEventSimulation`] from a directed graph, exactly
/// like [`from_digraph`] does for the cycle engine: node `i`'s view holds a
/// fresh descriptor per out-neighbor of `i`, and node seeds/phases come
/// from the control RNG in join order — so a 1-shard instance is the
/// [`crate::EventSimulation`] built by the same adds (the differential
/// tests pin this).
///
/// # Errors
///
/// Returns an [`EventConfigError`] if `event` violates an invariant.
///
/// # Panics
///
/// Panics if any out-degree exceeds the configured view size.
pub fn event_from_digraph_sharded(
    config: &ProtocolConfig,
    event: EventConfig,
    graph: &DiGraph,
    seed: u64,
    shards: usize,
) -> Result<ShardedEventSimulation<PeerSamplingNode>, EventConfigError> {
    let mut sim = ShardedEventSimulation::typed(config.clone(), event, seed, shards)?;
    sim.plan_capacity(graph.node_count());
    for v in 0..graph.node_count() as u32 {
        let out = graph.out_neighbors(v);
        assert!(
            out.len() <= config.view_size(),
            "initial out-degree {} exceeds view size {}",
            out.len(),
            config.view_size()
        );
        sim.add_node(
            out.iter()
                .map(|&t| NodeDescriptor::fresh(NodeId::new(t as u64))),
        );
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::PolicyTriple;
    use pss_graph::components;

    fn config(c: usize) -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), c).unwrap()
    }

    #[test]
    fn from_digraph_replicates_views() {
        let g = DiGraph::from_views(3, vec![vec![1, 2], vec![2], vec![]]).unwrap();
        let sim = from_digraph(&config(5), &g, 1);
        assert_eq!(sim.node_count(), 3);
        let v0 = sim.view_of(NodeId::new(0)).unwrap();
        assert!(v0.contains(NodeId::new(1)));
        assert!(v0.contains(NodeId::new(2)));
        assert!(sim.view_of(NodeId::new(2)).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds view size")]
    fn from_digraph_rejects_oversized_views() {
        let g = DiGraph::from_views(4, vec![vec![1, 2, 3]]).unwrap();
        let _ = from_digraph(&config(2), &g, 1);
    }

    #[test]
    fn growing_reaches_target() {
        let mut sim = growing_overlay(&config(5), 50, 10, 2);
        assert_eq!(sim.node_count(), 1);
        for _ in 0..5 {
            sim.run_cycle();
        }
        assert_eq!(sim.node_count(), 50);
        sim.run_cycle();
        assert_eq!(sim.node_count(), 50);
    }

    #[test]
    fn growing_overlay_becomes_connected() {
        // c = 15 keeps a 60-node overlay above the connectivity threshold.
        let mut sim = growing_overlay(&config(15), 60, 20, 3);
        sim.run_cycles(25);
        let g = sim.snapshot().undirected();
        assert!(components::is_connected(&g));
    }

    #[test]
    fn lattice_overlay_views_are_ring_neighbors() {
        let sim = lattice_overlay(&config(4), 10, 4);
        let v0 = sim.view_of(NodeId::new(0)).unwrap();
        for id in [1u64, 2, 8, 9] {
            assert!(v0.contains(NodeId::new(id)), "missing {id} in {v0}");
        }
    }

    #[test]
    fn random_overlay_has_full_views() {
        let sim = random_overlay(&config(10), 50, 5);
        for id in sim.alive_ids() {
            assert_eq!(sim.view_of(id).unwrap().len(), 10);
        }
    }

    #[test]
    fn random_overlay_differs_per_seed_but_not_per_run() {
        let degree = |seed: u64| {
            let sim = random_overlay(&config(10), 50, seed);
            sim.snapshot().undirected().degree(0)
        };
        assert_eq!(degree(7), degree(7));
    }

    #[test]
    fn sharded_random_overlay_topology_is_shard_count_invariant() {
        let views = |shards: usize| {
            let sim = random_overlay_sharded(&config(6), 40, 11, shards);
            (0..40u64)
                .map(|i| {
                    sim.view_of(NodeId::new(i))
                        .unwrap()
                        .ids()
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(views(1), views(3));
        assert_eq!(views(2), views(5));
    }

    #[test]
    fn sharded_random_overlay_views_are_full_and_self_free() {
        let sim = random_overlay_sharded(&config(10), 50, 5, 4);
        assert_eq!(sim.alive_count(), 50);
        for id in sim.alive_ids() {
            let view = sim.view_of(id).unwrap();
            assert_eq!(view.len(), 10);
            assert!(!view.contains(id));
        }
    }

    #[test]
    fn sharded_from_digraph_replicates_views() {
        let g = DiGraph::from_views(3, vec![vec![1, 2], vec![2], vec![]]).unwrap();
        let sim = from_digraph_sharded(&config(5), &g, 1, 2);
        assert_eq!(sim.node_count(), 3);
        let v0 = sim.view_of(NodeId::new(0)).unwrap();
        assert!(v0.contains(NodeId::new(1)));
        assert!(v0.contains(NodeId::new(2)));
        assert!(sim.view_of(NodeId::new(2)).unwrap().is_empty());
    }

    #[test]
    fn event_random_overlay_matches_cycle_overlay_topology() {
        // The event scenario starts from the identical overlay as the cycle
        // scenario at equal (seed, n, c) — and is invariant across both
        // shard and worker counts (bulk construction is (seed, id)-pure).
        let event = EventConfig::default();
        let views = |sim_views: Vec<Vec<NodeId>>| sim_views;
        let cycle_views: Vec<Vec<NodeId>> = {
            let sim = random_overlay_sharded(&config(6), 40, 11, 2);
            (0..40u64)
                .map(|i| sim.view_of(NodeId::new(i)).unwrap().ids().collect())
                .collect()
        };
        for shards in [1usize, 3] {
            let sim = event_random_overlay_sharded(&config(6), event, 40, 11, shards).unwrap();
            let got: Vec<Vec<NodeId>> = (0..40u64)
                .map(|i| sim.view_of(NodeId::new(i)).unwrap().ids().collect())
                .collect();
            assert_eq!(views(got), cycle_views, "shards = {shards}");
        }
    }

    #[test]
    fn event_from_digraph_replicates_views() {
        let g = DiGraph::from_views(3, vec![vec![1, 2], vec![2], vec![]]).unwrap();
        let sim = event_from_digraph_sharded(&config(5), EventConfig::default(), &g, 1, 2).unwrap();
        assert_eq!(sim.node_count(), 3);
        let v0 = sim.view_of(NodeId::new(0)).unwrap();
        assert!(v0.contains(NodeId::new(1)));
        assert!(v0.contains(NodeId::new(2)));
        assert!(sim.view_of(NodeId::new(2)).unwrap().is_empty());
    }

    #[test]
    fn star_overlay_shape() {
        let sim = star_overlay(&config(5), 6, 6);
        for id in 1..6u64 {
            let v = sim.view_of(NodeId::new(id)).unwrap();
            assert_eq!(v.len(), 1);
            assert!(v.contains(NodeId::new(0)));
        }
    }
}
