//! The cycle-engine abstraction shared by observers and churn drivers.

use pss_core::{NodeId, View};

use crate::workload::Partition;
use crate::{CycleReport, Snapshot};

/// What every cycle-driven engine exposes to generic drivers: the
/// sequential [`crate::Simulation`] and the parallel
/// [`crate::ShardedSimulation`] both implement this, so observers
/// ([`crate::observe`]) and churn processes ([`crate::ChurnProcess`]) run
/// unchanged on either.
pub trait Engine {
    /// Runs one full cycle and reports what happened.
    fn run_cycle(&mut self) -> CycleReport;

    /// Number of cycles run so far.
    fn cycle(&self) -> u64;

    /// Total nodes ever added (dead slots included).
    fn node_count(&self) -> usize;

    /// Number of live nodes.
    fn alive_count(&self) -> usize;

    /// True if `id` exists and is alive.
    fn is_alive(&self, id: NodeId) -> bool;

    /// Ids of all live nodes, in increasing order.
    fn alive_ids(&self) -> Vec<NodeId>;

    /// The view of a live node.
    fn view_of(&self, id: NodeId) -> Option<&View>;

    /// Descriptors in live views that point to dead nodes.
    fn dead_link_count(&self) -> usize;

    /// Builds the communication-graph snapshot over live nodes.
    fn snapshot(&self) -> Snapshot;

    /// Kills one node (crash-stop). Returns false if already dead/unknown.
    fn kill(&mut self, id: NodeId) -> bool;

    /// Kills a uniform-random set of `count` live nodes and returns them.
    fn kill_random(&mut self, count: usize) -> Vec<NodeId>;

    /// Adds `count` nodes, each bootstrapped with `contacts` uniform-random
    /// live contacts. Returns the new ids.
    fn add_nodes_with_random_contacts(&mut self, count: usize, contacts: usize) -> Vec<NodeId>;

    /// Adds one node bootstrapped off exactly these contacts (fresh
    /// descriptors) and returns its id — the deterministic join primitive
    /// workload schedules use ([`crate::workload`]).
    fn add_seeded_node(&mut self, contacts: &[NodeId]) -> NodeId;

    /// Installs (`Some`) or lifts (`None`) a partition loss matrix:
    /// messages between different [`Partition`] groups are silently
    /// dropped (counted with the engine's dropped-message statistic).
    fn set_partition(&mut self, partition: Option<Partition>);
}

macro_rules! delegate_engine {
    ($ty:ident) => {
        impl<N: pss_core::GossipNode + Send> Engine for crate::$ty<N> {
            fn run_cycle(&mut self) -> CycleReport {
                self.run_cycle()
            }
            fn cycle(&self) -> u64 {
                self.cycle()
            }
            fn node_count(&self) -> usize {
                self.node_count()
            }
            fn alive_count(&self) -> usize {
                self.alive_count()
            }
            fn is_alive(&self, id: NodeId) -> bool {
                self.is_alive(id)
            }
            fn alive_ids(&self) -> Vec<NodeId> {
                self.alive_ids()
            }
            fn view_of(&self, id: NodeId) -> Option<&View> {
                self.view_of(id)
            }
            fn dead_link_count(&self) -> usize {
                self.dead_link_count()
            }
            fn snapshot(&self) -> Snapshot {
                self.snapshot()
            }
            fn kill(&mut self, id: NodeId) -> bool {
                self.kill(id)
            }
            fn kill_random(&mut self, count: usize) -> Vec<NodeId> {
                self.kill_random(count)
            }
            fn add_nodes_with_random_contacts(
                &mut self,
                count: usize,
                contacts: usize,
            ) -> Vec<NodeId> {
                self.add_nodes_with_random_contacts(count, contacts)
            }
            fn add_seeded_node(&mut self, contacts: &[NodeId]) -> NodeId {
                self.add_node(
                    contacts
                        .iter()
                        .map(|&id| pss_core::NodeDescriptor::fresh(id)),
                )
            }
            fn set_partition(&mut self, partition: Option<crate::workload::Partition>) {
                self.set_partition(partition)
            }
        }
    };
}

delegate_engine!(Simulation);
delegate_engine!(ShardedSimulation);
// The event engine drives cycles as gossip periods: `run_cycle` advances
// one period and projects the event statistics onto the cycle report shape
// (see `EventReport::as_cycle_report`), so observers and churn processes
// run unchanged on it.
delegate_engine!(ShardedEventSimulation);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardedSimulation, Simulation};
    use pss_core::{NodeDescriptor, PolicyTriple, ProtocolConfig};

    fn config() -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap()
    }

    /// A generic driver touching every trait method, instantiated with both
    /// engines.
    fn exercise<E: Engine>(sim: &mut E) {
        let report = sim.run_cycle();
        assert_eq!(report.initiated() as usize, sim.alive_count());
        assert_eq!(sim.cycle(), 1);
        assert!(sim.node_count() >= sim.alive_count());
        let ids = sim.alive_ids();
        assert!(sim.is_alive(ids[0]));
        assert!(sim.view_of(ids[0]).is_some());
        let _ = sim.snapshot();
        let killed = sim.kill_random(2);
        assert_eq!(killed.len(), 2);
        assert!(sim.kill(ids.iter().copied().find(|i| sim.is_alive(*i)).unwrap()));
        assert!(sim.dead_link_count() > 0);
        let joined = sim.add_nodes_with_random_contacts(3, 2);
        assert_eq!(joined.len(), 3);
        let live = sim.alive_ids()[0];
        let seeded = sim.add_seeded_node(&[live]);
        assert!(sim.is_alive(seeded));
        sim.set_partition(Some(Partition::new(2)));
        sim.run_cycle();
        sim.set_partition(None);
        sim.run_cycle();
    }

    fn populate(sim: &mut impl Engine, n: usize) {
        // Engine has no add_node; churn-join works once one node exists, so
        // the concrete constructors below pre-seed two nodes.
        sim.add_nodes_with_random_contacts(n, 2);
    }

    #[test]
    fn both_engines_drive_generically() {
        let mut sequential = Simulation::new(config(), 11);
        sequential.add_node([]);
        sequential.add_node([NodeDescriptor::fresh(pss_core::NodeId::new(0))]);
        populate(&mut sequential, 18);
        exercise(&mut sequential);

        let mut sharded = ShardedSimulation::new(config(), 11, 3);
        sharded.add_node([]);
        sharded.add_node([NodeDescriptor::fresh(pss_core::NodeId::new(0))]);
        populate(&mut sharded, 18);
        exercise(&mut sharded);
    }
}
