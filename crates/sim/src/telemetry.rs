//! Engine-side telemetry: per-phase wall time and shard work imbalance.
//!
//! Each sharded engine owns one [`EngineTele`] registered against the
//! global [`pss_telemetry`] registry under an `engine` label. Timing wraps
//! [`exec::run_phase`] from the *outside*: the phase closure is executed
//! unchanged, per-shard durations land in a preallocated scratch array of
//! atomics (reused every phase — the engines' steady-state allocation
//! pins stay intact), and nothing telemetry records ever feeds back into
//! protocol state. With telemetry disabled the wrapper is one relaxed
//! load and a straight call through to `exec::run_phase`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pss_telemetry::{flight, Counter, EventKind, Histogram};

use crate::exec;
use crate::pool::WorkerPool;

/// Telemetry handles for one engine instance. Handles are shared cells:
/// every `ShardedSimulation` in the process accumulates into the same
/// `engine="cycle"` series, mirroring how a Prometheus process exports
/// one series per family, not one per object.
pub(crate) struct EngineTele {
    /// Per-phase `(label, wall-time histogram)`, indexed by the phase
    /// constants the engine passes to [`EngineTele::run_phase`].
    phases: Vec<(&'static str, Histogram)>,
    shard_work: Histogram,
    imbalance: Histogram,
    cycles: Counter,
    /// Per-shard nanosecond scratch, written by workers during a phase and
    /// folded into `shard_work`/`imbalance` afterwards. Sized once at
    /// construction (shard count never changes after that).
    shard_ns: Vec<AtomicU64>,
}

impl EngineTele {
    pub(crate) fn new(engine: &'static str, phase_names: &[&'static str], shards: usize) -> Self {
        let reg = pss_telemetry::global();
        let phases = phase_names
            .iter()
            .map(|&phase| {
                (
                    phase,
                    reg.histogram_with(
                        "pss_phase_ns",
                        &[("engine", engine), ("phase", phase)],
                        "Wall time of one parallel engine phase, nanoseconds",
                    ),
                )
            })
            .collect();
        Self {
            phases,
            shard_work: reg.histogram_with(
                "pss_shard_work_ns",
                &[("engine", engine)],
                "Per-shard wall time inside one engine phase, nanoseconds",
            ),
            imbalance: reg.histogram_with(
                "pss_shard_imbalance_permille",
                &[("engine", engine)],
                "Slowest shard over mean shard work per phase, in permille (1000 = perfectly balanced)",
            ),
            cycles: reg.counter_with(
                "pss_cycles_total",
                &[("engine", engine)],
                "Completed engine cycles (periods for the event engine)",
            ),
            shard_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// One engine cycle (or period) finished.
    pub(crate) fn cycle_done(&self) {
        self.cycles.inc();
    }

    /// [`exec::run_phase`] with timing: whole-phase wall time into the
    /// phase histogram, per-shard durations into the work histogram, the
    /// max/mean ratio into the imbalance histogram, and — when `trail` is
    /// `Some(tick)` — phase start/end events into the flight recorder
    /// (`tick` is the cycle or bucket index carried on those events).
    pub(crate) fn run_phase<S, F, I>(
        &self,
        phase: usize,
        trail: Option<u64>,
        shards: &mut [S],
        pool: &WorkerPool,
        index: I,
        f: F,
    ) where
        S: Send,
        F: Fn(&mut S) + Sync,
        I: Fn(&S) -> usize + Sync,
    {
        if !pss_telemetry::enabled() {
            exec::run_phase(shards, pool, f);
            return;
        }
        let (label, phase_hist) = &self.phases[phase];
        if let Some(tick) = trail {
            flight().record(EventKind::PhaseStart, label, tick, 0);
        }
        let started = Instant::now();
        exec::run_phase(shards, pool, |shard| {
            let t = Instant::now();
            f(shard);
            self.shard_ns[index(shard)].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        });
        let elapsed = started.elapsed().as_nanos() as u64;
        phase_hist.record(elapsed);
        if let Some(tick) = trail {
            flight().record(EventKind::PhaseEnd, label, tick, elapsed);
        }
        let live = &self.shard_ns[..shards.len().min(self.shard_ns.len())];
        let mut max = 0u64;
        let mut sum = 0u64;
        for cell in live {
            let v = cell.load(Ordering::Relaxed);
            self.shard_work.record(v);
            max = max.max(v);
            sum = sum.saturating_add(v);
        }
        if live.len() > 1 {
            let mean = sum / live.len() as u64;
            if let Some(ratio) = max.saturating_mul(1000).checked_div(mean) {
                self.imbalance.record(ratio);
            }
        }
    }

    /// Times a sequential (single-shard) phase body into the same phase
    /// histogram — the 1-shard fast paths skip the pool entirely but
    /// should not disappear from the timing picture.
    pub(crate) fn time_solo<R>(&self, phase: usize, body: impl FnOnce() -> R) -> R {
        if !pss_telemetry::enabled() {
            return body();
        }
        let started = Instant::now();
        let out = body();
        self.phases[phase]
            .1
            .record(started.elapsed().as_nanos() as u64);
        out
    }
}
