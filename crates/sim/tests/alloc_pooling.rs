//! Allocation accounting for the event engine's message pooling.
//!
//! Cross-shard `Request`/`Reply` payload buffers ride back to their sender
//! shard through the mailbox transposition and local ones park in the
//! shard's payload pool, so the steady-state event loop should touch the
//! allocator only incidentally (heap growth of long-lived structures), not
//! once per message. This test pins that with a counting global allocator:
//! after a warm-up phase, ten further gossip periods must allocate far less
//! than once per message.
//!
//! Kept in its own integration-test binary because the `#[global_allocator]`
//! is process-wide; the single `#[test]` keeps the measurement window free
//! of concurrent test allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pss_core::{PolicyTriple, ProtocolConfig};
use pss_sim::{scenario, EventConfig, LatencyModel};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator; the counter is the
// only addition and is atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_event_loop_is_nearly_allocation_free() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
    let event = EventConfig {
        period: 100,
        jitter: 10,
        latency: LatencyModel::Uniform { min: 10, max: 30 },
        loss_probability: 0.0,
    };
    // Two shards so the cross-shard return lanes are actually exercised;
    // one worker so the run stays on this thread (scoped worker spawns
    // would add per-bucket thread allocations that are not the message
    // path under test).
    let mut sim =
        scenario::event_random_overlay_sharded(&config, event, 64, 11, 2).expect("valid config");
    sim.set_workers(1);

    // Warm up: pools, queues, mailbox lanes and view buffers grow to their
    // steady-state footprint.
    sim.run_for(10 * event.period);
    let report_before = sim.report();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_for(10 * event.period);
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let delta = sim.report().since(&report_before);
    let messages = delta.requests_delivered + delta.replies_delivered + delta.dropped_messages;
    assert!(
        messages > 500,
        "window too quiet to be meaningful: {messages} messages"
    );
    // Without pooling every delivered message allocates (at least) its
    // payload Vec; with the return path the window should be close to
    // allocation-free. The bound leaves slack for occasional heap/lane
    // growth while staying far below one allocation per message.
    assert!(
        during < messages / 4,
        "{during} allocations for {messages} messages — payload pooling regressed"
    );
}
