//! Cross-engine adversary conformance: attacked runs must (a) stay
//! bit-deterministic per `(seed, shard_count)` at any worker count on both
//! sharded engines, (b) produce statistically agreeing attack metrics on
//! the cycle and event engines, and (c) reproduce the headline robustness
//! result — 2 % hub attackers capture in-degree under newscast while the
//! H&S swapper policy bounds the capture — plus the PeerSwap-style
//! chi-square randomness audit (passes clean, flags hub attacks) and
//! eclipse victim isolation.

mod common;

use common::view_digest;
use pss_core::hs::{HsConfig, HsPeerSelection};
use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::audit::{role_factory, run_attacked, AttackAudit, HonestPolicy, SampleAudit};
use pss_sim::workload::{run_workload_observed, PeriodRecord, Workload};
use pss_sim::{BoxedNode, EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation};

const N: usize = 200;
const C: usize = 15;

fn newscast() -> HonestPolicy {
    HonestPolicy::Sampling(ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid"))
}

fn swapper() -> HonestPolicy {
    HonestPolicy::Hs(HsConfig::new(C, 0, C / 2, HsPeerSelection::Rand).expect("valid"))
}

fn event_config() -> EventConfig {
    EventConfig {
        period: 100,
        jitter: 20,
        latency: LatencyModel::Uniform { min: 1, max: 20 },
        loss_probability: 0.02,
    }
}

fn tree_seeds(i: u64) -> Vec<NodeDescriptor> {
    if i == 0 {
        Vec::new()
    } else {
        vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
    }
}

/// Tree-bootstrapped sharded cycle engine over a role-dispatched
/// population.
fn cycle_sim(
    policy: &HonestPolicy,
    workload: &Workload,
    seed: u64,
    shards: usize,
) -> ShardedSimulation<BoxedNode> {
    let roles = workload.compile(N).adversary;
    let mut sim =
        ShardedSimulation::with_factory(seed, shards, role_factory(policy.clone(), roles));
    for i in 0..N as u64 {
        sim.add_node(tree_seeds(i));
    }
    sim
}

/// Tree-bootstrapped sharded event engine over a role-dispatched
/// population.
fn event_sim(
    policy: &HonestPolicy,
    workload: &Workload,
    seed: u64,
    shards: usize,
) -> ShardedEventSimulation<BoxedNode> {
    let roles = workload.compile(N).adversary;
    let mut sim = ShardedEventSimulation::with_factory(
        event_config(),
        seed,
        shards,
        role_factory(policy.clone(), roles),
    )
    .expect("valid event config");
    for i in 0..N as u64 {
        sim.add_node(tree_seeds(i));
    }
    sim
}

fn attack_schedules() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "hub",
            Workload::parse("adv:hub@0.02,quiet:8,churn:0.01x6", 51).unwrap(),
        ),
        (
            "liar",
            Workload::parse("adv:liar@0.05,quiet:8,churn:0.01x6", 52).unwrap(),
        ),
        (
            "forge",
            Workload::parse("adv:forge@0.05,quiet:8,churn:0.01x6", 53).unwrap(),
        ),
        (
            "eclipse",
            Workload::parse("adv:eclipse@0.1>victims:8,quiet:14", 54).unwrap(),
        ),
    ]
}

/// Calibration sweep (run with `--ignored --nocapture`): final-period hub
/// metrics for every interesting honest policy, cycle engine.
#[test]
#[ignore = "calibration helper, not a conformance check"]
fn sweep_hub_attack_across_policies() {
    let workload = Workload::parse("adv:hub@0.02,quiet:30", 61).unwrap();
    let compiled = workload.compile(N);
    let policies: Vec<(&str, HonestPolicy)> = vec![
        ("newscast (rand,head,pushpull)", newscast()),
        (
            "blind (rand,rand,pushpull)",
            HonestPolicy::Sampling(
                ProtocolConfig::new("(rand,rand,pushpull)".parse().unwrap(), C).unwrap(),
            ),
        ),
        (
            "tail-select (rand,tail,pushpull)",
            HonestPolicy::Sampling(
                ProtocolConfig::new("(rand,tail,pushpull)".parse().unwrap(), C).unwrap(),
            ),
        ),
        (
            "hs healer (H=7,S=0)",
            HonestPolicy::Hs(HsConfig::new(C, 7, 0, HsPeerSelection::Rand).unwrap()),
        ),
        (
            "hs swapper (H=0,S=7)",
            HonestPolicy::Hs(HsConfig::new(C, 0, 7, HsPeerSelection::Rand).unwrap()),
        ),
        (
            "hs balanced (H=4,S=3)",
            HonestPolicy::Hs(HsConfig::new(C, 4, 3, HsPeerSelection::Rand).unwrap()),
        ),
    ];
    for (name, policy) in policies {
        let mut sim = cycle_sim(&policy, &workload, 17, 2);
        let (_, audit) = run_attacked(&mut sim, &compiled, C);
        let f = audit.final_record().unwrap();
        eprintln!(
            "{name:34} skew {:7.2} edge {:.3} gini {:.3} honest-comp {:.3}",
            f.skew(),
            f.attacker_edge_fraction,
            f.in_degree_gini,
            f.honest_component_fraction(),
        );
    }
}

/// (a) Bit-determinism: for a fixed `(seed, shard_count)`, the benign
/// records, the attack records, and the final overlay are identical at any
/// worker count — for every attack kind, on both sharded engines.
#[test]
fn attacked_runs_are_bit_deterministic_across_worker_counts() {
    for (name, workload) in attack_schedules() {
        let compiled = workload.compile(N);

        let run_cycle = |workers: usize| {
            let mut sim = cycle_sim(&newscast(), &workload, 7, 2);
            sim.set_workers(workers);
            let (records, audit) = run_attacked(&mut sim, &compiled, C);
            (records, audit, view_digest(|f| sim.for_each_live_view(f)))
        };
        let (records1, audit1, digest1) = run_cycle(1);
        let (records2, audit2, digest2) = run_cycle(2);
        assert_eq!(records1, records2, "cycle records diverged ({name})");
        assert_eq!(audit1, audit2, "cycle attack audit diverged ({name})");
        assert_eq!(digest1, digest2, "cycle overlay diverged ({name})");

        let run_event = |workers: usize| {
            let mut sim = event_sim(&newscast(), &workload, 7, 2);
            sim.set_workers(workers);
            let (records, audit) = run_attacked(&mut sim, &compiled, C);
            (records, audit, view_digest(|f| sim.for_each_live_view(f)))
        };
        let (records1, audit1, digest1) = run_event(1);
        let (records2, audit2, digest2) = run_event(2);
        assert_eq!(records1, records2, "event records diverged ({name})");
        assert_eq!(audit1, audit2, "event attack audit diverged ({name})");
        assert_eq!(digest1, digest2, "event overlay diverged ({name})");
    }
}

/// (c) The headline robustness result, pinned on the event engine: 2 % hub
/// attackers capture in-degree far beyond their share under newscast
/// (freshness-greedy view selection swallows the forged age-0 flood),
/// while the H&S swapper policy — whose view selection gives fresh entries
/// no retention preference — bounds the capture. (The *healer* dimension
/// does not help here: removing the oldest entries is precisely the
/// freshness preference the age-forging hub exploits; see the calibration
/// sweep above.)
#[test]
fn hub_attack_skews_newscast_but_swapper_bounds_it() {
    let workload = Workload::parse("adv:hub@0.02,quiet:30", 61).unwrap();
    let compiled = workload.compile(N);

    let mut news = event_sim(&newscast(), &workload, 17, 2);
    let (_, news_audit) = run_attacked(&mut news, &compiled, C);
    let news_final = news_audit.final_record().unwrap();

    let mut swap = event_sim(&swapper(), &workload, 17, 2);
    let (_, swap_audit) = run_attacked(&mut swap, &compiled, C);
    let swap_final = swap_audit.final_record().unwrap();

    eprintln!(
        "newscast: skew {:.2} edge {:.3} gini {:.3} | swapper: skew {:.2} edge {:.3} gini {:.3}",
        news_final.skew(),
        news_final.attacker_edge_fraction,
        news_final.in_degree_gini,
        swap_final.skew(),
        swap_final.attacker_edge_fraction,
        swap_final.in_degree_gini,
    );

    // Clean share would be skew ≈ 1 and edge fraction ≈ 2 %.
    assert!(
        news_final.skew() >= 4.0,
        "hub attackers failed to capture newscast in-degree: {news_final:?}"
    );
    assert!(
        news_final.attacker_edge_fraction >= 0.10,
        "hub attackers failed to poison newscast views: {news_final:?}"
    );
    // Swapper bounds the capture: well below newscast on both axes.
    assert!(
        swap_final.skew() <= news_final.skew() / 2.0,
        "swapper did not bound skew: swapper {swap_final:?} vs newscast {news_final:?}"
    );
    assert!(
        swap_final.attacker_edge_fraction <= news_final.attacker_edge_fraction / 2.0,
        "swapper did not bound poisoning: swapper {swap_final:?} vs newscast {news_final:?}"
    );
    // The attack biases sampling, it does not partition the honest overlay.
    assert!(news_final.honest_component_fraction() >= 0.75);
    assert!(swap_final.honest_component_fraction() >= 0.95);
}

/// (b) Cross-engine statistical agreement: the cycle engine and the event
/// engine (jitter + latency + loss) see the same hub attack with agreeing
/// attack metrics, and execute the identical membership trajectory.
#[test]
fn cycle_and_event_agree_on_attack_metrics() {
    let workload = Workload::parse("adv:hub@0.02,quiet:20", 71).unwrap();
    let compiled = workload.compile(N);

    let mut cycle = cycle_sim(&newscast(), &workload, 19, 2);
    let (cycle_records, cycle_audit) = run_attacked(&mut cycle, &compiled, C);
    let mut event = event_sim(&newscast(), &workload, 19, 2);
    let (event_records, event_audit) = run_attacked(&mut event, &compiled, C);

    for (c_rec, e_rec) in cycle_records.iter().zip(event_records.iter()) {
        assert_eq!(
            (c_rec.live, c_rec.killed, c_rec.joined),
            (e_rec.live, e_rec.killed, e_rec.joined)
        );
    }

    let c_final = cycle_audit.final_record().unwrap();
    let e_final = event_audit.final_record().unwrap();
    eprintln!(
        "cycle: skew {:.2} edge {:.3} | event: skew {:.2} edge {:.3}",
        c_final.skew(),
        c_final.attacker_edge_fraction,
        e_final.skew(),
        e_final.attacker_edge_fraction,
    );
    // Both engines agree the attack succeeded, to comparable degree.
    assert!(c_final.skew() >= 4.0, "{c_final:?}");
    assert!(e_final.skew() >= 4.0, "{e_final:?}");
    assert!(
        (c_final.attacker_edge_fraction - e_final.attacker_edge_fraction).abs() <= 0.15,
        "attacker-edge fraction diverged: cycle {c_final:?} vs event {e_final:?}"
    );
}

/// The PeerSwap-style randomness audit: an observer's one-sample-per-period
/// stream is consistent with uniform on a clean run and wildly inconsistent
/// under a hub attack.
#[test]
fn chi_square_audit_passes_clean_and_flags_hub_attack() {
    const PERIODS: usize = 600;
    let clean = Workload::parse(&format!("quiet:{PERIODS}"), 81).unwrap();
    let attacked = Workload::parse(&format!("adv:hub@0.02,quiet:{PERIODS}"), 81).unwrap();

    let run = |workload: &Workload| {
        let compiled = workload.compile(N);
        let roles = compiled.adversary;
        // Observer: the largest honest initial id.
        let observer = (0..N as u64)
            .map(NodeId::new)
            .rfind(|&id| roles.is_none_or(|r| !r.is_attacker(id)))
            .unwrap();
        let mut sim = cycle_sim(&newscast(), workload, 29, 2);
        let mut audit = SampleAudit::new(97);
        run_workload_observed(&mut sim, &compiled, C, &mut |_, rows, _| {
            if let Ok(i) = rows.binary_search_by_key(&observer, |(id, _)| *id) {
                audit.observe(&rows[i].1);
            }
        });
        let universe = (0..N as u64).map(NodeId::new).filter(|&id| id != observer);
        (audit.chi_square(universe).unwrap(), audit, roles, observer)
    };

    let (clean_verdict, ..) = run(&clean);
    let (attacked_verdict, attacked_audit, roles, _) = run(&attacked);
    let roles = roles.unwrap();
    let attacker_share = attacked_audit.samples_matching(|id| roles.is_attacker(id)) as f64
        / attacked_audit.samples() as f64;
    eprintln!(
        "clean: stat {:.1} p {:.4} | attacked: stat {:.1} p {:.2e} attacker share {:.3}",
        clean_verdict.statistic,
        clean_verdict.p_value,
        attacked_verdict.statistic,
        attacked_verdict.p_value,
        attacker_share,
    );

    assert!(
        clean_verdict.passes(1e-3),
        "clean run failed the uniformity audit: {clean_verdict:?}"
    );
    assert!(
        !attacked_verdict.passes(1e-6),
        "hub attack slipped past the uniformity audit: {attacked_verdict:?}"
    );
    // The flagged non-uniformity is the attack: 2 % of ids soak up a
    // grossly disproportionate share of the observer's samples.
    assert!(
        attacker_share >= 0.10,
        "attacker ids should dominate the sample stream: {attacker_share}"
    );
}

/// Eclipse: a 10 % colluder set pounding 8 victims isolates them under
/// newscast — victims' views become 100 % attacker-controlled within the
/// run — while the rest of the honest overlay stays intact. (The colluder
/// set must exceed the view size, else deduplicated victim views can never
/// be fully attacker-controlled.)
#[test]
fn eclipse_attack_isolates_its_victims() {
    let workload = Workload::parse("adv:eclipse@0.1>victims:8,quiet:30", 91).unwrap();
    let compiled = workload.compile(N);
    let roles = compiled.adversary.unwrap();
    assert_eq!(roles.victim_count(), 8);

    let mut sim = cycle_sim(&newscast(), &workload, 37, 2);
    let (_, audit): (Vec<PeriodRecord>, AttackAudit) = run_attacked(&mut sim, &compiled, C);

    let isolated = audit.isolated_victims();
    let final_record = audit.final_record().unwrap();
    eprintln!(
        "isolated {}/8, final eclipsed {}, isolation {:?}",
        isolated, final_record.eclipsed_victims, audit.isolation
    );
    assert!(
        isolated >= 6,
        "eclipse failed to isolate victims: {:?}",
        audit.isolation
    );
    // Targeted attack: the wider honest overlay is not destroyed.
    assert!(
        final_record.honest_component_fraction() >= 0.90,
        "{final_record:?}"
    );
}
