//! Cross-engine workload conformance: the same compiled schedule —
//! churn, catastrophe, flash crowd, partition/heal — must (a) be
//! bit-deterministic per `(seed, shard_count)` at any worker count on the
//! sharded engines, (b) produce statistically agreeing recovery
//! trajectories across engines, and (c) satisfy the self-healing bounds
//! (dead-link decay, largest-live-component recovery) on every schedule in
//! the family — generalizing `tests/self_healing.rs` from one hand-rolled
//! catastrophe to the whole schedule family.

mod common;

use common::view_digest;
use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::workload::{run_workload, PeriodRecord, Workload};
use pss_sim::{EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation, Simulation};

const N: usize = 200;
const C: usize = 15;

fn headline_policies() -> [(&'static str, PolicyTriple); 3] {
    [
        ("newscast", PolicyTriple::newscast()),
        ("lpbcast", PolicyTriple::lpbcast()),
        (
            "tail-pushpull",
            "(tail,tail,pushpull)".parse().expect("valid policy"),
        ),
    ]
}

/// The schedule family under test. Every schedule starts with a quiet
/// convergence window so dynamics hit a warm overlay.
fn schedule_family() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "churn",
            Workload::parse("quiet:6,churn:0.02x12", 41).unwrap(),
        ),
        (
            "catastrophe",
            Workload::parse("quiet:6,kill:0.5,churn:0.01x14", 42).unwrap(),
        ),
        (
            "flash-crowd",
            Workload::parse("quiet:6,flash:100,quiet:10", 43).unwrap(),
        ),
        (
            "partition",
            Workload::parse("quiet:6,part:2x3,quiet:8", 44).unwrap(),
        ),
    ]
}

fn event_config() -> EventConfig {
    EventConfig {
        period: 100,
        jitter: 20,
        latency: LatencyModel::Uniform { min: 1, max: 20 },
        loss_probability: 0.02,
    }
}

/// Tree-bootstrapped sharded event engine (node `i` knows node `i / 2`).
fn event_sim(policy: PolicyTriple, seed: u64, shards: usize) -> ShardedEventSimulation {
    let protocol = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim =
        ShardedEventSimulation::new(protocol, event_config(), seed, shards).expect("valid");
    for i in 0..N as u64 {
        let seeds: Vec<NodeDescriptor> = if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        };
        sim.add_node(seeds);
    }
    sim
}

/// Tree-bootstrapped sharded cycle engine.
fn cycle_sim(policy: PolicyTriple, seed: u64, shards: usize) -> ShardedSimulation {
    let protocol = ProtocolConfig::new(policy, C).expect("valid");
    let mut sim = ShardedSimulation::new(protocol, seed, shards);
    for i in 0..N as u64 {
        let seeds: Vec<NodeDescriptor> = if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        };
        sim.add_node(seeds);
    }
    sim
}

/// (a) Bit-determinism: for a fixed `(seed, shard_count)`, the full
/// per-period trajectory and the final overlay are identical at any worker
/// count — for every headline policy and every schedule in the family, on
/// both sharded engines.
#[test]
fn every_schedule_is_bit_deterministic_across_worker_counts() {
    for (policy_name, policy) in headline_policies() {
        for (schedule_name, workload) in schedule_family() {
            let compiled = workload.compile(N);

            let run_event = |workers: usize| {
                let mut sim = event_sim(policy, 7, 2);
                sim.set_workers(workers);
                let records = run_workload(&mut sim, &compiled, C);
                (records, view_digest(|f| sim.for_each_live_view(f)))
            };
            let (records1, digest1) = run_event(1);
            let (records2, digest2) = run_event(2);
            assert_eq!(
                records1, records2,
                "event-engine records diverged across worker counts \
                 ({policy_name}, {schedule_name})"
            );
            assert_eq!(
                digest1, digest2,
                "event-engine overlays diverged across worker counts \
                 ({policy_name}, {schedule_name})"
            );

            let run_cycle = |workers: usize| {
                let mut sim = cycle_sim(policy, 7, 2);
                sim.set_workers(workers);
                let records = run_workload(&mut sim, &compiled, C);
                (records, view_digest(|f| sim.for_each_live_view(f)))
            };
            let (records1, digest1) = run_cycle(1);
            let (records2, digest2) = run_cycle(2);
            assert_eq!(
                records1, records2,
                "cycle-engine records diverged across worker counts \
                 ({policy_name}, {schedule_name})"
            );
            assert_eq!(
                digest1, digest2,
                "cycle-engine overlays diverged across worker counts \
                 ({policy_name}, {schedule_name})"
            );
        }
    }
}

/// The sequential wrapper stays the literal 1-shard special case under
/// workload driving: `Simulation` and 1-shard `ShardedSimulation` produce
/// identical trajectories for the same schedule.
#[test]
fn sequential_wrapper_matches_one_shard_under_workloads() {
    let compiled = Workload::parse("quiet:4,kill:0.3,churn:0.02x6", 3)
        .unwrap()
        .compile(N);
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid");
    let mut wrapper = Simulation::new(protocol.clone(), 5);
    let mut sharded = ShardedSimulation::new(protocol, 5, 1);
    for sim_adds in 0..N as u64 {
        let seeds: Vec<NodeDescriptor> = if sim_adds == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(sim_adds / 2))]
        };
        wrapper.add_node(seeds.clone());
        sharded.add_node(seeds);
    }
    let a = run_workload(&mut wrapper, &compiled, C);
    let b = run_workload(&mut sharded, &compiled, C);
    assert_eq!(a, b);
    assert_eq!(
        view_digest(|f| wrapper.as_sharded().for_each_live_view(f)),
        view_digest(|f| sharded.for_each_live_view(f))
    );
}

/// (b) Cross-engine statistical agreement on the acceptance schedule
/// (catastrophic 50% kill, 1%/period churn thereafter): the cycle engine
/// (the paper's SkipDead model) and the event engine (liveness-blind,
/// jitter + latency + loss) must both recover — ≥ 99% full views by the
/// pinned period, post-recovery in-degree means within 1.0 of each other.
#[test]
fn cycle_and_event_recovery_trajectories_agree() {
    let workload = Workload::parse("quiet:10,kill:0.5,churn:0.01x20", 42).unwrap();
    let compiled = workload.compile(N);

    let mut cycle = cycle_sim(PolicyTriple::newscast(), 11, 2);
    let cycle_records = run_workload(&mut cycle, &compiled, C);
    let mut event = event_sim(PolicyTriple::newscast(), 11, 2);
    let event_records = run_workload(&mut event, &compiled, C);

    // Pinned recovery period: 14 periods after the kill at period 11.
    const RECOVERED_BY: usize = 25;
    for records in [&cycle_records, &event_records] {
        let r = &records[RECOVERED_BY - 1];
        assert!(
            r.full_fraction() >= 0.99,
            "not ≥99% full views by period {RECOVERED_BY}: {r:?}"
        );
    }
    for p in RECOVERED_BY..compiled.periods() as usize {
        let (c_rec, e_rec) = (&cycle_records[p], &event_records[p]);
        assert!(
            (c_rec.in_degree_mean - e_rec.in_degree_mean).abs() <= 1.0,
            "post-recovery in-degree means diverged at period {}: cycle {c_rec:?} vs event {e_rec:?}",
            p + 1
        );
    }
    // Both engines executed the identical membership trajectory.
    for (c_rec, e_rec) in cycle_records.iter().zip(event_records.iter()) {
        assert_eq!(
            (c_rec.live, c_rec.killed, c_rec.joined),
            (e_rec.live, e_rec.killed, e_rec.joined)
        );
    }
}

/// (c) Self-healing bounds across the schedule family, on the event
/// engine with jitter, latency and loss on.
#[test]
fn self_healing_bounds_hold_for_every_schedule() {
    let check = |records: &[PeriodRecord], name: &str| {
        let last = records.last().unwrap();
        assert!(
            last.dead_link_fraction() <= 0.06,
            "{name}: dead links did not decay: {last:?}"
        );
        assert!(
            last.component_fraction() >= 0.98,
            "{name}: live overlay did not recover: {last:?}"
        );
        assert!(
            last.full_fraction() >= 0.95,
            "{name}: views did not refill: {last:?}"
        );
    };

    for (name, workload) in schedule_family() {
        let compiled = workload.compile(N);
        let mut sim = event_sim(PolicyTriple::newscast(), 23, 2);
        let records = run_workload(&mut sim, &compiled, C);
        check(&records, name);

        match name {
            "catastrophe" => {
                // Half the population died at period 7: the damage must be
                // visible before it heals (healing is the claim, not the
                // absence of damage).
                assert!(records[6].killed >= N / 2, "{:?}", records[6]);
                assert!(records[6].dead_link_fraction() >= 0.3, "{:?}", records[6]);
                // Exponential decay: monotone-ish halving over recovery.
                let mid = &records[15];
                assert!(
                    mid.dead_link_fraction() < records[6].dead_link_fraction() / 2.0,
                    "decay too slow: {mid:?}"
                );
            }
            "churn" => {
                // Sustained 2%/period churn keeps dead links bounded.
                for r in &records[6..] {
                    assert!(
                        r.dead_link_fraction() <= 0.2,
                        "churn dead links unbounded: {r:?}"
                    );
                    assert!(r.component_fraction() >= 0.95, "{r:?}");
                }
            }
            "flash-crowd" => {
                // 100 joiners all integrated: population grew, everyone
                // reaches a full view by the end.
                assert_eq!(records.last().unwrap().live, N + 100);
                assert_eq!(records[6].joined, 100);
            }
            "partition" => {
                // Covered in detail below.
            }
            other => panic!("unknown schedule {other}"),
        }
    }
}

/// Partition/heal in detail: the loss matrix actually blocks traffic
/// (dropped messages spike), a *short* partition leaves enough stale
/// cross-group descriptors for the overlay to re-merge after healing, and
/// the healed overlay recovers full quality.
#[test]
fn short_partition_blocks_traffic_then_remerges() {
    let workload = Workload::parse("quiet:6,part:2x3,quiet:8", 9).unwrap();
    let compiled = workload.compile(N);
    let mut sim = event_sim(PolicyTriple::newscast(), 31, 2);

    let records = run_workload(&mut sim, &compiled, C);
    let report = sim.report();
    assert!(
        report.dropped_messages > (N as u64) / 2,
        "partition never blocked traffic: {report:?}"
    );
    for r in &records[6..9] {
        assert!(r.partitioned, "{r:?}");
    }
    let last = records.last().unwrap();
    assert!(!last.partitioned);
    assert_eq!(
        last.largest_component, N,
        "overlay failed to re-merge after a short partition: {last:?}"
    );
    assert!(last.full_fraction() >= 0.99, "{last:?}");
    assert!(
        (last.in_degree_mean - C as f64).abs() < 0.5,
        "healed overlay should be converged: {last:?}"
    );
}

/// A *long* partition is genuinely destructive under head view selection:
/// cross-group descriptors age out, the live communication graph splits
/// into the two groups, and healing the loss matrix cannot re-merge what
/// no view remembers. This is the honest gossip result — partitions heal
/// only if the partition is shorter than the views' memory.
#[test]
fn long_partition_splits_the_overlay() {
    let workload = Workload::parse("quiet:6,part:2x20,quiet:6", 9).unwrap();
    let compiled = workload.compile(N);
    let mut sim = event_sim(PolicyTriple::newscast(), 13, 2);
    let records = run_workload(&mut sim, &compiled, C);

    // Hop-count freshness decays cross-group entries slowly (they only
    // age on transfer), so the split takes a dozen-plus periods — but late
    // in the partition no component spans both groups any more (and the
    // marooned halves may fragment further as views collapse onto
    // self-reinforcing subsets).
    let during = &records[25];
    assert!(during.partitioned);
    assert!(
        during.component_fraction() <= 0.55,
        "cross-group links should have aged out: {during:?}"
    );
    // And the split survives the heal: no view remembers the other side.
    let last = records.last().unwrap();
    assert!(!last.partitioned);
    assert!(
        last.component_fraction() <= 0.55,
        "nothing should re-introduce the groups: {last:?}"
    );
}

/// Sibling of [`long_partition_splits_the_overlay`]: the same 20-period
/// partition, now as a lossy matrix (65% cross-group loss) instead of a
/// total egress block, run under both freshness modes on both sharded
/// engines.
///
/// The trickle of surviving cross-group exchanges is what separates the
/// modes. Under [`Freshness::HopCount`] a descriptor's age inflates by one
/// on *every* transfer, so trickle-delivered cross entries — which arrive
/// via long relay chains — age past the head-selection eviction bar while
/// the short-hop in-group traffic stays young: the cross population dies
/// and the overlay maroons exactly as in the total-block pin. Under
/// [`Freshness::Timestamp`] age is the owner's clock reading, transit adds
/// nothing, so the same trickle sustains a standing cross-group population
/// through the partition and the overlay re-merges fully after heal.
///
/// The run is bit-deterministic per `(engine seed, shards)`; the pinned
/// seed makes the demonstration exact. The effect is statistical but
/// strong: at this loss rate, over seeds 1..=20 on both engines, timestamp
/// healed 20/40 runs while hop-count healed 4/40.
#[test]
fn timestamp_freshness_heals_the_lossy_long_partition() {
    use pss_core::Freshness;
    let workload = Workload::parse("quiet:6,part:2x20@0.65,quiet:15", 9).unwrap();
    let compiled = workload.compile(N);
    let engine_seed = 7;

    let with_freshness =
        |sim_protocol: ProtocolConfig, f: Freshness| sim_protocol.with_freshness(f);
    let build_event = |f: Freshness| {
        let protocol = with_freshness(
            ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid"),
            f,
        );
        let mut sim =
            ShardedEventSimulation::new(protocol, event_config(), engine_seed, 2).expect("valid");
        for i in 0..N as u64 {
            let seeds: Vec<NodeDescriptor> = if i == 0 {
                Vec::new()
            } else {
                vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
            };
            sim.add_node(seeds);
        }
        sim
    };
    let build_cycle = |f: Freshness| {
        let protocol = with_freshness(
            ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid"),
            f,
        );
        let mut sim = ShardedSimulation::new(protocol, engine_seed, 2);
        for i in 0..N as u64 {
            let seeds: Vec<NodeDescriptor> = if i == 0 {
                Vec::new()
            } else {
                vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
            };
            sim.add_node(seeds);
        }
        sim
    };

    for engine in ["event", "cycle"] {
        let run = |f: Freshness| -> Vec<PeriodRecord> {
            if engine == "event" {
                run_workload(&mut build_event(f), &compiled, C)
            } else {
                run_workload(&mut build_cycle(f), &compiled, C)
            }
        };

        // Hop-count mode: marooned, same as the total-block pin.
        let hop = run(Freshness::HopCount);
        let hop_last = hop.last().unwrap();
        assert!(!hop_last.partitioned);
        assert!(
            hop_last.component_fraction() <= 0.55,
            "{engine}: hop-count should stay split after the lossy \
             partition heals: {hop_last:?}"
        );

        // Timestamp mode: the identical schedule re-merges.
        let ts = run(Freshness::Timestamp);
        let ts_last = ts.last().unwrap();
        assert!(!ts_last.partitioned);
        assert!(
            ts_last.component_fraction() >= 0.98,
            "{engine}: timestamp freshness should re-merge the overlay: \
             {ts_last:?}"
        );
        assert!(
            ts_last.dead_link_fraction() <= 0.06,
            "{engine}: healed overlay should not be full of dead links: \
             {ts_last:?}"
        );
        assert!(hop[25].partitioned && ts[25].partitioned);
    }
}
