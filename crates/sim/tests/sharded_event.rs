//! Sharded event-engine regression tests — the event-driven analogue of
//! `sharded.rs`.
//!
//! Contracts pinned here:
//!
//! 1. **1-shard equivalence** — `ShardedEventSimulation` with one shard is
//!    the sequential `EventSimulation`: identical per-event delivery order,
//!    final views, and event statistics for all three headline policies,
//!    regardless of how the run is chunked into `run_until` calls.
//! 2. **Worker invariance** — for a fixed `(seed, shard_count)`, the full
//!    per-period digest stream is bit-identical at 1, 2, or 4 workers,
//!    under timer jitter, message latency, message loss, and churn.
//! 3. **Pinned digest** — a constant digest of a tiny-scale 2-shard run;
//!    update the constant only for an intentional engine change, and say so
//!    in the commit.
//! 4. **Chunk invariance** — cross-shard mail is exchanged only at absolute
//!    bucket boundaries, so splitting a run into arbitrary `run_until`
//!    chunks can never change results.
//! 5. **Parallel bootstrap invariance** — `add_nodes_bulk` builds the same
//!    population and event schedule at any worker count, on both engines.

mod common;

use common::{digest_event_report, fnv1a, view_digest, FNV_OFFSET};
use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_graph::gen;
use pss_sim::{
    scenario, ChurnProcess, Engine, EventConfig, EventSimulation, LatencyModel,
    ShardedEventSimulation, ShardedSimulation,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn stressed_config() -> EventConfig {
    EventConfig {
        period: 500,
        jitter: 120,
        latency: LatencyModel::Uniform { min: 9, max: 60 },
        loss_probability: 0.04,
    }
}

fn views_of(
    sim: &ShardedEventSimulation<impl pss_core::GossipNode + Send>,
) -> Vec<Vec<(u64, u32)>> {
    sim.alive_ids()
        .into_iter()
        .map(|id| {
            sim.view_of(id)
                .expect("alive")
                .iter()
                .map(|d| (d.id().as_u64(), d.hop_count()))
                .collect()
        })
        .collect()
}

#[test]
fn one_shard_matches_sequential_for_headline_policies() {
    let policies: [(&str, PolicyTriple); 3] = [
        ("newscast", PolicyTriple::newscast()),
        ("lpbcast", PolicyTriple::lpbcast()),
        (
            "tail-pushpull",
            "(tail,tail,pushpull)".parse().expect("valid policy"),
        ),
    ];
    let event = EventConfig {
        period: 400,
        jitter: 90,
        latency: LatencyModel::Uniform { min: 5, max: 45 },
        loss_probability: 0.03,
    };
    for (name, policy) in policies {
        let config = ProtocolConfig::new(policy, 10).expect("valid");
        let mut topo = SmallRng::seed_from_u64(99);
        let graph = gen::uniform_view_digraph(120, 10, &mut topo);

        // The sequential engine, built through its own API...
        let mut sequential = EventSimulation::new(config.clone(), event, 31).expect("valid");
        for v in 0..graph.node_count() as u32 {
            sequential.add_node(
                graph
                    .out_neighbors(v)
                    .iter()
                    .map(|&t| NodeDescriptor::fresh(NodeId::new(t as u64))),
            );
        }
        // ...vs the 1-shard sharded engine built by the scenario
        // constructor, run in a different chunking.
        let mut sharded =
            scenario::event_from_digraph_sharded(&config, event, &graph, 31, 1).expect("valid");

        sequential.as_sharded_mut().set_record_deliveries(true);
        sharded.set_record_deliveries(true);

        sequential.run_for(4000);
        let mut at = 0u64;
        for chunk in [137u64, 600, 263, 1500, 1500] {
            at += chunk;
            sharded.run_until(at);
        }
        assert_eq!(at, 4000);

        // Per-event delivery order, bit for bit.
        let seq_log = sequential.as_sharded_mut().take_deliveries();
        let sharded_log = sharded.take_deliveries();
        assert_eq!(seq_log, sharded_log, "{name}: delivery order diverged");
        assert!(!sharded_log.is_empty(), "{name}: no deliveries recorded");

        // CycleReport-equivalent statistics.
        assert_eq!(
            sequential.report(),
            sharded.report(),
            "{name}: reports diverged"
        );

        // Final views.
        assert_eq!(
            views_of(sequential.as_sharded()),
            views_of(&sharded),
            "{name}: views diverged"
        );
    }
}

/// Runs a 4-shard event simulation under jitter + latency + loss + churn
/// and digests every period's report and overlay stream.
fn stressed_run(workers: usize) -> u64 {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
    let mut sim = scenario::event_random_overlay_sharded(&config, stressed_config(), 120, 77, 4)
        .expect("valid");
    sim.set_workers(workers);
    let mut churn = ChurnProcess::balanced(0.03, 2);
    let mut digest = FNV_OFFSET;
    for period in 0..10 {
        let (killed, joined) = churn.step(&mut sim);
        fnv1a(&mut digest, killed as u64);
        fnv1a(&mut digest, joined as u64);
        // Engine-generic drive: one gossip period per cycle.
        let report = Engine::run_cycle(&mut sim);
        fnv1a(&mut digest, report.completed);
        fnv1a(&mut digest, report.failed_dead_peer);
        fnv1a(&mut digest, report.empty_view);
        fnv1a(&mut digest, report.dropped_messages);
        fnv1a(&mut digest, view_digest(|f| sim.for_each_live_view(f)));
        if period == 5 {
            // Mid-run mass failure exercises the dead-delivery paths.
            sim.kill_random_fraction(0.2);
            fnv1a(&mut digest, sim.alive_count() as u64);
        }
    }
    digest_event_report(&mut digest, &sim.report());
    fnv1a(&mut digest, sim.dead_link_count() as u64);
    fnv1a(&mut digest, sim.events_processed());
    digest
}

#[test]
fn worker_count_never_changes_results() {
    let one = stressed_run(1);
    let two = stressed_run(2);
    let four = stressed_run(4);
    assert_eq!(one, two, "1 vs 2 workers diverged");
    assert_eq!(one, four, "1 vs 4 workers diverged");
}

/// The pinned digest: `Scale::tiny()` parameters (N = 300, c = 15, seed
/// 20040601) on 2 shards, 20 gossip periods of the default event config.
/// If this fails and you did not intend to change engine semantics, you
/// broke determinism.
#[test]
fn pinned_digest_at_tiny_scale() {
    // The persistent worker pool must be invisible to results: the pinned
    // value holds at every pool width, not just the historical 2.
    for workers in [1, 2, 4] {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).expect("valid");
        let mut sim = scenario::event_random_overlay_sharded(
            &config,
            EventConfig::default(),
            300,
            20040601,
            2,
        )
        .expect("valid");
        sim.set_workers(workers);
        let mut digest = FNV_OFFSET;
        for _ in 0..20 {
            sim.run_for(1000);
            digest_event_report(&mut digest, &sim.report());
        }
        fnv1a(&mut digest, view_digest(|f| sim.for_each_live_view(f)));
        assert_eq!(
            digest, PINNED_TINY_EVENT_DIGEST,
            "tiny-scale 2-shard event digest changed at {workers} workers: engine semantics moved"
        );
    }
}

/// See [`pinned_digest_at_tiny_scale`].
const PINNED_TINY_EVENT_DIGEST: u64 = 3724866096535109322;

/// The timestamp freshness axis obeys the same determinism contract as the
/// default hop-count mode on the event engine: fixed `(seed, shard_count)`
/// digests are identical at every worker count, and differ from the
/// hop-count pin (the mode is load-bearing).
#[test]
fn timestamp_freshness_is_worker_invariant() {
    use pss_core::Freshness;
    let run = |workers: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15)
            .expect("valid")
            .with_freshness(Freshness::Timestamp);
        let mut sim = scenario::event_random_overlay_sharded(
            &config,
            EventConfig::default(),
            300,
            20040601,
            2,
        )
        .expect("valid");
        sim.set_workers(workers);
        let mut digest = FNV_OFFSET;
        for _ in 0..20 {
            sim.run_for(1000);
            digest_event_report(&mut digest, &sim.report());
        }
        fnv1a(&mut digest, view_digest(|f| sim.for_each_live_view(f)));
        digest
    };
    let one = run(1);
    assert_eq!(one, run(2), "1 vs 2 workers diverged under Timestamp");
    assert_eq!(one, run(4), "1 vs 4 workers diverged under Timestamp");
    assert_ne!(
        one, PINNED_TINY_EVENT_DIGEST,
        "timestamp mode must actually change the trajectory"
    );
}

#[test]
fn chunked_runs_are_bit_identical() {
    // Cross-shard mail parks in its fixed-order lanes across mid-bucket
    // stops, so arbitrary run_until chunkings merge it identically.
    let run = |chunks: &[u64]| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 9).expect("valid");
        let mut sim = scenario::event_random_overlay_sharded(&config, stressed_config(), 90, 13, 3)
            .expect("valid");
        sim.set_record_deliveries(true);
        let mut at = 0;
        for &chunk in chunks {
            at += chunk;
            sim.run_until(at);
        }
        assert_eq!(at, 3000);
        let mut digest = FNV_OFFSET;
        for d in sim.take_deliveries() {
            fnv1a(&mut digest, d.sent);
            fnv1a(&mut digest, d.delivered);
            fnv1a(&mut digest, d.from.as_u64());
            fnv1a(&mut digest, d.to.as_u64());
            fnv1a(&mut digest, d.sent_seq);
        }
        digest_event_report(&mut digest, &sim.report());
        fnv1a(&mut digest, view_digest(|f| sim.for_each_live_view(f)));
        digest
    };
    let whole = run(&[3000]);
    assert_eq!(whole, run(&[1, 2, 4, 8, 985, 1000, 1000]));
    assert_eq!(whole, run(&[299, 1, 700, 2000]));
}

#[test]
fn shard_count_is_part_of_the_result_contract() {
    // Different shard counts legitimately produce different (equally
    // valid) trajectories — same-time deliveries tie-break in mailbox
    // order. Pin that they are not accidentally identical, so nobody
    // "simplifies" the bucket exchange into something serialized.
    let run = |shards: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
        let mut sim =
            scenario::event_random_overlay_sharded(&config, EventConfig::default(), 100, 7, shards)
                .expect("valid");
        sim.run_for(5000);
        view_digest(|f| sim.for_each_live_view(f))
    };
    assert_ne!(run(1), run(4));
}

#[test]
fn bulk_construction_is_worker_invariant_on_both_engines() {
    // Event engine: population, views, and the initial event schedule.
    let build_event = |workers: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 10).expect("valid");
        let mut sim =
            ShardedEventSimulation::typed(config, EventConfig::default(), 5, 4).expect("valid");
        sim.set_workers(workers);
        sim.add_nodes_bulk(200, |id| {
            [NodeDescriptor::fresh(NodeId::new((id.as_u64() + 1) % 200))]
        });
        // Run a little so timer phases influence state.
        sim.run_for(2500);
        let mut digest = view_digest(|f| sim.for_each_live_view(f));
        digest_event_report(&mut digest, &sim.report());
        digest
    };
    assert_eq!(build_event(1), build_event(4));

    // Cycle engine: same bulk path, same invariance.
    let build_cycle = |workers: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 10).expect("valid");
        let mut sim = ShardedSimulation::typed(config, 5, 4);
        sim.set_workers(workers);
        sim.add_nodes_bulk(200, |id| {
            [NodeDescriptor::fresh(NodeId::new((id.as_u64() + 1) % 200))]
        });
        sim.run_cycles(5);
        view_digest(|f| sim.for_each_live_view(f))
    };
    assert_eq!(build_cycle(1), build_cycle(4));
}

#[test]
fn joins_after_a_frozen_bucket_respect_the_lookahead() {
    // Ending a run one tick short of a bucket boundary freezes that bucket
    // (its mail is already exchanged). A joiner drawing timer phase 0 would
    // land inside it; the engine must clamp the timer to the processing
    // frontier or a cross-shard message comes due before the next boundary
    // (the merge-path debug_assert catches the violation in debug builds).
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
    let event = EventConfig {
        period: 50,
        jitter: 0,
        latency: LatencyModel::Uniform { min: 10, max: 10 },
        loss_probability: 0.0,
    };
    let mut sim = ShardedEventSimulation::typed(config, event, 40, 2).expect("valid");
    sim.add_connected_nodes(10);
    sim.run_until(9); // frontier lands exactly on the bucket boundary (10)
    for _ in 0..200 {
        // 200 control-RNG phase draws from [0, 50): phase 0 occurs.
        sim.add_nodes_with_random_contacts(1, 2);
    }
    sim.run_until(2000);
    assert_eq!(sim.now(), 2000);
    assert_eq!(sim.alive_count(), 210);
    assert!(sim.report().exchanges_completed > 0);
}

#[test]
fn run_to_exhaustion_near_u64_max_does_not_overflow() {
    // run_until(u64::MAX) is the idiomatic "drain everything" call; the
    // saturated frontier must not overflow the bucket arithmetic when the
    // engine is driven again afterwards.
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
    let event = EventConfig {
        period: 100,
        jitter: 0,
        latency: LatencyModel::Uniform { min: 7, max: 13 },
        loss_probability: 0.0,
    };
    let mut sim = ShardedEventSimulation::typed(config, event, 3, 2).expect("valid");
    assert_eq!(sim.run_until(u64::MAX), 0);
    assert_eq!(sim.now(), u64::MAX);
    assert_eq!(sim.run_for(1000), 0);
    assert_eq!(sim.run_until(u64::MAX), 0);
}

#[test]
fn event_csr_snapshot_matches_vec_snapshot() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 7).expect("valid");
    let mut sim = scenario::event_random_overlay_sharded(&config, EventConfig::default(), 70, 3, 2)
        .expect("valid");
    sim.run_for(4000);
    sim.kill_random_fraction(0.2); // dead targets must be dropped by both
    let snap = sim.snapshot();
    let csr = sim.csr_snapshot();
    assert_eq!(snap.node_count(), csr.node_count());
    assert_eq!(snap.node_ids(), csr.node_ids());
    for v in 0..snap.node_count() as u32 {
        assert_eq!(
            snap.directed().out_neighbors(v),
            csr.graph().out_neighbors(v),
            "row {v} diverged"
        );
    }
}

/// See the cycle engine's `streaming_metrics_match_materialized_snapshot`:
/// the event engine streams the same rows, so the estimator must agree
/// with its materialized CSR too.
#[test]
fn event_streaming_metrics_match_materialized_snapshot() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 12).expect("valid");
    let mut sim =
        scenario::event_random_overlay_sharded(&config, EventConfig::default(), 500, 97, 4)
            .expect("valid");
    sim.run_for(8000);
    sim.kill_random_fraction(0.15);
    let streamed = sim.streaming_metrics();
    let csr = sim.csr_snapshot();
    assert_eq!(streamed.live_nodes, csr.node_count());
    assert_eq!(streamed.edge_count, csr.graph().edge_count() as u64);
    assert_eq!(
        streamed.largest_component,
        pss_graph::components::largest_weak_component(csr.graph())
    );
    let mut histogram = Vec::new();
    for d in csr.graph().in_degrees() {
        let d = d as usize;
        if d >= histogram.len() {
            histogram.resize(d + 1, 0u64);
        }
        histogram[d] += 1;
    }
    assert_eq!(streamed.in_degree_histogram, histogram);
}

#[test]
fn churn_and_observers_drive_the_event_engine() {
    // The Engine impl: observers and churn processes run unchanged.
    struct DegreeLog(Vec<f64>);
    impl<E: Engine> pss_sim::observe::Observer<E> for DegreeLog {
        fn observe(&mut self, ctx: &pss_sim::observe::CycleContext<'_, E>) {
            self.0.push(ctx.graph.average_degree());
        }
    }
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 12).expect("valid");
    let mut sim =
        scenario::event_random_overlay_sharded(&config, EventConfig::default(), 150, 21, 2)
            .expect("valid");
    let mut log = DegreeLog(Vec::new());
    pss_sim::observe::run_observed(&mut sim, 6, &mut [&mut log]);
    assert_eq!(log.0.len(), 6);
    assert_eq!(sim.cycle(), 6);
    assert_eq!(sim.now(), 6000);
    assert!(log.0.iter().all(|&d| d > 11.0));

    let mut churn = ChurnProcess::balanced(0.05, 2);
    let before = sim.node_count();
    for _ in 0..5 {
        churn.step(&mut sim);
        sim.run_cycle();
    }
    assert!(sim.node_count() > before, "churn joins must happen");
    assert!(sim.alive_count() > 100);
}
