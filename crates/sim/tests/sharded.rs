//! Sharded-engine regression tests.
//!
//! Three contracts are pinned here:
//!
//! 1. **Worker invariance** — for a fixed `(seed, shard_count)`, the entire
//!    per-cycle `Snapshot`/report stream is bit-identical whether the engine
//!    runs on 1, 2, or 4 worker threads.
//! 2. **Pinned digest** — a constant digest of a tiny-scale 2-shard run, so
//!    *any* accidental change to cross-shard ordering, RNG streams, or
//!    mailbox draining fails loudly (update the constant only for an
//!    intentional engine change, and say so in the commit).
//! 3. **1-shard equivalence** — `ShardedSimulation` with one shard is the
//!    sequential `Simulation`: identical `CycleReport`s and final views for
//!    all three headline policies.

mod common;

use common::{digest_report, fnv1a, FNV_OFFSET};
use pss_core::{GossipNode, NodeId, PolicyTriple, ProtocolConfig};
use pss_graph::gen;
use pss_sim::{scenario, ChurnProcess, FailureMode, ShardedSimulation};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Digest of the full overlay state (see [`common::view_digest`]).
fn view_digest<N: GossipNode + Send>(sim: &ShardedSimulation<N>) -> u64 {
    common::view_digest(|f| sim.for_each_live_view(f))
}

/// Runs a 4-shard simulation under loss + churn and digests every cycle's
/// report and snapshot stream.
fn stressed_run(workers: usize) -> u64 {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
    let mut sim = scenario::random_overlay_sharded(&config, 120, 77, 4);
    sim.set_workers(workers);
    sim.set_message_loss(0.05);
    let mut churn = ChurnProcess::balanced(0.03, 2);
    let mut digest = FNV_OFFSET;
    for cycle in 0..12 {
        let (killed, joined) = churn.step(&mut sim);
        fnv1a(&mut digest, killed as u64);
        fnv1a(&mut digest, joined as u64);
        let report = sim.run_cycle();
        digest_report(&mut digest, &report);
        fnv1a(&mut digest, view_digest(&sim));
        if cycle == 6 {
            // Mid-run mass failure exercises the dead-peer paths.
            sim.kill_random_fraction(0.2);
            fnv1a(&mut digest, sim.alive_count() as u64);
        }
    }
    fnv1a(&mut digest, sim.dead_link_count() as u64);
    digest
}

#[test]
fn worker_count_never_changes_results() {
    let one = stressed_run(1);
    let two = stressed_run(2);
    let four = stressed_run(4);
    assert_eq!(one, two, "1 vs 2 workers diverged");
    assert_eq!(one, four, "1 vs 4 workers diverged");
}

#[test]
fn worker_invariance_under_attempt_and_lose() {
    let run = |workers: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).expect("valid");
        let mut sim = scenario::random_overlay_sharded(&config, 80, 5, 3);
        sim.set_workers(workers);
        sim.set_failure_mode(FailureMode::AttemptAndLose);
        sim.kill_random_fraction(0.3);
        let mut digest = 0u64;
        for _ in 0..8 {
            digest_report(&mut digest, &sim.run_cycle());
            fnv1a(&mut digest, view_digest(&sim));
        }
        digest
    };
    assert_eq!(run(1), run(3));
}

/// The pinned digest: `Scale::tiny()` parameters (N = 300, c = 15,
/// 60 cycles, seed 20040601) on 2 shards. If this fails and you did not
/// intend to change engine semantics, you broke determinism.
///
/// History: re-pinned once when `random_overlay_sharded` switched from
/// serial `add_node` (control-RNG node seeds) to worker-parallel
/// `add_nodes_bulk` ((seed, id)-pure node seeds) — a declared reseeding,
/// not an engine change (previous value: 11722229421366107334).
#[test]
fn pinned_digest_at_tiny_scale() {
    // The persistent worker pool must be invisible to results: the pinned
    // value holds at every pool width, not just the historical 2.
    for workers in [1, 2, 4] {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).expect("valid");
        let mut sim = scenario::random_overlay_sharded(&config, 300, 20040601, 2);
        sim.set_workers(workers);
        let mut digest = FNV_OFFSET;
        for _ in 0..60 {
            digest_report(&mut digest, &sim.run_cycle());
        }
        fnv1a(&mut digest, view_digest(&sim));
        assert_eq!(
            digest, PINNED_TINY_DIGEST,
            "tiny-scale 2-shard digest changed at {workers} workers: engine semantics moved"
        );
    }
}

/// See [`pinned_digest_at_tiny_scale`].
const PINNED_TINY_DIGEST: u64 = 17857917930071933123;

/// The timestamp freshness axis obeys the same determinism contract as the
/// default hop-count mode: for a fixed `(seed, shard_count)` the digest is
/// identical at every worker count. (The hop-count digest above pins that
/// adding the axis changed nothing for existing configs; this pins that
/// the new mode is itself worker-invariant.)
#[test]
fn timestamp_freshness_is_worker_invariant() {
    use pss_core::Freshness;
    let run = |workers: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15)
            .expect("valid")
            .with_freshness(Freshness::Timestamp);
        let mut sim = scenario::random_overlay_sharded(&config, 300, 20040601, 2);
        sim.set_workers(workers);
        let mut digest = FNV_OFFSET;
        for _ in 0..60 {
            digest_report(&mut digest, &sim.run_cycle());
        }
        fnv1a(&mut digest, view_digest(&sim));
        digest
    };
    let one = run(1);
    assert_eq!(one, run(2), "1 vs 2 workers diverged under Timestamp");
    assert_eq!(one, run(4), "1 vs 4 workers diverged under Timestamp");
    assert_ne!(
        one, PINNED_TINY_DIGEST,
        "timestamp mode must actually change the trajectory"
    );
}

#[test]
fn one_shard_matches_sequential_for_headline_policies() {
    let policies: [(&str, PolicyTriple); 3] = [
        ("newscast", PolicyTriple::newscast()),
        ("lpbcast", PolicyTriple::lpbcast()),
        (
            "tail-pushpull",
            "(tail,tail,pushpull)".parse().expect("valid policy"),
        ),
    ];
    for (name, policy) in policies {
        let config = ProtocolConfig::new(policy, 10).expect("valid");
        let mut topo = SmallRng::seed_from_u64(99);
        let graph = gen::uniform_view_digraph(150, 10, &mut topo);

        let mut sequential = scenario::from_digraph(&config, &graph, 31);
        let mut sharded = scenario::from_digraph_sharded(&config, &graph, 31, 1);

        for cycle in 0..10 {
            let seq_report = sequential.run_cycle();
            let sharded_report = sharded.run_cycle();
            assert_eq!(
                seq_report, sharded_report,
                "{name}: cycle {cycle} reports diverged"
            );
        }
        for id in sequential.alive_ids() {
            let seq_view: Vec<(u64, u32)> = sequential
                .view_of(id)
                .expect("alive")
                .iter()
                .map(|d| (d.id().as_u64(), d.hop_count()))
                .collect();
            let sharded_view: Vec<(u64, u32)> = sharded
                .view_of(id)
                .expect("alive")
                .iter()
                .map(|d| (d.id().as_u64(), d.hop_count()))
                .collect();
            assert_eq!(seq_view, sharded_view, "{name}: view of {id} diverged");
        }
    }
}

#[test]
fn shard_count_is_part_of_the_result_contract() {
    // Different shard counts legitimately produce different (equally valid)
    // trajectories, exactly like different seeds. Pin that they are not
    // accidentally identical, so nobody "simplifies" the mailbox phase into
    // something that silently serializes.
    let run = |shards: usize| {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).expect("valid");
        let mut sim = scenario::random_overlay_sharded(&config, 100, 7, shards);
        sim.run_cycles(5);
        view_digest(&sim)
    };
    assert_ne!(run(1), run(4));
}

#[test]
fn multi_shard_population_and_view_invariants_hold_under_churn() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 9).expect("valid");
    let mut sim = scenario::random_overlay_sharded(&config, 90, 13, 3);
    let mut churn = ChurnProcess::balanced(0.05, 2);
    for _ in 0..15 {
        churn.step(&mut sim);
        sim.run_cycle();
    }
    let alive = sim.alive_ids();
    assert_eq!(alive.len(), sim.alive_count());
    assert!(alive.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
    for &id in &alive {
        let view = sim.view_of(id).expect("alive");
        assert!(view.len() <= 9);
        assert!(!view.contains(id));
        assert!(view.invariants_hold());
        for d in view.iter() {
            assert!((d.id().as_u64() as usize) < sim.node_count());
        }
    }
}

#[test]
fn csr_snapshot_matches_vec_snapshot() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 7).expect("valid");
    let mut sim = scenario::random_overlay_sharded(&config, 70, 3, 2);
    sim.run_cycles(4);
    sim.kill_random_fraction(0.2); // dead targets must be dropped by both
    let snap = sim.snapshot();
    let csr = sim.csr_snapshot();
    assert_eq!(snap.node_count(), csr.node_count());
    assert_eq!(snap.node_ids(), csr.node_ids());
    for v in 0..snap.node_count() as u32 {
        // DiGraph sorts out-neighbors, CSR sorts too: directly comparable.
        assert_eq!(
            snap.directed().out_neighbors(v),
            csr.graph().out_neighbors(v),
            "row {v} diverged"
        );
    }
    assert_eq!(csr.index_of(csr.node_id(0)), Some(0));
    assert_eq!(csr.index_of(NodeId::new(u64::MAX >> 1)), None);
}

/// The streaming estimator must agree with the materialized CSR path on a
/// mid-size overlay with dead links in play — same component size, same
/// in-degree histogram, same edge count, without ever building the edge
/// array.
#[test]
fn streaming_metrics_match_materialized_snapshot() {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 12).expect("valid");
    let mut sim = scenario::random_overlay_sharded(&config, 800, 97, 4);
    sim.run_cycles(8);
    sim.kill_random_fraction(0.15); // dead targets must be dropped by both
    let streamed = sim.streaming_metrics();
    let csr = sim.csr_snapshot();
    assert_eq!(streamed.live_nodes, csr.node_count());
    assert_eq!(streamed.edge_count, csr.graph().edge_count() as u64);
    assert_eq!(
        streamed.largest_component,
        pss_graph::components::largest_weak_component(csr.graph())
    );
    let mut histogram = Vec::new();
    for d in csr.graph().in_degrees() {
        let d = d as usize;
        if d >= histogram.len() {
            histogram.resize(d + 1, 0u64);
        }
        histogram[d] += 1;
    }
    assert_eq!(streamed.in_degree_histogram, histogram);
}
