//! Digest helpers shared by the sharded-engine regression tests
//! (`sharded.rs` for the cycle engine, `sharded_event.rs` for the event
//! engine). Determinism contracts are pinned as FNV-1a digests of report
//! streams and full overlay state; any accidental change to RNG streams,
//! mailbox ordering, or bucket exchange changes the digest and fails
//! loudly.

// Each integration-test target compiles its own copy and uses a subset.
#![allow(dead_code)]

use pss_core::{NodeId, View};
use pss_sim::{CycleReport, EventReport};

/// The FNV-1a offset basis: the canonical digest seed.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a `u64` stream: stable, dependency-free fingerprinting.
pub fn fnv1a(digest: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *digest ^= byte as u64;
        *digest = digest.wrapping_mul(0x1000_0000_01b3);
    }
}

/// Digest of the full overlay state: every live node's id and exact view
/// contents (ids and hop counts, in stored order). `for_each` adapts an
/// engine's `for_each_live_view` — pass `|f| sim.for_each_live_view(f)`.
pub fn view_digest(for_each: impl Fn(&mut dyn FnMut(NodeId, &View))) -> u64 {
    let mut digest = FNV_OFFSET;
    for_each(&mut |id, view| {
        fnv1a(&mut digest, id.as_u64());
        for d in view.iter() {
            fnv1a(&mut digest, d.id().as_u64());
            fnv1a(&mut digest, d.hop_count() as u64);
        }
    });
    digest
}

/// Folds a cycle report into the digest.
pub fn digest_report(digest: &mut u64, report: &CycleReport) {
    fnv1a(digest, report.completed);
    fnv1a(digest, report.failed_dead_peer);
    fnv1a(digest, report.empty_view);
    fnv1a(digest, report.dropped_messages);
}

/// Folds an event report into the digest.
pub fn digest_event_report(digest: &mut u64, report: &EventReport) {
    fnv1a(digest, report.timers_fired);
    fnv1a(digest, report.empty_view);
    fnv1a(digest, report.requests_delivered);
    fnv1a(digest, report.replies_delivered);
    fnv1a(digest, report.exchanges_completed);
    fnv1a(digest, report.dead_deliveries);
    fnv1a(digest, report.dropped_messages);
}
