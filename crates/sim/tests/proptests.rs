//! Property-based tests for the simulators.

use proptest::prelude::*;
use pss_core::{NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig};
use pss_sim::workload::{Partition, PhaseSpec, Workload};
use pss_sim::{
    scenario, ChurnProcess, EventConfig, EventSimulation, FailureMode, LatencyModel,
    RateAccumulator,
};

/// Builds one grammar-expressible phase from raw draws. Rates and losses
/// are permille-quantized — exactly the precision the grammar round-trips.
fn build_phase(kind: usize, periods: u64, a: usize, b: usize, k: usize) -> PhaseSpec {
    match kind {
        0 => PhaseSpec::Quiet { periods },
        1 => PhaseSpec::Churn {
            periods,
            // At least one rate nonzero, or the parser (rightly) rejects
            // the phase as a disguised quiet phase.
            leave_rate: (a % 1000) as f64 / 1000.0,
            join_rate: (b % 999 + 1) as f64 / 1000.0,
            contacts: if k.is_multiple_of(2) { None } else { Some(k) },
        },
        2 => PhaseSpec::Catastrophe {
            fraction: (a % 999 + 1) as f64 / 1000.0,
        },
        3 => PhaseSpec::FlashCrowd {
            joins: k,
            contacts: if b.is_multiple_of(3) {
                Some(1 + a % 5)
            } else {
                None
            },
            herd: b % 3 == 1,
        },
        _ => {
            let groups = 2 + (k as u32 % 3);
            let (fwd, bwd) = (a % 1001, b % 1001);
            let (fwd, bwd) = if fwd == 0 && bwd == 0 {
                (1000, 1000)
            } else {
                (fwd, bwd)
            };
            PhaseSpec::Partition {
                partition: Partition::asymmetric(groups, fwd as f64 / 1000.0, bwd as f64 / 1000.0),
                periods,
            }
        }
    }
}

fn policies() -> impl Strategy<Value = PolicyTriple> {
    prop::sample::select(PolicyTriple::paper_eight().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn identical_seeds_give_identical_overlays(
        policy in policies(),
        n in 20usize..80,
        cycles in 1u64..15,
        seed in 0u64..1_000,
    ) {
        let fingerprint = |seed: u64| {
            let config = ProtocolConfig::new(policy, 8).unwrap();
            let mut sim = scenario::random_overlay(&config, n, seed);
            sim.run_cycles(cycles);
            let snap = sim.snapshot();
            let g = snap.undirected();
            (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect::<Vec<_>>()
        };
        prop_assert_eq!(fingerprint(seed), fingerprint(seed));
    }

    #[test]
    fn views_never_exceed_capacity_nor_contain_self(
        policy in policies(),
        n in 10usize..60,
        cycles in 1u64..20,
        c in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let config = ProtocolConfig::new(policy, c).unwrap();
        let mut sim = scenario::random_overlay(&config, n, seed);
        sim.run_cycles(cycles);
        for id in sim.alive_ids() {
            let view = sim.view_of(id).unwrap();
            prop_assert!(view.len() <= c);
            prop_assert!(!view.contains(id));
            prop_assert!(view.invariants_hold());
            for d in view.iter() {
                prop_assert!(d.id().as_u64() < n as u64);
            }
        }
    }

    #[test]
    fn population_counts_are_conserved(
        n in 5usize..50,
        kills in 0usize..30,
        joins in 0usize..20,
        seed in 0u64..1_000,
    ) {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap();
        let mut sim = scenario::random_overlay(&config, n, seed);
        let killed = sim.kill_random(kills).len();
        prop_assert_eq!(sim.alive_count(), n - killed);
        sim.add_nodes_with_random_contacts(joins, 2);
        prop_assert_eq!(sim.alive_count(), n - killed + joins);
        prop_assert_eq!(sim.node_count(), n + joins);
        sim.run_cycle();
        prop_assert_eq!(sim.alive_count(), n - killed + joins);
    }

    #[test]
    fn snapshot_only_contains_live_nodes(
        n in 10usize..60,
        kill_fraction in 0.0f64..0.9,
        seed in 0u64..1_000,
    ) {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap();
        let mut sim = scenario::random_overlay(&config, n, seed);
        sim.run_cycles(3);
        sim.kill_random_fraction(kill_fraction);
        let snap = sim.snapshot();
        prop_assert_eq!(snap.node_count(), sim.alive_count());
        for &id in snap.node_ids() {
            prop_assert!(sim.is_alive(id));
        }
    }

    #[test]
    fn dead_links_are_bounded_by_total_view_entries(
        n in 10usize..60,
        seed in 0u64..1_000,
    ) {
        let c = 6usize;
        let config = ProtocolConfig::new(PolicyTriple::newscast(), c).unwrap();
        let mut sim = scenario::random_overlay(&config, n, seed);
        sim.run_cycles(5);
        sim.kill_random_fraction(0.5);
        let bound = sim.alive_count() * c;
        prop_assert!(sim.dead_link_count() <= bound);
        sim.run_cycles(3);
        prop_assert!(sim.dead_link_count() <= bound);
    }

    #[test]
    fn failure_modes_agree_without_failures(
        policy in policies(),
        n in 10usize..50,
        cycles in 1u64..10,
        seed in 0u64..1_000,
    ) {
        // With no dead nodes the two failure modes are byte-identical.
        let run = |mode: FailureMode| {
            let config = ProtocolConfig::new(policy, 6).unwrap();
            let mut sim = scenario::random_overlay(&config, n, seed);
            sim.set_failure_mode(mode);
            sim.run_cycles(cycles);
            let snap = sim.snapshot();
            let g = snap.undirected();
            (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(FailureMode::SkipDead), run(FailureMode::AttemptAndLose));
    }

    #[test]
    fn event_engine_is_deterministic(
        n in 5usize..40,
        duration in 1_000u64..20_000,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
            let mut sim = EventSimulation::new(config, EventConfig::default(), seed)
                .expect("valid config");
            sim.add_node([]);
            for i in 1..n as u64 {
                sim.add_node([NodeDescriptor::fresh(NodeId::new(i / 2))]);
            }
            sim.run_for(duration);
            let snap = sim.snapshot();
            let g = snap.undirected();
            (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn event_engine_time_never_goes_backwards(
        steps in prop::collection::vec(100u64..5_000, 1..8),
        seed in 0u64..100,
    ) {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
        let mut sim = EventSimulation::new(
            config,
            EventConfig {
                period: 500,
                jitter: 100,
                latency: LatencyModel::Uniform { min: 1, max: 50 },
                loss_probability: 0.1,
            },
            seed,
        )
        .expect("valid config");
        sim.add_connected_nodes(10);
        let mut last = sim.now();
        for step in steps {
            sim.run_for(step);
            prop_assert!(sim.now() >= last);
            prop_assert!(sim.now() >= last + step);
            last = sim.now();
        }
    }

    #[test]
    fn event_bucket_exchange_invariants(
        shards in 1usize..5,
        n in 10usize..50,
        min_latency in 1u64..20,
        latency_spread in 0u64..30,
        jitter in 0u64..80,
        loss in 0.0f64..0.3,
        duration in 200u64..3_000,
        seed in 0u64..1_000,
    ) {
        // The three lookahead-engine invariants, checked on the delivery
        // log of a randomized run: (1) no message is delivered before its
        // send time plus the minimum latency; (2) a cross-shard message
        // sent in bucket k is never delivered in bucket k (the lookahead
        // window is never violated); (3) bucket-boundary exchange preserves
        // per-(src, dst) FIFO order — same-tick arrivals from one sender
        // shard are processed in send order.
        let period = 200u64;
        let event = EventConfig {
            period,
            jitter: jitter.min(period - 1),
            latency: LatencyModel::Uniform {
                min: min_latency,
                max: min_latency + latency_spread,
            },
            loss_probability: loss,
        };
        let window = min_latency; // = sim.lookahead()
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
        let mut sim = scenario::event_random_overlay_sharded(&config, event, n, seed, shards)
            .expect("valid config");
        prop_assert_eq!(sim.lookahead(), window);
        sim.set_record_deliveries(true);
        sim.run_for(duration);
        let log = sim.take_deliveries();
        prop_assert!(!log.is_empty());

        let mut last_same_tick: std::collections::HashMap<(u32, u32, u64), u64> =
            std::collections::HashMap::new();
        for d in &log {
            // (1) Physical latency floor.
            prop_assert!(
                d.delivered >= d.sent + min_latency,
                "delivered {} < sent {} + min {}", d.delivered, d.sent, min_latency
            );
            // (2) Conservative lookahead across shards.
            if d.src_shard != d.dst_shard {
                prop_assert!(
                    d.delivered / window > d.sent / window,
                    "cross-shard message crossed within its bucket: sent {} delivered {} window {}",
                    d.sent, d.delivered, window
                );
            }
            // (3) Same (src, dst) pair + same arrival tick ⇒ send order.
            let key = (d.src_shard, d.dst_shard, d.delivered);
            if let Some(&prev) = last_same_tick.get(&key) {
                prop_assert!(
                    d.sent_seq > prev,
                    "FIFO violated for {:?}: sent_seq {} after {}", key, d.sent_seq, prev
                );
            }
            last_same_tick.insert(key, d.sent_seq);
        }
    }

    #[test]
    fn event_worker_count_never_changes_results(
        shards in 2usize..5,
        workers in 2usize..5,
        n in 10usize..40,
        duration in 200u64..2_000,
        seed in 0u64..1_000,
    ) {
        // Randomized mini version of the worker-invariance regression test.
        let event = EventConfig {
            period: 150,
            jitter: 40,
            latency: LatencyModel::Uniform { min: 3, max: 25 },
            loss_probability: 0.05,
        };
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
        let run = |w: usize| {
            let mut sim =
                scenario::event_random_overlay_sharded(&config, event, n, seed, shards)
                    .expect("valid config");
            sim.set_workers(w);
            sim.run_for(duration);
            let mut views = Vec::new();
            sim.for_each_live_view(|id, view| {
                views.push((id, view.ids().collect::<Vec<_>>()));
            });
            (views, sim.report(), sim.events_processed())
        };
        prop_assert_eq!(run(1), run(workers));
    }

    #[test]
    fn rate_accumulator_totals_stay_within_carry_bounds(
        expected in 0.0f64..7.5,
        k in 1usize..200,
    ) {
        // k steps at a constant expectation emit ⌊k·e⌋ or ⌈k·e⌉ events:
        // the emitted total differs from the exact sum only by the
        // outstanding carry, which never reaches one.
        let mut acc = RateAccumulator::new();
        let total: usize = (0..k).map(|_| acc.step(expected)).sum();
        let exact = expected * k as f64;
        prop_assert!((total as f64 - exact).abs() < 1.0,
            "total {total} vs exact {exact}");
        prop_assert!((0.0..1.0).contains(&acc.carry()));
    }

    #[test]
    fn churn_counts_match_rate_times_population_within_carry_bounds(
        leave in 0.0f64..0.06,
        join in 0.0f64..0.06,
        n in 30usize..120,
        k in 1u64..25,
        seed in 0u64..1_000,
    ) {
        // Over k cycles, total kills (joins) must equal the summed
        // per-cycle expectations rate·live within the accumulator's carry
        // bound — for a constant population that is rate·N·k ± 1, with no
        // stochastic drift.
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
        let mut sim = scenario::random_overlay(&config, n, seed);
        let mut churn = ChurnProcess::new(leave, join, 2);
        let (mut expect_leave, mut expect_join) = (0.0f64, 0.0f64);
        let (mut killed, mut joined) = (0usize, 0usize);
        for _ in 0..k {
            let live = sim.alive_count() as f64;
            expect_leave += live * leave;
            expect_join += live * join;
            let (kd, jd) = churn.step(&mut sim);
            killed += kd;
            joined += jd;
            sim.run_cycle();
        }
        prop_assert!((killed as f64 - expect_leave).abs() < 1.0,
            "killed {killed} vs expected {expect_leave}");
        prop_assert!((joined as f64 - expect_join).abs() < 1.0,
            "joined {joined} vs expected {expect_join}");
        prop_assert_eq!(sim.alive_count(), n + joined - killed);
    }

    #[test]
    fn zero_rate_churn_never_mutates(
        n in 10usize..80,
        k in 1u64..20,
        seed in 0u64..1_000,
    ) {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
        let mut sim = scenario::random_overlay(&config, n, seed);
        let mut churn = ChurnProcess::new(0.0, 0.0, 3);
        for _ in 0..k {
            let (killed, joined) = churn.step(&mut sim);
            prop_assert_eq!((killed, joined), (0, 0));
        }
        prop_assert_eq!(sim.alive_count(), n);
        prop_assert_eq!(sim.node_count(), n);
    }

    #[test]
    fn growing_simulation_monotonically_reaches_target(
        target in 10usize..80,
        per_cycle in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 6).unwrap();
        let mut sim = scenario::growing_overlay(&config, target, per_cycle, seed);
        let mut previous = sim.node_count();
        for _ in 0..(target / per_cycle + 2) as u64 {
            sim.run_cycle();
            prop_assert!(sim.node_count() >= previous);
            prop_assert!(sim.node_count() <= target);
            previous = sim.node_count();
        }
        prop_assert_eq!(sim.node_count(), target);
    }

    #[test]
    fn schedule_grammar_round_trips_display_and_parse(
        phases in prop::collection::vec(
            (0usize..5, 1u64..25, 0usize..2000, 0usize..2000, 1usize..8),
            1..10,
        ),
        seed in 0u64..1_000,
    ) {
        let mut workload = Workload::new(seed);
        for (kind, periods, a, b, k) in phases {
            workload = workload.phase(build_phase(kind, periods, a, b, k));
        }
        let shown = workload.to_string();
        let reparsed = Workload::parse(&shown, seed);
        prop_assert!(reparsed.is_ok(), "display output `{}` failed to reparse: {:?}", shown, reparsed);
        prop_assert_eq!(workload, reparsed.unwrap(), "via `{}`", shown);
    }

    #[test]
    fn malformed_schedules_error_instead_of_panicking(
        schedule in prop::collection::vec(0usize..256, 0..40),
        seed in 0u64..100,
    ) {
        // Arbitrary byte soup must parse cleanly or return a typed error —
        // never panic, never silently compile phases that aren't there.
        let text: String = schedule
            .iter()
            .map(|&b| char::from_u32(b as u32).unwrap_or('?'))
            .collect();
        match Workload::parse(&text, seed) {
            Ok(w) => {
                // Whatever parsed must survive compilation and round-trip.
                let _ = w.compile(50);
                prop_assert_eq!(&Workload::parse(&w.to_string(), seed).unwrap(), &w);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
