//! Property-based tests for the statistics toolkit.

use proptest::prelude::*;
use pss_stats::{
    autocorrelation, median, quantile, white_noise_band, CountDistribution, Histogram,
    Log2Histogram, LogHistogram, Summary,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..max_len)
}

proptest! {
    #[test]
    fn summary_mean_is_bounded_by_min_max(data in finite_vec(200)) {
        let s: Summary = data.iter().copied().collect();
        if let (Some(min), Some(max)) = (s.min(), s.max()) {
            prop_assert!(s.mean() >= min - 1e-9);
            prop_assert!(s.mean() <= max + 1e-9);
        }
    }

    #[test]
    fn summary_variance_is_non_negative(data in finite_vec(200)) {
        let s: Summary = data.iter().copied().collect();
        prop_assert!(s.population_variance() >= -1e-9);
        prop_assert!(s.sample_variance() >= -1e-9);
    }

    #[test]
    fn summary_merge_equals_sequential(data in finite_vec(200), split in 0usize..200) {
        let split = split.min(data.len());
        let (l, r) = data.split_at(split);
        let mut merged: Summary = l.iter().copied().collect();
        merged.merge(&r.iter().copied().collect());
        let seq: Summary = data.iter().copied().collect();
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
        prop_assert!((merged.population_variance() - seq.population_variance()).abs()
            < 1e-3 * (1.0 + seq.population_variance()));
    }

    #[test]
    fn autocorrelation_lag_zero_is_one_and_bounded(data in finite_vec(100), max_lag in 0usize..50) {
        let ac = autocorrelation(&data, max_lag);
        prop_assert_eq!(ac.at(0), Some(1.0));
        for &v in ac.values() {
            prop_assert!(v.abs() <= 1.0 + 1e-9, "coefficient out of range: {}", v);
        }
    }

    #[test]
    fn white_noise_band_shrinks_with_n(n in 1usize..10_000) {
        let small = white_noise_band(n, 0.99);
        let large = white_noise_band(n * 4, 0.99);
        // Quadrupling the sample size halves the band.
        prop_assert!((large - small / 2.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_conserves_mass(data in finite_vec(300)) {
        let mut h = Histogram::new(-100.0, 100.0, 17).unwrap();
        for &x in &data {
            h.record(x);
        }
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn log_histogram_conserves_mass(data in prop::collection::vec(1e-3f64..1e6, 0..300)) {
        let mut h = LogHistogram::new(0.1, 1e5, 25).unwrap();
        for &x in &data {
            h.record(x);
        }
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn quantile_is_monotone_in_p(data in finite_vec(100), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        prop_assume!(!data.is_empty());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let qlo = quantile(&data, lo).unwrap();
        let qhi = quantile(&data, hi).unwrap();
        prop_assert!(qlo <= qhi + 1e-12);
    }

    #[test]
    fn median_lies_within_range(data in finite_vec(100)) {
        prop_assume!(!data.is_empty());
        let m = median(&data).unwrap();
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min && m <= max);
    }

    #[test]
    fn count_distribution_totals_match(values in prop::collection::vec(0u64..500, 0..300)) {
        let d: CountDistribution = values.iter().copied().collect();
        prop_assert_eq!(d.total(), values.len() as u64);
        let recounted: u64 = d.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(recounted, values.len() as u64);
    }

    #[test]
    fn count_distribution_mean_matches_summary(values in prop::collection::vec(0u64..500, 1..200)) {
        let d: CountDistribution = values.iter().copied().collect();
        let s: Summary = values.iter().map(|&v| v as f64).collect();
        prop_assert!((d.mean() - s.mean()).abs() < 1e-9);
        prop_assert!((d.variance() - s.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn count_distribution_quantile_is_observed_value(values in prop::collection::vec(0u64..100, 1..100), p in 0.0f64..=1.0) {
        let d: CountDistribution = values.iter().copied().collect();
        let q = d.quantile(p).unwrap();
        prop_assert!(values.contains(&q));
    }
}

fn obs_vec() -> impl Strategy<Value = Vec<u64>> {
    // Mix ordinary magnitudes with u64::MAX-scale values so saturation
    // paths are exercised, not just the common case: draws in the upper
    // half of the raw range fold over to the top of the u64 domain.
    prop::collection::vec(0u64..20_000, 0..200).prop_map(|raw| {
        raw.into_iter()
            .map(|v| {
                if v >= 10_000 {
                    u64::MAX - (v - 10_000)
                } else {
                    v
                }
            })
            .collect()
    })
}

fn hist_of(values: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn log2_quantiles_bracket_observations(values in obs_vec(), p in 0.0f64..=1.0) {
        let h = hist_of(&values);
        let q = h.quantile(p);
        if values.is_empty() {
            prop_assert_eq!(q, 0);
        } else {
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            prop_assert!(q >= min && q <= max, "quantile {} outside [{}, {}]", q, min, max);
            prop_assert_eq!(h.quantile(1.0), max);
            // Log bucketing is accurate to a factor of two: the estimate's
            // bucket contains at least one real observation at rank <= the
            // estimate, so the true rank value shares its bucket.
            prop_assert!(h.p50() >= min);
        }
    }

    #[test]
    fn log2_merge_is_associative_and_commutative(
        a in obs_vec(),
        b in obs_vec(),
        c in obs_vec(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
    }

    #[test]
    fn log2_merge_equals_single_recording(values in obs_vec(), split in 0usize..200) {
        let split = split.min(values.len());
        let (l, r) = values.split_at(split);
        let mut merged = hist_of(l);
        merged.merge(&hist_of(r));
        prop_assert_eq!(merged, hist_of(&values));
    }

    #[test]
    fn log2_bucket_counts_conserve_total(values in obs_vec()) {
        let h = hist_of(&values);
        let counted: u64 = h.counts().iter().sum();
        prop_assert_eq!(counted, values.len() as u64);
        prop_assert_eq!(h.total(), values.len() as u64);
    }
}
