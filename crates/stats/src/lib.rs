//! Statistics toolkit used throughout the peer-sampling evaluation suite.
//!
//! The crate is deliberately small and dependency-free: it provides exactly
//! the statistical machinery the Middleware 2004 peer-sampling paper relies
//! on, implemented with numerically stable algorithms:
//!
//! * [`Summary`] — streaming count/mean/variance/min/max (Welford's method),
//!   used for degree statistics (Table 2 of the paper).
//! * [`autocorrelation`] — the sample autocorrelation function r_k exactly as
//!   defined in Section 6 of the paper, plus the 99 % white-noise confidence
//!   band used in Figure 5.
//! * [`Histogram`] and [`LogHistogram`] — linear and logarithmic binning for
//!   the degree distributions of Figure 4.
//! * [`Log2Histogram`] — power-of-two bucketed integer histogram with
//!   p50/p99/max extraction, the snapshot format of the telemetry registry.
//! * [`CountDistribution`] — exact integer frequency counts.
//! * [`chi_square_uniform`] — Pearson goodness-of-fit against uniform, the
//!   PeerSwap-style randomness audit of the adversarial suite.
//! * [`TimeSeries`] — a cycle-indexed recorder for per-cycle metrics.
//! * [`quantile`] — quantile estimation on sorted data.
//!
//! # Examples
//!
//! ```
//! use pss_stats::Summary;
//!
//! let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
//! assert_eq!(s.mean(), 5.0);
//! assert_eq!(s.population_variance(), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autocorr;
mod chi2;
mod distribution;
mod histogram;
mod log2hist;
mod quantiles;
mod series;
mod summary;

pub use autocorr::{autocorrelation, autocorrelation_at, white_noise_band, Autocorrelation};
pub use chi2::{chi_square, chi_square_sf, chi_square_uniform, ChiSquare};
pub use distribution::CountDistribution;
pub use histogram::{Histogram, HistogramError, LogHistogram};
pub use log2hist::{log2_bucket, log2_bucket_ceil, log2_bucket_floor, Log2Histogram, LOG2_BUCKETS};
pub use quantiles::{median, quantile, QuantileError};
pub use series::TimeSeries;
pub use summary::Summary;
