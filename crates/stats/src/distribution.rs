//! Exact integer frequency distributions (e.g. node degree → frequency).

use std::collections::BTreeMap;

use crate::Summary;

/// Exact frequency counts over non-negative integer values.
///
/// This is the natural representation for degree distributions: the paper's
/// Figure 4 plots `frequency(degree)` on a log-log scale, which requires
/// exact counts rather than binned ones.
///
/// # Examples
///
/// ```
/// use pss_stats::CountDistribution;
///
/// let d: CountDistribution = [3, 3, 5, 7, 3].into_iter().collect();
/// assert_eq!(d.count_of(3), 3);
/// assert_eq!(d.total(), 5);
/// assert_eq!(d.mode(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountDistribution {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl CountDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Number of observations equal to `value`.
    pub fn count_of(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Most frequent value (smallest one on ties), or `None` if empty.
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&v, _)| v)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// Population variance of the distribution.
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self
            .counts
            .iter()
            .map(|(&v, &c)| {
                let d = v as f64 - mean;
                d * d * c as f64
            })
            .sum();
        ss / self.total as f64
    }

    /// Exact p-quantile via the inverse empirical CDF (`p` clamped to
    /// `[0, 1]`).
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (&v, &c) in &self.counts {
            acc += c;
            if acc >= target {
                return Some(v);
            }
        }
        self.max()
    }

    /// Iterator over `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Converts to a [`Summary`] over the underlying observations.
    pub fn to_summary(&self) -> Summary {
        let mut s = Summary::new();
        for (&v, &c) in &self.counts {
            for _ in 0..c {
                s.push(v as f64);
            }
        }
        s
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &CountDistribution) {
        for (&v, &c) in &other.counts {
            self.record_n(v, c);
        }
    }
}

impl FromIterator<u64> for CountDistribution {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut d = CountDistribution::new();
        for v in iter {
            d.record(v);
        }
        d
    }
}

impl Extend<u64> for CountDistribution {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_distribution() {
        let d = CountDistribution::new();
        assert!(d.is_empty());
        assert_eq!(d.total(), 0);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
        assert_eq!(d.mode(), None);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn basic_counts() {
        let d: CountDistribution = [1, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(d.count_of(1), 1);
        assert_eq!(d.count_of(2), 2);
        assert_eq!(d.count_of(3), 3);
        assert_eq!(d.count_of(4), 0);
        assert_eq!(d.total(), 6);
        assert_eq!(d.min(), Some(1));
        assert_eq!(d.max(), Some(3));
        assert_eq!(d.mode(), Some(3));
    }

    #[test]
    fn mean_and_variance() {
        let d: CountDistribution = [2, 4, 4, 4, 5, 5, 7, 9].into_iter().collect();
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 4.0);
    }

    #[test]
    fn quantiles() {
        let d: CountDistribution = (1..=100).collect();
        assert_eq!(d.quantile(0.0), Some(1));
        assert_eq!(d.quantile(0.5), Some(50));
        assert_eq!(d.quantile(1.0), Some(100));
        assert_eq!(d.quantile(0.25), Some(25));
        // Out-of-range p is clamped.
        assert_eq!(d.quantile(2.0), Some(100));
        assert_eq!(d.quantile(-1.0), Some(1));
    }

    #[test]
    fn mode_tie_prefers_smaller_value() {
        let d: CountDistribution = [5, 5, 9, 9].into_iter().collect();
        assert_eq!(d.mode(), Some(5));
    }

    #[test]
    fn record_n_and_merge() {
        let mut a = CountDistribution::new();
        a.record_n(10, 3);
        a.record_n(20, 0); // no-op
        let mut b = CountDistribution::new();
        b.record_n(10, 2);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count_of(10), 5);
        assert_eq!(a.count_of(30), 1);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn to_summary_round_trip() {
        let d: CountDistribution = [2, 4, 4, 4, 5, 5, 7, 9].into_iter().collect();
        let s = d.to_summary();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
    }

    #[test]
    fn iter_is_sorted() {
        let d: CountDistribution = [9, 1, 5, 1].into_iter().collect();
        let items: Vec<_> = d.iter().collect();
        assert_eq!(items, vec![(1, 2), (5, 1), (9, 1)]);
    }
}
