//! Power-of-two log-bucketed integer histogram with quantile extraction.
//!
//! [`Log2Histogram`] is the HDR-style bucketing scheme the telemetry
//! registry snapshots into: 65 buckets where bucket 0 holds exactly the
//! value 0 and bucket *i* ≥ 1 covers the half-open power-of-two range
//! `[2^(i-1), 2^i)` (bucket 64 is capped at `u64::MAX`). Bucketing a value
//! is a single `leading_zeros`, so the recording side needs no floats, no
//! division, and no branches beyond the array index — cheap enough to sit
//! on a per-frame network path.
//!
//! The trade-off is resolution: a quantile is only known to within a
//! factor of two. For latency telemetry (nanoseconds, virtual ticks) that
//! is exactly the right contract — order-of-magnitude truth, constant
//! memory, lossless merging across shards.
//!
//! All accumulators saturate instead of wrapping, which keeps
//! [`Log2Histogram::merge`] associative and total even for adversarial
//! `u64::MAX`-scale observations.

/// Number of buckets: one for zero plus one per bit position.
pub const LOG2_BUCKETS: usize = 65;

/// Bucket index for `value`: 0 for 0, else `64 - value.leading_zeros()`
/// (the position of the highest set bit, 1-based).
#[inline]
#[must_use]
pub fn log2_bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Smallest value that lands in `bucket` (0 for bucket 0, else `2^(b-1)`).
#[must_use]
pub fn log2_bucket_floor(bucket: usize) -> u64 {
    assert!(bucket < LOG2_BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Largest value that lands in `bucket` (0 for bucket 0, `u64::MAX` for
/// bucket 64, else `2^b - 1`).
#[must_use]
pub fn log2_bucket_ceil(bucket: usize) -> u64 {
    assert!(bucket < LOG2_BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        0
    } else if bucket == LOG2_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Fixed-size log₂-bucketed histogram over `u64` observations.
///
/// Tracks per-bucket counts plus exact total count, saturating sum, and
/// exact min/max. Quantiles are extracted from the bucket counts and
/// clamped to the observed `[min, max]`, so `quantile(1.0)` is always the
/// exact maximum and every quantile of an empty histogram is a
/// well-defined 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            counts: [0; LOG2_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations in one step (the shape a
    /// snapshot of atomic bucket counters arrives in).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[log2_bucket(value)] = self.counts[log2_bucket(value)].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Lossless on bucket counts;
    /// saturating on `total`/`sum`, so merging is associative and
    /// commutative in any shard order.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Overwrites the saturating sum and the raw min/max cells with
    /// externally tracked values — the hook an atomic histogram snapshot
    /// uses: bucket counts are rebuilt exactly via [`Self::record_n`]
    /// (which can only approximate the sum from bucket bounds), then the
    /// precise aggregates from dedicated atomic cells are patched in. A
    /// `min` of `u64::MAX` is the "no observations" sentinel.
    pub fn set_aggregates(&mut self, sum: u64, min: u64, max: u64) {
        self.sum = sum;
        self.min = min;
        self.max = max;
    }

    /// Number of observations (saturating).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest observation; 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest observation; 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (from the saturating sum); 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-quantile (`p` clamped to `[0, 1]`) as the upper bound of the
    /// bucket holding the rank-⌈p·total⌉ observation, clamped to the exact
    /// observed `[min, max]`. Resolution is therefore a factor of two in
    /// the interior, exact at both extremes, and 0 on an empty histogram.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; p = 0 maps to rank 1.
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(count);
            if seen >= rank {
                return log2_bucket_ceil(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.5)`).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile (`quantile(0.99)`).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Raw bucket counts, indexed by [`log2_bucket`].
    #[must_use]
    pub fn counts(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Non-empty buckets as `(floor, ceil, count)` ranges, lowest first —
    /// the shape the Prometheus renderer and the JSON emitter both walk.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(bucket, &count)| (log2_bucket_floor(bucket), log2_bucket_ceil(bucket), count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_round_trip() {
        for bucket in 0..LOG2_BUCKETS {
            assert_eq!(log2_bucket(log2_bucket_floor(bucket)), bucket);
            assert_eq!(log2_bucket(log2_bucket_ceil(bucket)), bucket);
        }
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_quantiles_are_well_defined() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_observation_is_exact_at_every_quantile() {
        let mut h = Log2Histogram::new();
        h.record(777);
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), 777);
        }
    }

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        // Rank 500 lands in bucket [256, 511]; the estimate is its ceiling.
        assert_eq!(h.p50(), 511);
        // p99 → rank 990 → bucket [512, 1023], clamped to the max of 1000.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn saturates_at_u64_max_scale() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.sum(), u64::MAX); // saturated, not wrapped
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        // record_n with a saturating count keeps the bucket pinned at MAX.
        h.record_n(u64::MAX, u64::MAX);
        h.record_n(u64::MAX, u64::MAX);
        assert_eq!(h.total(), u64::MAX);
        assert_eq!(h.counts()[64], u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn merge_accumulates_counts_and_extremes() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(10);
        a.record(20);
        b.record(1);
        b.record(4000);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 4000);
        assert_eq!(a.sum(), 4031);
        let mut whole = Log2Histogram::new();
        for v in [10, 20, 1, 4000] {
            whole.record(v);
        }
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Log2Histogram::new();
        h.record(42);
        let snapshot = h.clone();
        h.merge(&Log2Histogram::new());
        assert_eq!(h, snapshot);
        let mut e = Log2Histogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }
}
