//! Cycle-indexed time series recording.

use crate::{autocorrelation, Autocorrelation, Summary};

/// A named, cycle-indexed series of floating-point observations.
///
/// Observers in the simulator push one value per cycle (average degree,
/// clustering coefficient, dead-link count, …); the experiment harness then
/// prints the series or post-processes it (autocorrelation for Figure 5,
/// summaries for Table 2).
///
/// # Examples
///
/// ```
/// use pss_stats::TimeSeries;
///
/// let mut ts = TimeSeries::new("avg degree");
/// ts.push(0, 30.0);
/// ts.push(1, 31.5);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.value_at(1), Some(31.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeSeries {
    name: String,
    cycles: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            cycles: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation for `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is not strictly greater than the last recorded
    /// cycle — series are append-only and cycle-monotonic by construction.
    pub fn push(&mut self, cycle: u64, value: f64) {
        if let Some(&last) = self.cycles.last() {
            assert!(
                cycle > last,
                "time series cycles must be strictly increasing: {cycle} after {last}"
            );
        }
        self.cycles.push(cycle);
        self.values.push(value);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The recorded cycle numbers, in increasing order.
    pub fn cycles(&self) -> &[u64] {
        &self.cycles
    }

    /// The recorded values, aligned with [`TimeSeries::cycles`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value recorded exactly at `cycle`, if any.
    pub fn value_at(&self, cycle: u64) -> Option<f64> {
        self.cycles
            .binary_search(&cycle)
            .ok()
            .map(|i| self.values[i])
    }

    /// Last `(cycle, value)` pair, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        match (self.cycles.last(), self.values.last()) {
            (Some(&c), Some(&v)) => Some((c, v)),
            _ => None,
        }
    }

    /// Iterator over `(cycle, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.cycles.iter().copied().zip(self.values.iter().copied())
    }

    /// Summary statistics of the values.
    pub fn summary(&self) -> Summary {
        self.values.iter().copied().collect()
    }

    /// Autocorrelation of the value sequence up to `max_lag`.
    pub fn autocorrelation(&self, max_lag: usize) -> Autocorrelation {
        autocorrelation(&self.values, max_lag)
    }

    /// Sub-series restricted to cycles in `[from, to)`.
    pub fn window(&self, from: u64, to: u64) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        for (c, v) in self.iter() {
            if c >= from && c < to {
                out.push(c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_series_is_empty() {
        let ts = TimeSeries::new("x");
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.last(), None);
        assert_eq!(ts.name(), "x");
    }

    #[test]
    fn push_and_read_back() {
        let mut ts = TimeSeries::new("deg");
        ts.push(0, 1.0);
        ts.push(5, 2.0);
        ts.push(6, 3.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.value_at(5), Some(2.0));
        assert_eq!(ts.value_at(4), None);
        assert_eq!(ts.last(), Some((6, 3.0)));
        assert_eq!(ts.cycles(), &[0, 5, 6]);
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_push_panics() {
        let mut ts = TimeSeries::new("bad");
        ts.push(3, 1.0);
        ts.push(3, 2.0);
    }

    #[test]
    fn window_selects_half_open_range() {
        let mut ts = TimeSeries::new("w");
        for c in 0..10 {
            ts.push(c, c as f64);
        }
        let w = ts.window(3, 7);
        assert_eq!(w.cycles(), &[3, 4, 5, 6]);
        assert_eq!(w.values(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(w.name(), "w");
    }

    #[test]
    fn summary_over_values() {
        let mut ts = TimeSeries::new("s");
        ts.push(0, 2.0);
        ts.push(1, 4.0);
        let s = ts.summary();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn autocorrelation_delegates() {
        let mut ts = TimeSeries::new("ac");
        for c in 0..100 {
            ts.push(c, if c % 2 == 0 { 1.0 } else { -1.0 });
        }
        let ac = ts.autocorrelation(1);
        assert!(ac.at(1).unwrap() < -0.9);
    }

    #[test]
    fn iter_yields_pairs() {
        let mut ts = TimeSeries::new("i");
        ts.push(1, 10.0);
        ts.push(2, 20.0);
        let v: Vec<_> = ts.iter().collect();
        assert_eq!(v, vec![(1, 10.0), (2, 20.0)]);
    }
}
