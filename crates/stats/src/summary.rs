//! Streaming summary statistics via Welford's online algorithm.

use core::fmt;

/// Streaming summary statistics: count, mean, variance, min and max.
///
/// Uses Welford's online algorithm, which is numerically stable for long
/// streams (degree traces run for hundreds of cycles over 10⁴ nodes).
///
/// # Examples
///
/// ```
/// use pss_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.sample_variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// Non-finite values are ignored so that a single NaN produced by a
    /// degenerate metric (e.g. path length of an empty graph) cannot poison a
    /// whole experiment; callers that care can check [`Summary::count`].
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford combine).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed both streams into a single summary.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n), or 0.0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n − 1), or 0.0 with fewer than two points.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// True if no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.sample_std_dev(),
            self.min,
            self.max
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn known_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert!(close(s.sample_variance(), 32.0 / 7.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut s = Summary::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = data.split_at(37);
        let mut a: Summary = left.iter().copied().collect();
        let b: Summary = right.iter().copied().collect();
        a.merge(&b);
        let all: Summary = data.iter().copied().collect();
        assert_eq!(a.count(), all.count());
        assert!(close(a.mean(), all.mean()));
        assert!(close(a.population_variance(), all.population_variance()));
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0, 3.0].iter().copied().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_adds_observations() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation test: large offset, small spread.
        let offset = 1e9;
        let s: Summary = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .iter()
            .copied()
            .collect();
        assert!(close(s.mean() - offset, 10.0));
        assert!(close(s.population_variance(), 22.5));
    }

    #[test]
    fn display_formats_nonempty() {
        let s: Summary = [1.0, 3.0].iter().copied().collect();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.0000"));
    }
}
