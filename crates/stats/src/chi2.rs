//! Chi-square goodness-of-fit testing, dependency-free.
//!
//! The PeerSwap-style randomness audit of the adversarial evaluation suite
//! tests whether an observer's peer-sample stream is consistent with
//! uniform sampling: under a clean run the per-peer sample counts are
//! multinomial-uniform and the Pearson statistic follows a chi-square
//! distribution; under a hub attack the attacker ids soak up the stream
//! and the statistic explodes.
//!
//! The p-value comes from the regularized incomplete gamma function
//! `Q(df/2, x/2)` computed with the classic series / continued-fraction
//! pair (Numerical Recipes §6.2) — no external math crates.

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The Pearson statistic `Σ (observed − expected)² / expected`.
    pub statistic: f64,
    /// Degrees of freedom (bins − 1).
    pub df: usize,
    /// Upper-tail probability of the statistic under H₀.
    pub p_value: f64,
}

impl ChiSquare {
    /// Whether the data is consistent with the null hypothesis at
    /// significance level `alpha` (i.e. the test does *not* reject).
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Pearson chi-square test of `observed` counts against `expected` counts.
/// Returns `None` for fewer than two bins, a non-positive expected bin, or
/// mismatched lengths.
pub fn chi_square(observed: &[u64], expected: &[f64]) -> Option<ChiSquare> {
    if observed.len() != expected.len() || observed.len() < 2 {
        return None;
    }
    if expected.iter().any(|&e| !e.is_finite() || e <= 0.0) {
        return None;
    }
    let statistic = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            let diff = o as f64 - e;
            diff * diff / e
        })
        .sum();
    let df = observed.len() - 1;
    Some(ChiSquare {
        statistic,
        df,
        p_value: chi_square_sf(statistic, df as f64),
    })
}

/// Chi-square test of `counts` against the uniform distribution over its
/// bins. Returns `None` for fewer than two bins or an all-zero stream.
pub fn chi_square_uniform(counts: &[u64]) -> Option<ChiSquare> {
    let total: u64 = counts.iter().sum();
    if counts.len() < 2 || total == 0 {
        return None;
    }
    let expected = total as f64 / counts.len() as f64;
    chi_square(counts, &vec![expected; counts.len()])
}

/// Survival function of the chi-square distribution: `P(X > x)` with `df`
/// degrees of freedom, i.e. `Q(df/2, x/2)`.
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, |ε| < 2e-10).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut series = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        series += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * series / x).ln()
}

const MAX_ITERATIONS: usize = 500;
const EPSILON: f64 = 3.0e-12;

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (converges fast for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut delta = sum;
    for _ in 0..MAX_ITERATIONS {
        ap += 1.0;
        delta *= x / ap;
        sum += delta;
        if delta.abs() < sum.abs() * EPSILON {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by Lentz continued
/// fraction (converges fast for `x ≥ a + 1`).
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1.0e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITERATIONS {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPSILON {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    let q = if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    };
    q.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_matches_critical_values() {
        // Textbook (df, critical value at α = 0.05) pairs.
        for (df, crit) in [(1.0, 3.841), (2.0, 5.991), (5.0, 11.070), (10.0, 18.307)] {
            let p = chi_square_sf(crit, df);
            assert!((p - 0.05).abs() < 1e-3, "df={df}: p={p}");
        }
        // And at α = 0.01.
        for (df, crit) in [(1.0, 6.635), (4.0, 13.277), (9.0, 21.666)] {
            let p = chi_square_sf(crit, df);
            assert!((p - 0.01).abs() < 1e-3, "df={df}: p={p}");
        }
        assert_eq!(chi_square_sf(0.0, 3.0), 1.0);
        assert!(chi_square_sf(1e4, 3.0) < 1e-12);
        // Median of chi-square(2) is 2·ln 2.
        let p = chi_square_sf(2.0 * std::f64::consts::LN_2, 2.0);
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_counts_pass_and_skewed_counts_fail() {
        let balanced = ChiSquare {
            ..chi_square_uniform(&[10, 11, 9, 10, 10]).unwrap()
        };
        assert!(balanced.passes(0.05), "{balanced:?}");
        assert!(balanced.statistic < 1.0);

        let skewed = chi_square_uniform(&[100, 1, 2, 1, 0]).unwrap();
        assert!(!skewed.passes(0.01), "{skewed:?}");
        assert_eq!(skewed.df, 4);
    }

    #[test]
    fn exact_uniform_has_zero_statistic_and_p_one() {
        let t = chi_square_uniform(&[7, 7, 7, 7]).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert_eq!(chi_square_uniform(&[5]), None);
        assert_eq!(chi_square_uniform(&[0, 0, 0]), None);
        assert_eq!(chi_square(&[1, 2], &[1.0]), None);
        assert_eq!(chi_square(&[1, 2], &[1.0, 0.0]), None);
    }

    #[test]
    fn against_known_pearson_example() {
        // Classic die-fairness example: 60 rolls, observed
        // [5, 8, 9, 8, 10, 20] → χ² = 13.4, df = 5, p ≈ 0.0199.
        let t = chi_square_uniform(&[5, 8, 9, 8, 10, 20]).unwrap();
        assert!((t.statistic - 13.4).abs() < 1e-9, "{t:?}");
        assert!((t.p_value - 0.0199).abs() < 5e-4, "{t:?}");
    }
}
