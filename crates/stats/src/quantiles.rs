//! Quantile estimation over floating-point samples.

use core::fmt;

/// Error returned by [`quantile`] and [`median`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileError {
    /// The sample set was empty.
    EmptyData,
    /// The requested probability was outside `[0, 1]` or not finite.
    InvalidProbability,
}

impl fmt::Display for QuantileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantileError::EmptyData => write!(f, "cannot take a quantile of empty data"),
            QuantileError::InvalidProbability => {
                write!(f, "quantile probability must lie in [0, 1]")
            }
        }
    }
}

impl std::error::Error for QuantileError {}

/// Computes the p-quantile of `data` using linear interpolation (type 7,
/// the R/NumPy default).
///
/// The input does **not** need to be sorted; a sorted copy is made
/// internally. NaN values are removed first.
///
/// # Errors
///
/// Returns [`QuantileError::EmptyData`] if `data` contains no non-NaN values
/// and [`QuantileError::InvalidProbability`] if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pss_stats::QuantileError> {
/// use pss_stats::quantile;
///
/// let q = quantile(&[1.0, 2.0, 3.0, 4.0], 0.5)?;
/// assert_eq!(q, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn quantile(data: &[f64], p: f64) -> Result<f64, QuantileError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(QuantileError::InvalidProbability);
    }
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return Err(QuantileError::EmptyData);
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = h - lo as f64;
        Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }
}

/// Computes the median of `data`.
///
/// # Errors
///
/// Returns [`QuantileError::EmptyData`] if `data` contains no non-NaN values.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pss_stats::QuantileError> {
/// use pss_stats::median;
///
/// assert_eq!(median(&[3.0, 1.0, 2.0])?, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn median(data: &[f64]) -> Result<f64, QuantileError> {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_errors() {
        assert_eq!(quantile(&[], 0.5), Err(QuantileError::EmptyData));
        assert_eq!(median(&[f64::NAN]), Err(QuantileError::EmptyData));
    }

    #[test]
    fn invalid_probability_errors() {
        assert_eq!(
            quantile(&[1.0], -0.1),
            Err(QuantileError::InvalidProbability)
        );
        assert_eq!(
            quantile(&[1.0], 1.1),
            Err(QuantileError::InvalidProbability)
        );
        assert_eq!(
            quantile(&[1.0], f64::NAN),
            Err(QuantileError::InvalidProbability)
        );
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.0).unwrap(), 7.0);
        assert_eq!(quantile(&[7.0], 0.5).unwrap(), 7.0);
        assert_eq!(quantile(&[7.0], 1.0).unwrap(), 7.0);
    }

    #[test]
    fn interpolated_median_of_even_count() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn exact_median_of_odd_count() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn extremes_are_min_and_max() {
        let data = [9.0, 2.0, 7.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 2.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quartiles_match_numpy_type7() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((quantile(&data, 0.75).unwrap() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn nans_are_filtered_not_fatal() {
        let data = [f64::NAN, 1.0, 2.0, f64::NAN, 3.0];
        assert_eq!(median(&data).unwrap(), 2.0);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let data = [10.0, -1.0, 5.0, 3.0, 8.0];
        assert_eq!(median(&data).unwrap(), 5.0);
    }

    #[test]
    fn error_display() {
        assert!(QuantileError::EmptyData.to_string().contains("empty"));
        assert!(QuantileError::InvalidProbability
            .to_string()
            .contains("[0, 1]"));
    }
}
