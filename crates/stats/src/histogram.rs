//! Linear and logarithmic histograms for distribution plots.

use core::fmt;

/// Error returned when constructing a histogram with invalid bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// Lower bound was not strictly below the upper bound.
    EmptyRange,
    /// Requested zero bins.
    ZeroBins,
    /// Logarithmic histogram bounds must be strictly positive.
    NonPositiveBound,
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::EmptyRange => write!(f, "histogram range is empty"),
            HistogramError::ZeroBins => write!(f, "histogram needs at least one bin"),
            HistogramError::NonPositiveBound => {
                write!(f, "logarithmic histogram bounds must be positive")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// Fixed-range, equal-width histogram.
///
/// Out-of-range samples are counted separately as underflow/overflow so no
/// observation is silently lost.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pss_stats::HistogramError> {
/// use pss_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [1.0, 1.5, 9.9, -3.0] {
///     h.record(x);
/// }
/// assert_eq!(h.counts()[0], 2);
/// assert_eq!(h.counts()[4], 1);
/// assert_eq!(h.underflow(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::EmptyRange`] if `lo >= hi` and
    /// [`HistogramError::ZeroBins`] if `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramError> {
        if bins == 0 {
            return Err(HistogramError::ZeroBins);
        }
        if lo >= hi || lo.is_nan() || hi.is_nan() {
            return Err(HistogramError::EmptyRange);
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against floating-point edge where x is a hair below hi.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Inclusive lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * i as f64
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.bin_lower(i) + width / 2.0
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }
}

/// Histogram with logarithmically spaced bins, for log-log plots such as the
/// degree distributions of the paper's Figure 4.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pss_stats::HistogramError> {
/// use pss_stats::LogHistogram;
///
/// let mut h = LogHistogram::new(1.0, 1000.0, 3)?; // decades: [1,10), [10,100), [100,1000)
/// for x in [2.0, 5.0, 50.0, 500.0] {
///     h.record(x);
/// }
/// assert_eq!(h.counts(), &[2, 1, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    log_lo: f64,
    log_hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram over `[lo, hi)` with `bins` log-spaced bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::NonPositiveBound`] unless `0 < lo`,
    /// [`HistogramError::EmptyRange`] if `lo >= hi`, and
    /// [`HistogramError::ZeroBins`] if `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramError> {
        if bins == 0 {
            return Err(HistogramError::ZeroBins);
        }
        if lo <= 0.0 || hi <= 0.0 {
            return Err(HistogramError::NonPositiveBound);
        }
        if lo >= hi || lo.is_nan() || hi.is_nan() {
            return Err(HistogramError::EmptyRange);
        }
        Ok(LogHistogram {
            log_lo: lo.ln(),
            log_hi: hi.ln(),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation; non-positive values count as underflow.
    pub fn record(&mut self, x: f64) {
        if x <= 0.0 {
            self.underflow += 1;
            return;
        }
        let lx = x.ln();
        if lx < self.log_lo {
            self.underflow += 1;
        } else if lx >= self.log_hi {
            self.overflow += 1;
        } else {
            let width = (self.log_hi - self.log_lo) / self.counts.len() as f64;
            let idx = ((lx - self.log_lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Geometric center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + width * (i as f64 + 0.5)).exp()
    }

    /// Observations below the range (including non-positive values).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Iterator over `(geometric_bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_errors() {
        assert_eq!(Histogram::new(0.0, 1.0, 0), Err(HistogramError::ZeroBins));
        assert_eq!(Histogram::new(1.0, 1.0, 4), Err(HistogramError::EmptyRange));
        assert_eq!(Histogram::new(2.0, 1.0, 4), Err(HistogramError::EmptyRange));
        assert_eq!(
            LogHistogram::new(0.0, 10.0, 4),
            Err(HistogramError::NonPositiveBound)
        );
        assert_eq!(
            LogHistogram::new(-1.0, 10.0, 4),
            Err(HistogramError::NonPositiveBound)
        );
        assert_eq!(
            LogHistogram::new(10.0, 10.0, 4),
            Err(HistogramError::EmptyRange)
        );
    }

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn linear_under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_edges_and_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_lower(0), 0.0);
        assert_eq!(h.bin_lower(4), 8.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn value_just_below_hi_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3).unwrap();
        h.record(1.0 - 1e-16); // rounds to 1.0/width numerically
        assert_eq!(h.counts().iter().sum::<u64>() + h.overflow(), 1);
    }

    #[test]
    fn log_binning_decades() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3).unwrap();
        for x in [1.0, 9.9, 10.0, 99.0, 100.0, 999.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
    }

    #[test]
    fn log_under_and_overflow() {
        let mut h = LogHistogram::new(1.0, 100.0, 2).unwrap();
        h.record(0.0);
        h.record(-5.0);
        h.record(0.5);
        h.record(100.0);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn log_bin_centers_are_geometric() {
        let h = LogHistogram::new(1.0, 100.0, 2).unwrap();
        assert!((h.bin_center(0) - 10.0f64.sqrt()).abs() < 1e-9);
        assert!((h.bin_center(1) - 10.0 * 10.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn iter_pairs() {
        let mut h = Histogram::new(0.0, 4.0, 2).unwrap();
        h.record(1.0);
        h.record(3.0);
        h.record(3.5);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1.0, 1), (3.0, 2)]);
    }

    #[test]
    fn display_of_errors() {
        assert!(HistogramError::EmptyRange.to_string().contains("empty"));
        assert!(HistogramError::ZeroBins.to_string().contains("bin"));
        assert!(HistogramError::NonPositiveBound
            .to_string()
            .contains("positive"));
    }
}
