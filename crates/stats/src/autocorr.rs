//! Sample autocorrelation of a time series, as used in Figure 5 of the paper.

/// The autocorrelation function of a series together with the length of the
/// series it was computed from.
///
/// Produced by [`autocorrelation`]; `values[k]` is the autocorrelation at lag
/// `k` (so `values[0]` is always 1 for a non-constant series).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Autocorrelation {
    values: Vec<f64>,
    series_len: usize,
}

impl Autocorrelation {
    /// Autocorrelation coefficients indexed by lag (`0..=max_lag`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Coefficient at `lag`, or `None` if beyond the computed range.
    pub fn at(&self, lag: usize) -> Option<f64> {
        self.values.get(lag).copied()
    }

    /// Length of the underlying series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The symmetric white-noise confidence band for this series length.
    ///
    /// See [`white_noise_band`]. A coefficient outside `±band` is evidence
    /// (at the given confidence) that the series is not white noise.
    pub fn confidence_band(&self, confidence: f64) -> f64 {
        white_noise_band(self.series_len, confidence)
    }

    /// Largest lag `>= 1` whose coefficient escapes the given band, if any.
    ///
    /// Useful for summarizing "how long does the memory of the series last",
    /// e.g. to contrast `(rand,head,pushpull)` (white-noise-like) with
    /// `(*,rand,*)` (long oscillations) as in the paper's Figure 5.
    pub fn last_significant_lag(&self, band: f64) -> Option<usize> {
        (1..self.values.len())
            .rev()
            .find(|&k| self.values[k].abs() > band)
    }
}

/// Computes the sample autocorrelation r_k of `series` for lags `0..=max_lag`.
///
/// Uses exactly the estimator from Section 6 of the paper:
///
/// ```text
///        Σ_{j=1}^{K-k} (d_j − d̄)(d_{j+k} − d̄)
/// r_k = ───────────────────────────────────────
///              Σ_{j=1}^{K} (d_j − d̄)²
/// ```
///
/// A constant series has zero denominator; by convention this returns
/// `r_0 = 1` and `r_k = 0` for `k >= 1` in that case (a constant series is
/// trivially fully determined, but reporting NaN would poison plots).
///
/// Lags greater than `series.len() - 1` are reported as 0.
///
/// # Examples
///
/// ```
/// use pss_stats::autocorrelation;
///
/// // A strongly alternating series has r_1 close to −1.
/// let series: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let ac = autocorrelation(&series, 2);
/// assert_eq!(ac.at(0), Some(1.0));
/// assert!(ac.at(1).unwrap() < -0.9);
/// assert!(ac.at(2).unwrap() > 0.9);
/// ```
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Autocorrelation {
    let k_total = series.len();
    let mut values = vec![0.0; max_lag + 1];
    if k_total == 0 {
        values[0] = 1.0;
        return Autocorrelation {
            values,
            series_len: 0,
        };
    }
    let mean = series.iter().sum::<f64>() / k_total as f64;
    let denom: f64 = series.iter().map(|&x| (x - mean) * (x - mean)).sum();
    values[0] = 1.0;
    if denom == 0.0 {
        return Autocorrelation {
            values,
            series_len: k_total,
        };
    }
    for (lag, value) in values.iter_mut().enumerate().skip(1) {
        if lag >= k_total {
            break;
        }
        let num: f64 = (0..k_total - lag)
            .map(|j| (series[j] - mean) * (series[j + lag] - mean))
            .sum();
        *value = num / denom;
    }
    Autocorrelation {
        values,
        series_len: k_total,
    }
}

/// Computes a single autocorrelation coefficient at `lag`.
///
/// Equivalent to `autocorrelation(series, lag).at(lag).unwrap()` but avoids
/// computing the intermediate lags.
pub fn autocorrelation_at(series: &[f64], lag: usize) -> f64 {
    if lag == 0 {
        return 1.0;
    }
    let k_total = series.len();
    if lag >= k_total {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / k_total as f64;
    let denom: f64 = series.iter().map(|&x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..k_total - lag)
        .map(|j| (series[j] - mean) * (series[j + lag] - mean))
        .sum();
    num / denom
}

/// Half-width of the white-noise confidence band for autocorrelations.
///
/// For an i.i.d. series of length `n`, sample autocorrelations at lag ≥ 1 are
/// asymptotically N(0, 1/n); the band is `z / sqrt(n)` where `z` is the
/// standard normal quantile for the two-sided `confidence` level. The paper's
/// Figure 5 draws the 99 % band (`z ≈ 2.576`).
///
/// `confidence` is clamped to `(0, 1)`; `n = 0` yields an infinite band
/// (nothing is ever significant on an empty series).
pub fn white_noise_band(n: usize, confidence: f64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let confidence = confidence.clamp(f64::MIN_POSITIVE, 1.0 - 1e-12);
    let z = normal_quantile(0.5 + confidence / 2.0);
    z / (n as f64).sqrt()
}

/// Acklam's rational approximation to the standard normal quantile function.
///
/// Absolute error below 1.15e-9 over the full domain, far more precision than
/// a confidence band needs.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let ac = autocorrelation(&[1.0, 5.0, 2.0, 8.0], 3);
        assert_eq!(ac.at(0), Some(1.0));
    }

    #[test]
    fn empty_series() {
        let ac = autocorrelation(&[], 5);
        assert_eq!(ac.at(0), Some(1.0));
        assert_eq!(ac.at(3), Some(0.0));
        assert_eq!(ac.series_len(), 0);
    }

    #[test]
    fn constant_series_has_zero_tail() {
        let ac = autocorrelation(&[3.0; 50], 10);
        assert_eq!(ac.at(0), Some(1.0));
        for k in 1..=10 {
            assert_eq!(ac.at(k), Some(0.0));
        }
    }

    #[test]
    fn alternating_series_is_negatively_correlated_at_lag_one() {
        let series: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ac = autocorrelation(&series, 4);
        assert!(ac.at(1).unwrap() < -0.95);
        assert!(ac.at(2).unwrap() > 0.95);
        assert!(ac.at(3).unwrap() < -0.9);
    }

    #[test]
    fn linear_trend_has_strong_short_lag_correlation() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ac = autocorrelation(&series, 1);
        assert!(ac.at(1).unwrap() > 0.9);
    }

    #[test]
    fn coefficients_are_bounded_by_one_in_magnitude() {
        // For the paper's estimator |r_k| <= 1 by Cauchy-Schwarz (the
        // truncated numerator only shrinks the sum).
        let series: Vec<f64> = (0..97).map(|i| ((i * 7919) % 101) as f64).collect();
        let ac = autocorrelation(&series, 96);
        for &v in ac.values() {
            assert!(v.abs() <= 1.0 + 1e-12, "out of range: {v}");
        }
    }

    #[test]
    fn lags_beyond_series_are_zero() {
        let ac = autocorrelation(&[1.0, 2.0, 1.0], 10);
        for k in 3..=10 {
            assert_eq!(ac.at(k), Some(0.0));
        }
        assert_eq!(ac.at(11), None);
    }

    #[test]
    fn single_lag_matches_full_computation() {
        let series: Vec<f64> = (0..64).map(|i| ((i * 31) % 17) as f64).collect();
        let full = autocorrelation(&series, 20);
        for lag in 0..=20 {
            let single = autocorrelation_at(&series, lag);
            assert!(
                (single - full.at(lag).unwrap()).abs() < 1e-12,
                "lag {lag}: {single} vs {:?}",
                full.at(lag)
            );
        }
    }

    #[test]
    fn white_noise_band_matches_known_z_values() {
        // z(99%) ~ 2.5758, z(95%) ~ 1.9600
        let band99 = white_noise_band(300, 0.99);
        assert!((band99 - 2.5758 / (300.0f64).sqrt()).abs() < 1e-3);
        let band95 = white_noise_band(100, 0.95);
        assert!((band95 - 1.9600 / 10.0).abs() < 1e-3);
    }

    #[test]
    fn white_noise_band_edge_cases() {
        assert!(white_noise_band(0, 0.99).is_infinite());
        // Confidence is clamped, not panicking.
        assert!(white_noise_band(10, 1.5).is_finite());
        assert!(white_noise_band(10, -0.5) >= 0.0);
    }

    #[test]
    fn normal_quantile_spot_checks() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        // Tail region exercised too.
        assert!((normal_quantile(0.0001) + 3.719016).abs() < 1e-3);
    }

    #[test]
    fn last_significant_lag_detects_memory() {
        // splitmix64 gives a properly decorrelated sequence.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let noise: Vec<f64> = (0..300).map(|_| next()).collect();
        let ac = autocorrelation(&noise, 140);
        let band = ac.confidence_band(0.99);
        // A pure sine keeps significant correlation at long lags; white noise
        // loses it early.
        let sine: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).sin()).collect();
        let ac_sine = autocorrelation(&sine, 140);
        let sig_sine = ac_sine.last_significant_lag(band).unwrap_or(0);
        let sig_noise = ac.last_significant_lag(band).unwrap_or(0);
        assert!(
            sig_sine > sig_noise,
            "sine {sig_sine} should exceed noise {sig_noise}"
        );
        // A constant series has no significant lag at all.
        let flat = autocorrelation(&[1.0; 300], 140);
        assert_eq!(flat.last_significant_lag(band), None);
    }
}
