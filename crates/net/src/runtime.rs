//! The node runtime: many gossip nodes on one OS thread, over any
//! [`Transport`].
//!
//! A [`NetRuntime`] owns a set of [`GossipNode`]s, a timer wheel that fires
//! each node's active cycle once per period (± uniform jitter, mirroring
//! the event engine's timer model), and one transport endpoint multiplexing
//! all of them. Time is abstract **ticks**: real-time drivers map wall
//! milliseconds to ticks and call [`NetRuntime::run_until`] in a loop (see
//! [`crate::cluster`]); deterministic tests drive virtual time directly.
//!
//! # The receive path is allocation-free in steady state
//!
//! Incoming frames are decoded ([`pss_core::wire`]) straight into message
//! buffers recycled through the runtime's own [`pss_core::Arena`]; the
//! node's absorb path consumes the buffer through the fused
//! `merge_select_from_slice` and recycles it back to the arena. One
//! reusable receive buffer (swapped, not copied, against the transport's
//! receive ring), one reusable encode buffer, one decode scratch table —
//! nothing per-frame.
//!
//! # Addresses
//!
//! Nodes address each other by [`NodeId`]; the runtime's **address book**
//! maps ids to transport addresses. It is fed by bootstrap introducers
//! ([`NetRuntime::add_node`]) and by every received frame (sender address
//! and all descriptor addresses), so any id a view can contain is
//! resolvable by construction. An unresolvable id is counted, never fatal.

use std::collections::HashMap;

use pss_core::wire::{self, DecodeScratch, EncodeError, FrameKind, NetAddr};
use pss_core::{
    Arena, Exchange, Freshness, GossipNode, NodeDescriptor, NodeId, Reply, Request, View,
};
use pss_sim::{workload::Partition, EventConfig, EventConfigError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::transport::Transport;
use crate::wheel::TimerWheel;

/// Timing parameters of a runtime, in abstract ticks (the loopback cluster
/// drives 1 tick = 1 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Gossip period `T`: every node initiates once per period.
    pub period: u64,
    /// Uniform timer jitter, applied as ± `jitter` around the period; must
    /// be strictly below the period (the event engine's rule).
    pub jitter: u64,
    /// Ticks after which an unanswered pushpull request counts as a
    /// timeout. An outstanding exchange is also counted as timed out when
    /// the initiator's next exchange supersedes it, whichever comes first
    /// (the runtime tracks one outstanding exchange per node).
    pub reply_timeout: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            period: 1000,
            jitter: 100,
            reply_timeout: 1000,
        }
    }
}

impl NetConfig {
    /// Takes `period`/`jitter` from an event-engine configuration (latency
    /// and loss are transport-side, see [`crate::MemNetwork::from_event`]),
    /// with the reply timeout set to one period.
    pub fn from_event(config: &EventConfig) -> Self {
        NetConfig {
            period: config.period,
            jitter: config.jitter,
            reply_timeout: config.period,
        }
    }

    /// Checks the timer invariants — the event engine's rules.
    ///
    /// # Errors
    ///
    /// [`EventConfigError::ZeroPeriod`] or
    /// [`EventConfigError::JitterNotBelowPeriod`].
    pub fn validate(&self) -> Result<(), EventConfigError> {
        if self.period == 0 {
            return Err(EventConfigError::ZeroPeriod);
        }
        if self.jitter >= self.period {
            return Err(EventConfigError::JitterNotBelowPeriod {
                jitter: self.jitter,
                period: self.period,
            });
        }
        Ok(())
    }
}

/// Longest exchange backoff, in periods: after repeated consecutive
/// timeouts a node re-arms at most this many periods out (see
/// [`NodeCounters::backoffs`]).
const MAX_BACKOFF_STRETCH: u64 = 8;

/// Per-node accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Protocol messages (requests + replies) absorbed by this node.
    pub msgs_in: u64,
    /// Protocol messages sent on this node's behalf.
    pub msgs_out: u64,
    /// Frames addressed to this node whose descriptor body was rejected.
    pub decode_failures: u64,
    /// Pushpull requests whose reply never arrived — expired after
    /// [`NetConfig::reply_timeout`] ticks, or superseded by the node's next
    /// initiated exchange, whichever came first.
    pub timeouts: u64,
    /// Timer fires that could not initiate (empty view).
    pub empty_view: u64,
    /// Timer re-arms stretched by the bootstrap backoff: a joining node
    /// whose exchanges keep timing out before it has absorbed any protocol
    /// message initiates less often (up to 8× the period) instead of
    /// hammering its overloaded introducer in lockstep — the
    /// thundering-herd fix. The first absorbed protocol message ends the
    /// bootstrap phase and restores the full gossip rate.
    pub backoffs: u64,
}

/// Aggregated runtime statistics: runtime-level counters plus the sums of
/// every node's [`NodeCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Frames pulled off the transport.
    pub frames_in: u64,
    /// Frames handed to the transport.
    pub frames_out: u64,
    /// Frames rejected before the destination node was known (header-level
    /// decode errors) — attributable to no node.
    pub header_decode_failures: u64,
    /// Frames rejected at the descriptor level (per-node
    /// [`NodeCounters::decode_failures`], summed).
    pub body_decode_failures: u64,
    /// Frames addressed to a node this runtime does not host.
    pub unknown_destination: u64,
    /// Frames addressed to a node that has left.
    pub dead_deliveries: u64,
    /// Sends the transport refused (unroutable address, socket error).
    pub send_failures: u64,
    /// Sends skipped because the address book had no entry.
    pub missing_address: u64,
    /// Frame source addresses that tried to rebind an established address
    /// book entry and were refused. A frame header may *introduce* an id's
    /// address, never change it — otherwise one forged-src frame could
    /// redirect an established peer's traffic to the forger.
    pub addr_rebinds_rejected: u64,
    /// Replies dropped because the sender did not match the destination of
    /// the receiving node's pending exchange (forged, unsolicited, or
    /// arriving after timeout/supersession).
    pub forged_replies_rejected: u64,
    /// Frames suppressed by an installed partition loss matrix
    /// ([`NetRuntime::set_partition`]).
    pub partition_blocked: u64,
    /// Timer events fired for live nodes.
    pub timers_fired: u64,
    /// Requests absorbed.
    pub requests_in: u64,
    /// Replies absorbed.
    pub replies_in: u64,
    /// Exchanges completed — the event engine's notion: push-only requests
    /// absorbed plus replies absorbed by their initiators.
    pub exchanges_completed: u64,
    /// Summed [`NodeCounters::timeouts`].
    pub timeouts: u64,
    /// Summed [`NodeCounters::empty_view`].
    pub empty_view: u64,
    /// Summed [`NodeCounters::backoffs`].
    pub backoffs: u64,
    /// Protocol frames from version-1 senders refused because this runtime
    /// runs [`Freshness::Timestamp`]: a v1 age field is a hop count by
    /// definition, and mixing hop counts into a timestamp-ordered view
    /// would silently corrupt its eviction order
    /// ([`NetRuntime::set_freshness`]).
    pub v1_ages_rejected: u64,
    /// Receive-ring refills that had to allocate because the transport's
    /// spent ring was dry ([`crate::transport::Transport::recv_ring_empty`]).
    /// Zero in steady state on ring-backed transports; growth means the
    /// ring depth is too small for the frame rate.
    pub recv_ring_empty: u64,
    /// App frames that informed a previously-uninformed live node
    /// ([`NetRuntime::enable_broadcast`]).
    pub app_delivered: u64,
    /// App frames absorbed by an already-informed live node.
    pub app_redundant: u64,
    /// App frames addressed to a departed node — deliveries wasted on the
    /// dead, the deployed twin of the protocol layer's `wasted` metric.
    pub app_wasted: u64,
}

impl RuntimeStats {
    /// Total decode failures (header- plus body-level) — the "zero codec
    /// errors" acceptance number.
    pub fn decode_failures(&self) -> u64 {
        self.header_decode_failures + self.body_decode_failures
    }

    /// Field-wise sum, for aggregating across runtimes.
    ///
    /// `other` is destructured **without** a `..` rest pattern: adding a
    /// counter to [`RuntimeStats`] without deciding how it merges is a
    /// compile error here, not a silently dropped statistic.
    pub fn merge(&mut self, other: &RuntimeStats) {
        let RuntimeStats {
            frames_in,
            frames_out,
            header_decode_failures,
            body_decode_failures,
            unknown_destination,
            dead_deliveries,
            send_failures,
            missing_address,
            addr_rebinds_rejected,
            forged_replies_rejected,
            partition_blocked,
            timers_fired,
            requests_in,
            replies_in,
            exchanges_completed,
            timeouts,
            empty_view,
            backoffs,
            v1_ages_rejected,
            recv_ring_empty,
            app_delivered,
            app_redundant,
            app_wasted,
        } = *other;
        self.frames_in += frames_in;
        self.frames_out += frames_out;
        self.header_decode_failures += header_decode_failures;
        self.body_decode_failures += body_decode_failures;
        self.unknown_destination += unknown_destination;
        self.dead_deliveries += dead_deliveries;
        self.send_failures += send_failures;
        self.missing_address += missing_address;
        self.addr_rebinds_rejected += addr_rebinds_rejected;
        self.forged_replies_rejected += forged_replies_rejected;
        self.partition_blocked += partition_blocked;
        self.timers_fired += timers_fired;
        self.requests_in += requests_in;
        self.replies_in += replies_in;
        self.exchanges_completed += exchanges_completed;
        self.timeouts += timeouts;
        self.empty_view += empty_view;
        self.backoffs += backoffs;
        self.v1_ages_rejected += v1_ages_rejected;
        self.recv_ring_empty += recv_ring_empty;
        self.app_delivered += app_delivered;
        self.app_redundant += app_redundant;
        self.app_wasted += app_wasted;
    }
}

/// Telemetry handles for the network runtime (`engine="net"` series in
/// the global registry). Every runtime in the process shares the same
/// cells — cluster-wide aggregates, exactly like a multi-threaded server
/// exporting one series per family.
struct NetTele {
    /// Request→reply round trips, in virtual ticks.
    rtt_ticks: pss_telemetry::Histogram,
    /// How far behind `t` the timer wheel was when a batch fired.
    wheel_lag_ticks: pss_telemetry::Histogram,
    /// Wire decode latency (header + descriptors) per frame kind.
    decode_request_ns: pss_telemetry::Histogram,
    decode_reply_ns: pss_telemetry::Histogram,
    decode_app_ns: pss_telemetry::Histogram,
    /// Header- or body-level decode rejections.
    decode_errors: pss_telemetry::Counter,
    /// High-water mark of the transport's dry-ring refill counter.
    ring_dry: pss_telemetry::Gauge,
}

impl NetTele {
    fn new() -> Self {
        let reg = pss_telemetry::global();
        let hist = |phase: &str, help: &str| {
            reg.histogram_with("pss_net_decode_ns", &[("kind", phase)], help)
        };
        Self {
            rtt_ticks: reg.histogram_with(
                "pss_net_rtt_ticks",
                &[],
                "Pushpull round-trip time (request sent to reply absorbed), virtual ticks",
            ),
            wheel_lag_ticks: reg.histogram_with(
                "pss_net_wheel_lag_ticks",
                &[],
                "Ticks the timer wheel lagged behind runtime time when a batch fired",
            ),
            decode_request_ns: hist("request", "Wire decode latency per frame, nanoseconds"),
            decode_reply_ns: hist("reply", "Wire decode latency per frame, nanoseconds"),
            decode_app_ns: hist("app", "Wire decode latency per frame, nanoseconds"),
            decode_errors: reg.counter(
                "pss_net_decode_errors_total",
                "Frames rejected at the header or descriptor level",
            ),
            ring_dry: reg.gauge(
                "pss_net_recv_ring_empty",
                "Receive-ring refills that had to allocate because the spent ring was dry",
            ),
        }
    }

    fn decode_hist(&self, kind: FrameKind) -> &pss_telemetry::Histogram {
        match kind {
            FrameKind::Request => &self.decode_request_ns,
            FrameKind::Reply => &self.decode_reply_ns,
            FrameKind::App => &self.decode_app_ns,
        }
    }
}

struct Slot<N> {
    node: N,
    alive: bool,
    counters: NodeCounters,
    /// An outstanding pushpull exchange: `(peer, sent tick)`.
    pending_reply: Option<(NodeId, u64)>,
    /// Consecutive reply timeouts with no absorbed reply in between —
    /// drives the exchange backoff (see [`NodeCounters::backoffs`]).
    consecutive_timeouts: u32,
    /// Holds the rumor when the broadcast app is enabled
    /// ([`NetRuntime::enable_broadcast`]).
    informed: bool,
}

/// See the [module docs](self) and the [crate example](crate).
pub struct NetRuntime<T: Transport, N: GossipNode = pss_core::PeerSamplingNode> {
    transport: T,
    config: NetConfig,
    nodes: Vec<Slot<N>>,
    /// Hosted node id → slot index.
    index: HashMap<u64, u32>,
    /// Node id → transport address, cluster-wide (learned).
    book: HashMap<u64, NetAddr>,
    wheel: TimerWheel,
    rng: SmallRng,
    now: u64,
    /// Installed partition loss matrix, if any (egress-side blocking).
    partition: Option<Partition>,
    /// Age semantics of the hosted nodes ([`NetRuntime::set_freshness`]).
    freshness: Freshness,
    v1_ages_rejected: u64,
    /// Recycled message buffers for the decode → node → encode path.
    arena: Arena,
    // Reused buffers: the steady-state-allocation-free receive/send path.
    recv_buf: Vec<u8>,
    encode_buf: Vec<u8>,
    fired: Vec<u32>,
    scratch: DecodeScratch,
    // Runtime-level counters (per-node ones live in the slots).
    frames_in: u64,
    frames_out: u64,
    header_decode_failures: u64,
    unknown_destination: u64,
    dead_deliveries: u64,
    send_failures: u64,
    missing_address: u64,
    addr_rebinds_rejected: u64,
    forged_replies_rejected: u64,
    partition_blocked: u64,
    timers_fired: u64,
    requests_in: u64,
    replies_in: u64,
    exchanges_completed: u64,
    /// Broadcast app: push fanout per period, `None` = app disabled (the
    /// default — a disabled app draws nothing from the runtime RNG, so
    /// protocol-only runs stay bit-identical to earlier versions).
    app_fanout: Option<usize>,
    app_delivered: u64,
    app_redundant: u64,
    app_wasted: u64,
    /// Shared telemetry handles; purely observational.
    tele: NetTele,
}

impl<T: Transport, N: GossipNode> NetRuntime<T, N> {
    /// Creates an empty runtime over `transport`. All stochastic choices
    /// (timer phases and jitter) derive from `seed`.
    ///
    /// # Errors
    ///
    /// [`EventConfigError`] if `config` violates a timer invariant.
    pub fn new(transport: T, config: NetConfig, seed: u64) -> Result<Self, EventConfigError> {
        config.validate()?;
        Ok(NetRuntime {
            transport,
            config,
            nodes: Vec::new(),
            index: HashMap::new(),
            book: HashMap::new(),
            // Horizon covers the fully backed-off re-arm distance
            // (`MAX_BACKOFF_STRETCH` periods + jitter), not just one period.
            wheel: TimerWheel::new(MAX_BACKOFF_STRETCH * config.period + 2 * config.jitter + 1),
            rng: SmallRng::seed_from_u64(seed),
            now: 0,
            partition: None,
            freshness: Freshness::HopCount,
            v1_ages_rejected: 0,
            arena: Arena::new(),
            recv_buf: Vec::new(),
            encode_buf: Vec::new(),
            fired: Vec::new(),
            scratch: DecodeScratch::new(),
            frames_in: 0,
            frames_out: 0,
            header_decode_failures: 0,
            unknown_destination: 0,
            dead_deliveries: 0,
            send_failures: 0,
            missing_address: 0,
            addr_rebinds_rejected: 0,
            forged_replies_rejected: 0,
            partition_blocked: 0,
            timers_fired: 0,
            requests_in: 0,
            replies_in: 0,
            exchanges_completed: 0,
            app_fanout: None,
            app_delivered: 0,
            app_redundant: 0,
            app_wasted: 0,
            tele: NetTele::new(),
        })
    }

    /// The transport's address (what other runtimes' address books should
    /// hold for every node hosted here).
    pub fn local_addr(&self) -> NetAddr {
        self.transport.local_addr()
    }

    /// Current runtime time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The timing configuration.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// Nodes hosted (left ones included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes hosted and still participating.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|s| s.alive).count()
    }

    /// Adds a node, bootstrapping its view from the introducers'
    /// descriptors and priming the address book with their addresses. The
    /// node's first timer fires at a uniform-random phase within one period
    /// (nodes are not synchronized), from the runtime's RNG.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already hosted here.
    pub fn add_node(&mut self, mut node: N, introducers: &[(NodeId, NetAddr)]) -> NodeId {
        let id = node.id();
        assert!(
            !self.index.contains_key(&id.as_u64()),
            "node {id} already hosted"
        );
        self.book.insert(id.as_u64(), self.transport.local_addr());
        for &(peer, addr) in introducers {
            self.book.insert(peer.as_u64(), addr);
        }
        node.init(
            &mut introducers
                .iter()
                .map(|&(peer, _)| NodeDescriptor::fresh(peer)),
        );
        let slot = self.nodes.len() as u32;
        self.nodes.push(Slot {
            node,
            alive: true,
            counters: NodeCounters::default(),
            pending_reply: None,
            consecutive_timeouts: 0,
            informed: false,
        });
        self.index.insert(id.as_u64(), slot);
        let phase = self.rng.random_range(0..self.config.period);
        // Never into the fired past (phase 0 right after a run).
        let due = (self.now + phase).max(self.wheel.next_tick());
        self.wheel.schedule(due, slot);
        id
    }

    /// Graceful leave: the node stops initiating, frames addressed to it
    /// are dropped (counted as dead deliveries), and its address-book
    /// entry is removed. The protocol has no unsubscribe message — the
    /// rest of the overlay forgets the node through view selection,
    /// exactly as the paper's model heals failures. (Peers still gossiping
    /// the departed id may transiently re-teach this book its address;
    /// that is harmless, the entry just points at a silent node.)
    /// Returns false if the node is unknown or already gone.
    pub fn leave(&mut self, id: NodeId) -> bool {
        match self.index.get(&id.as_u64()) {
            Some(&slot) if self.nodes[slot as usize].alive => {
                self.nodes[slot as usize].alive = false;
                self.book.remove(&id.as_u64());
                true
            }
            _ => false,
        }
    }

    /// Declares the age semantics the hosted nodes run (their
    /// [`pss_core::ProtocolConfig`]'s [`Freshness`] — the runtime cannot
    /// see it through the [`GossipNode`] trait, so the builder states it).
    ///
    /// Under [`Freshness::Timestamp`], incoming *protocol* frames from
    /// version-1 senders are refused and counted
    /// ([`RuntimeStats::v1_ages_rejected`]): a v1 age field carries hop
    /// counts by definition, and absorbing hop counts into a
    /// timestamp-ordered view would silently corrupt its eviction order.
    /// Version-2 frames carry the deployment's age dimension verbatim —
    /// the encoder never rewrites ages, so the gate is purely receive-side.
    pub fn set_freshness(&mut self, freshness: Freshness) {
        self.freshness = freshness;
    }

    /// Installs (`Some`) or lifts (`None`) a partition loss matrix
    /// ([`Partition`]): frames whose source and destination node sit in
    /// different groups are suppressed before encoding, counted as
    /// [`RuntimeStats::partition_blocked`]. Blocking is egress-side — in a
    /// cluster every runtime installs the same matrix, so no blocked
    /// traffic crosses in either direction.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        self.partition = partition;
    }

    /// Enables the SIR push-broadcast app: every period, each live hosted
    /// node holding the rumor pushes it to `fanout` peers drawn from its
    /// current view as [`FrameKind::App`] frames. The rumor is the frame
    /// itself — app frames carry no descriptors and never teach the
    /// address book. Nothing spreads until [`NetRuntime::seed_rumor`]
    /// plants the rumor somewhere in the cluster.
    pub fn enable_broadcast(&mut self, fanout: usize) {
        self.app_fanout = Some(fanout);
    }

    /// Plants the rumor at a hosted live node; false if it is unknown or
    /// departed.
    pub fn seed_rumor(&mut self, id: NodeId) -> bool {
        match self.index.get(&id.as_u64()) {
            Some(&slot) if self.nodes[slot as usize].alive => {
                self.nodes[slot as usize].informed = true;
                true
            }
            _ => false,
        }
    }

    /// True if a hosted live node holds the rumor.
    pub fn is_informed(&self, id: NodeId) -> bool {
        self.index.get(&id.as_u64()).is_some_and(|&slot| {
            self.nodes[slot as usize].alive && self.nodes[slot as usize].informed
        })
    }

    /// Visits every live hosted node holding the rumor, in add order.
    pub fn for_each_informed(&self, mut f: impl FnMut(NodeId)) {
        for slot in &self.nodes {
            if slot.alive && slot.informed {
                f(slot.node.id());
            }
        }
    }

    /// The view of a hosted, live node.
    pub fn view_of(&self, id: NodeId) -> Option<&View> {
        let &slot = self.index.get(&id.as_u64())?;
        let slot = &self.nodes[slot as usize];
        slot.alive.then(|| slot.node.view())
    }

    /// A hosted node's counters.
    pub fn node_counters(&self, id: NodeId) -> Option<NodeCounters> {
        let &slot = self.index.get(&id.as_u64())?;
        Some(self.nodes[slot as usize].counters)
    }

    /// The learned address for `id`, if any.
    pub fn address_of(&self, id: NodeId) -> Option<NetAddr> {
        self.book.get(&id.as_u64()).copied()
    }

    /// Visits every live hosted node's `(id, view)` in add order.
    pub fn for_each_live_view(&self, mut f: impl FnMut(NodeId, &View)) {
        for slot in &self.nodes {
            if slot.alive {
                f(slot.node.id(), slot.node.view());
            }
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = RuntimeStats {
            frames_in: self.frames_in,
            frames_out: self.frames_out,
            header_decode_failures: self.header_decode_failures,
            unknown_destination: self.unknown_destination,
            dead_deliveries: self.dead_deliveries,
            send_failures: self.send_failures,
            missing_address: self.missing_address,
            addr_rebinds_rejected: self.addr_rebinds_rejected,
            forged_replies_rejected: self.forged_replies_rejected,
            partition_blocked: self.partition_blocked,
            timers_fired: self.timers_fired,
            requests_in: self.requests_in,
            replies_in: self.replies_in,
            exchanges_completed: self.exchanges_completed,
            v1_ages_rejected: self.v1_ages_rejected,
            recv_ring_empty: self.transport.recv_ring_empty(),
            app_delivered: self.app_delivered,
            app_redundant: self.app_redundant,
            app_wasted: self.app_wasted,
            ..RuntimeStats::default()
        };
        for slot in &self.nodes {
            stats.body_decode_failures += slot.counters.decode_failures;
            stats.timeouts += slot.counters.timeouts;
            stats.empty_view += slot.counters.empty_view;
            stats.backoffs += slot.counters.backoffs;
        }
        stats
    }

    /// Advances runtime time to `deadline`, tick by tick: each tick first
    /// drains and processes every pending frame, then fires the timers due.
    /// Real-time drivers call this in a loop with the wall-derived tick;
    /// deterministic tests drive virtual time directly.
    pub fn run_until(&mut self, deadline: u64) {
        while self.now < deadline {
            let t = self.now + 1;
            self.transport.advance_to(t);
            while let Some(from) = self.transport.try_recv(&mut self.recv_buf) {
                self.process_frame(from);
            }
            self.fire_timers(t);
            self.now = t;
        }
        self.tele.ring_dry.set_max(self.transport.recv_ring_empty());
    }

    /// One full gossip period from the current time.
    pub fn run_period(&mut self) {
        self.run_until(self.now + self.config.period);
    }

    fn process_frame(&mut self, _from: NetAddr) {
        self.frames_in += 1;
        let decode_started = if pss_telemetry::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let frame = match wire::decode(&self.recv_buf) {
            Ok(frame) => frame,
            Err(_) => {
                self.header_decode_failures += 1;
                self.tele.decode_errors.inc();
                pss_telemetry::flight().record(
                    pss_telemetry::EventKind::DecodeError,
                    "header",
                    0,
                    self.recv_buf.len() as u64,
                );
                return;
            }
        };
        // Learn the sender's address — but a frame header may only
        // *introduce* an id, never rebind an established entry: a single
        // forged-src frame must not redirect a known peer's traffic.
        // Genuine address changes propagate through descriptor-carried
        // addresses (gossip content, learned below).
        match self.book.entry(frame.src.as_u64()) {
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert(frame.src_addr);
            }
            std::collections::hash_map::Entry::Occupied(existing) => {
                if *existing.get() != frame.src_addr {
                    self.addr_rebinds_rejected += 1;
                }
            }
        }
        // Version gate on age semantics: a timestamp-mode runtime must not
        // absorb v1 protocol content — those ages are hop counts. App
        // frames carry no ages and pass (they are v2-only anyway).
        if self.freshness == Freshness::Timestamp
            && frame.version < 2
            && frame.kind != FrameKind::App
        {
            self.v1_ages_rejected += 1;
            return;
        }
        let Some(&slot_idx) = self.index.get(&frame.dst.as_u64()) else {
            self.unknown_destination += 1;
            return;
        };
        let slot = &mut self.nodes[slot_idx as usize];
        if !slot.alive {
            self.dead_deliveries += 1;
            if frame.kind == FrameKind::App {
                // The deployed twin of the protocol layer's `wasted`
                // metric: a rumor push spent on a departed node.
                self.app_wasted += 1;
            }
            return;
        }
        let mut payload = self.arena.take_buffer();
        let book = &mut self.book;
        let decoded = if frame.kind == FrameKind::App {
            // App frames are opaque to the membership layer: whatever
            // descriptor region a peer put there must not teach the book.
            wire::read_descriptors(&frame, &mut payload, &mut self.scratch, |_, _| {})
        } else {
            wire::read_descriptors(&frame, &mut payload, &mut self.scratch, |id, addr| {
                book.insert(id.as_u64(), addr);
            })
        };
        if decoded.is_err() {
            slot.counters.decode_failures += 1;
            self.tele.decode_errors.inc();
            pss_telemetry::flight().record(
                pss_telemetry::EventKind::DecodeError,
                match frame.kind {
                    FrameKind::Request => "request",
                    FrameKind::Reply => "reply",
                    FrameKind::App => "app",
                },
                frame.src.as_u64(),
                self.recv_buf.len() as u64,
            );
            self.arena.put_buffer(payload);
            return;
        }
        if let Some(started) = decode_started {
            self.tele
                .decode_hist(frame.kind)
                .record(started.elapsed().as_nanos() as u64);
        }
        match frame.kind {
            FrameKind::Request => {
                slot.counters.msgs_in += 1;
                self.requests_in += 1;
                let request = Request {
                    descriptors: payload,
                    wants_reply: frame.wants_reply,
                };
                match slot
                    .node
                    .handle_request(&mut self.arena, frame.src, request)
                {
                    Some(reply) => self.send_reply(slot_idx, frame.src, frame.src_addr, reply),
                    // Push-only exchange: complete on request delivery.
                    None => self.exchanges_completed += 1,
                }
            }
            FrameKind::Reply => {
                // Only the reply this node is actually waiting for is
                // absorbed: anything else — forged, unsolicited, or
                // arriving after timeout/supersession — is dropped, so an
                // attacker cannot inject view content by blind-firing
                // reply frames.
                if slot.pending_reply.is_none_or(|(peer, _)| peer != frame.src) {
                    self.forged_replies_rejected += 1;
                    self.arena.put_buffer(payload);
                    return;
                }
                slot.counters.msgs_in += 1;
                self.replies_in += 1;
                if let Some((_, sent)) = slot.pending_reply {
                    // Frames are processed while the runtime advances to
                    // `now + 1`, so that is the absorb tick.
                    self.tele
                        .rtt_ticks
                        .record((self.now + 1).saturating_sub(sent));
                }
                slot.pending_reply = None;
                slot.consecutive_timeouts = 0; // responsive again: no backoff
                slot.node.handle_reply(
                    &mut self.arena,
                    frame.src,
                    Reply {
                        descriptors: payload,
                    },
                );
                self.exchanges_completed += 1;
            }
            FrameKind::App => {
                if slot.informed {
                    self.app_redundant += 1;
                } else {
                    slot.informed = true;
                    self.app_delivered += 1;
                }
                self.arena.put_buffer(payload);
            }
        }
    }

    fn fire_timers(&mut self, t: u64) {
        debug_assert!(self.fired.is_empty());
        let mut fired = core::mem::take(&mut self.fired);
        // Catch the wheel up through tick `t` (tick 0 is only reachable on
        // the very first call; afterwards this loop runs exactly once).
        while self.wheel.next_tick() <= t {
            let tick = self.wheel.next_tick();
            let before = fired.len();
            self.wheel.due_at(tick, &mut fired);
            if fired.len() > before {
                // Only batches that actually fired something: empty
                // catch-up ticks say nothing about scheduling lag.
                self.tele.wheel_lag_ticks.record(t - tick);
            }
        }
        for slot_idx in fired.drain(..) {
            let slot = &mut self.nodes[slot_idx as usize];
            if !slot.alive {
                continue; // left: the timer dies here
            }
            self.timers_fired += 1;
            // Expire a stale pushpull exchange.
            if let Some((_, sent)) = slot.pending_reply {
                if t.saturating_sub(sent) >= self.config.reply_timeout {
                    slot.counters.timeouts += 1;
                    slot.consecutive_timeouts += 1;
                    slot.pending_reply = None;
                }
            }
            match slot.node.initiate(&mut self.arena) {
                Some(exchange) => self.send_request(slot_idx, exchange, t),
                None => {
                    self.nodes[slot_idx as usize].counters.empty_view += 1;
                }
            }
            // Re-arm with jitter, the event engine's formula — stretched
            // exponentially (capped at 8×) for a *bootstrapping* node
            // whose exchanges keep timing out. A flash herd of joiners all
            // introduced to one node would otherwise hammer it in lockstep
            // every period while it is too overloaded to answer any of
            // them: the first timeout retries at full rate, repeat
            // offenders space out, and the first absorbed protocol message
            // snaps the node back to the period. Every retry still happens
            // and is counted — no joiner is silently dropped. Integrated
            // nodes (any protocol message absorbed) never back off:
            // post-catastrophe timeouts on dead peers must not slow the
            // self-healing gossip rate.
            let slot = &mut self.nodes[slot_idx as usize];
            let stretch = if slot.counters.msgs_in == 0 {
                1u64 << slot
                    .consecutive_timeouts
                    .saturating_sub(1)
                    .min(MAX_BACKOFF_STRETCH.trailing_zeros())
            } else {
                1
            };
            if stretch > 1 {
                slot.counters.backoffs += 1;
            }
            let jitter = if self.config.jitter == 0 {
                0
            } else {
                self.rng.random_range(0..=2 * self.config.jitter)
            };
            self.wheel.schedule(
                t + stretch * self.config.period - self.config.jitter + jitter,
                slot_idx,
            );
            if let Some(fanout) = self.app_fanout {
                self.push_rumor(slot_idx, fanout);
            }
        }
        self.fired = fired;
    }

    /// One period's rumor pushes from a hosted node, if it holds one:
    /// `fanout` peers drawn uniformly (with replacement) from the node's
    /// current view, each sent a descriptor-free [`FrameKind::App`] frame.
    fn push_rumor(&mut self, slot_idx: u32, fanout: usize) {
        let slot = &self.nodes[slot_idx as usize];
        if !slot.informed {
            return;
        }
        let src = slot.node.id();
        let view_len = slot.node.view().len();
        if view_len == 0 || fanout == 0 {
            return;
        }
        let mut targets = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            let pick = self.rng.random_range(0..view_len);
            targets.push(self.nodes[slot_idx as usize].node.view().descriptors()[pick].id());
        }
        for dst in targets {
            let Some(to) = self.addr_of_or_local(dst) else {
                self.missing_address += 1;
                continue;
            };
            self.send_frame(FrameKind::App, false, src, dst, to, &[]);
        }
    }

    /// Destination resolution: the book, with locally-hosted ids (live or
    /// departed) falling back to this runtime's own address — the same
    /// rule [`NetRuntime::send_frame`]'s descriptor resolver applies, so a
    /// graceful leave's dropped book entry yields a dead delivery (the
    /// simulators' semantics), never a missing address.
    fn addr_of_or_local(&self, id: NodeId) -> Option<NetAddr> {
        self.book.get(&id.as_u64()).copied().or_else(|| {
            self.index
                .contains_key(&id.as_u64())
                .then(|| self.transport.local_addr())
        })
    }

    fn send_request(&mut self, slot_idx: u32, exchange: Exchange, now: u64) {
        let Exchange { peer, request } = exchange;
        let src = self.nodes[slot_idx as usize].node.id();
        let Some(to) = self.addr_of_or_local(peer) else {
            self.missing_address += 1;
            self.arena.put_buffer(request.descriptors);
            return;
        };
        let sent = self.send_frame(
            FrameKind::Request,
            request.wants_reply,
            src,
            peer,
            to,
            &request.descriptors,
        );
        if sent {
            let slot = &mut self.nodes[slot_idx as usize];
            slot.counters.msgs_out += 1;
            if request.wants_reply {
                // A still-outstanding exchange being superseded is a
                // timeout too — its reply never arrived in a full period.
                if slot.pending_reply.take().is_some() {
                    slot.counters.timeouts += 1;
                }
                slot.pending_reply = Some((peer, now));
            }
        }
        self.arena.put_buffer(request.descriptors);
    }

    fn send_reply(&mut self, slot_idx: u32, to_id: NodeId, to_addr: NetAddr, reply: Reply) {
        let src = self.nodes[slot_idx as usize].node.id();
        let sent = self.send_frame(
            FrameKind::Reply,
            false,
            src,
            to_id,
            to_addr,
            &reply.descriptors,
        );
        if sent {
            self.nodes[slot_idx as usize].counters.msgs_out += 1;
        }
        self.arena.put_buffer(reply.descriptors);
    }

    /// Encodes and sends one frame; false on any counted failure.
    fn send_frame(
        &mut self,
        kind: FrameKind,
        wants_reply: bool,
        src: NodeId,
        dst: NodeId,
        to: NetAddr,
        descriptors: &[NodeDescriptor],
    ) -> bool {
        // Group-pair loss matrix: total blackouts drop deterministically,
        // lossy/asymmetric matrices draw from the runtime's RNG per
        // cross-group frame (requests and replies both pass through here,
        // so each direction gets its own loss).
        if self
            .partition
            .is_some_and(|p| p.drops(src, dst, &mut self.rng))
        {
            self.partition_blocked += 1;
            return false;
        }
        let book = &self.book;
        let index = &self.index;
        let local = self.transport.local_addr();
        // Any id hosted here — live or departed — resolves to this
        // runtime's own address without a book entry, so a graceful leave
        // can drop its book entry while views that still reference the
        // departed id stay encodable.
        let resolve = |id: NodeId| {
            book.get(&id.as_u64())
                .copied()
                .or_else(|| index.contains_key(&id.as_u64()).then_some(local))
        };
        match wire::encode(
            &mut self.encode_buf,
            kind,
            wants_reply,
            src,
            dst,
            local,
            descriptors,
            resolve,
        ) {
            Ok(()) => {
                if self.transport.send(to, &self.encode_buf) {
                    self.frames_out += 1;
                    true
                } else {
                    self.send_failures += 1;
                    false
                }
            }
            Err(EncodeError::MissingAddress(_)) => {
                // Unreachable by construction (the book covers every view
                // entry); counted rather than asserted so a regression
                // shows up as a statistic, not a crash mid-cluster.
                self.missing_address += 1;
                false
            }
            Err(EncodeError::TooManyDescriptors(_)) => {
                self.send_failures += 1;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemNetwork;
    use crate::MemTransport;
    use pss_core::{PeerSamplingNode, PolicyTriple, ProtocolConfig};
    use pss_sim::LatencyModel;

    fn protocol(c: usize) -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), c).unwrap()
    }

    fn config() -> NetConfig {
        NetConfig {
            period: 100,
            jitter: 10,
            reply_timeout: 100,
        }
    }

    fn node(id: u64, c: usize) -> PeerSamplingNode {
        PeerSamplingNode::with_seed(NodeId::new(id), protocol(c), id * 31 + 5)
    }

    /// A mesh runtime hosting `n` chain-bootstrapped nodes.
    fn mesh_runtime(
        n: u64,
        latency: LatencyModel,
        loss: f64,
    ) -> (MemNetwork, NetRuntime<MemTransport>) {
        let net = MemNetwork::new(77, latency, loss).expect("valid");
        let transport = net.endpoint();
        let addr = transport.net_addr();
        let mut rt = NetRuntime::new(transport, config(), 5).expect("valid");
        for i in 0..n {
            let introducers: Vec<(NodeId, NetAddr)> = if i == 0 {
                Vec::new()
            } else {
                vec![(NodeId::new(i - 1), addr)]
            };
            rt.add_node(node(i, 8), &introducers);
        }
        (net, rt)
    }

    #[test]
    fn config_validation_mirrors_event_rules() {
        assert!(config().validate().is_ok());
        assert_eq!(
            NetConfig {
                period: 0,
                ..config()
            }
            .validate(),
            Err(EventConfigError::ZeroPeriod)
        );
        assert_eq!(
            NetConfig {
                period: 10,
                jitter: 10,
                reply_timeout: 5
            }
            .validate(),
            Err(EventConfigError::JitterNotBelowPeriod {
                jitter: 10,
                period: 10
            })
        );
        let from = NetConfig::from_event(&EventConfig::default());
        assert_eq!(from.period, 1000);
        assert_eq!(from.jitter, 100);
    }

    #[test]
    fn two_nodes_learn_each_other_over_the_mesh() {
        let (_net, mut rt) = mesh_runtime(2, LatencyModel::Uniform { min: 1, max: 5 }, 0.0);
        rt.run_until(1000); // 10 periods
        assert!(rt.view_of(NodeId::new(0)).unwrap().contains(NodeId::new(1)));
        assert!(rt.view_of(NodeId::new(1)).unwrap().contains(NodeId::new(0)));
        let stats = rt.stats();
        assert!(stats.timers_fired >= 18);
        assert!(stats.requests_in > 0);
        assert!(stats.replies_in > 0);
        // Newscast is pushpull: exchanges complete on reply absorption.
        assert_eq!(stats.exchanges_completed, stats.replies_in);
        assert_eq!(stats.decode_failures(), 0);
        assert_eq!(stats.missing_address, 0);
        let c0 = rt.node_counters(NodeId::new(0)).unwrap();
        assert!(c0.msgs_in > 0 && c0.msgs_out > 0);
    }

    #[test]
    fn overlay_converges_on_one_runtime() {
        let (_net, mut rt) = mesh_runtime(40, LatencyModel::Uniform { min: 1, max: 20 }, 0.0);
        rt.run_until(20 * 100);
        let full = {
            let mut full = 0;
            rt.for_each_live_view(|_, view| {
                if view.len() == 8 {
                    full += 1;
                }
            });
            full
        };
        assert!(full >= 39, "only {full}/40 views full");
        assert_eq!(rt.stats().decode_failures(), 0);
    }

    #[test]
    fn total_loss_counts_timeouts_and_freezes_views() {
        let (net, mut rt) = mesh_runtime(4, LatencyModel::Zero, 1.0);
        rt.run_until(1000);
        let stats = rt.stats();
        assert_eq!(stats.requests_in, 0);
        assert!(net.lost() > 0);
        // Every pushpull initiation eventually times out.
        assert!(stats.timeouts > 0, "no timeouts recorded");
    }

    #[test]
    fn leave_stops_participation() {
        let (_net, mut rt) = mesh_runtime(3, LatencyModel::Uniform { min: 1, max: 3 }, 0.0);
        rt.run_until(500);
        assert!(rt.leave(NodeId::new(2)));
        assert!(!rt.leave(NodeId::new(2)), "double leave");
        assert_eq!(rt.alive_count(), 2);
        assert!(rt.view_of(NodeId::new(2)).is_none());
        let timers_before = rt.stats().timers_fired;
        rt.run_until(1500);
        // Node 2's timer never re-arms; frames to it are dead deliveries.
        let stats = rt.stats();
        assert!(stats.timers_fired > timers_before);
        assert!(stats.dead_deliveries > 0, "peers still gossip at node 2");
        // The dropped book entry must not degrade dead deliveries into
        // missing addresses: hosted ids resolve to the local address.
        // (Peers still gossiping node 2's descriptor re-teach the book its
        // address — the documented transient; the immediate-after-leave
        // removal is pinned in tests/workload_net.rs.)
        assert_eq!(stats.missing_address, 0, "{stats:?}");
    }

    #[test]
    fn broadcast_app_floods_the_runtime_and_wastes_on_the_departed() {
        // (rand,rand,pushpull): random view selection mixes the overlay
        // fast and resists the clustering that head selection (newscast)
        // shows at this scale — the rumor should reach every live node.
        let net =
            MemNetwork::new(77, LatencyModel::Uniform { min: 1, max: 10 }, 0.0).expect("valid");
        let transport = net.endpoint();
        let addr = transport.net_addr();
        let mut rt = NetRuntime::new(transport, config(), 5).expect("valid");
        let policy: PolicyTriple = "(rand,rand,pushpull)".parse().unwrap();
        let proto = ProtocolConfig::new(policy, 8).unwrap();
        for i in 0..30u64 {
            let introducers: Vec<(NodeId, NetAddr)> = if i == 0 {
                Vec::new()
            } else {
                vec![(NodeId::new(i - 1), addr)]
            };
            let node = PeerSamplingNode::with_seed(NodeId::new(i), proto.clone(), i * 31 + 5);
            rt.add_node(node, &introducers);
        }
        rt.run_until(10 * 100); // let the overlay converge first
        rt.enable_broadcast(2);
        assert!(!rt.is_informed(NodeId::new(3)));
        assert!(rt.seed_rumor(NodeId::new(3)));
        assert!(rt.is_informed(NodeId::new(3)));
        assert!(rt.leave(NodeId::new(7)));
        rt.run_until(30 * 100);
        let mut informed = 0;
        rt.for_each_informed(|_| informed += 1);
        assert_eq!(informed, 29, "every live node holds the rumor");
        let stats = rt.stats();
        // 29 live nodes minus the seeded origin were informed by frames.
        assert_eq!(stats.app_delivered, 28);
        assert!(stats.app_redundant > 0, "{stats:?}");
        assert!(
            stats.app_wasted > 0,
            "pushes at the departed node never counted: {stats:?}"
        );
        assert_eq!(stats.decode_failures(), 0);
        // Departed and unknown nodes cannot be seeded.
        assert!(!rt.seed_rumor(NodeId::new(7)));
        assert!(!rt.seed_rumor(NodeId::new(999)));
        assert!(!rt.is_informed(NodeId::new(7)));
    }

    #[test]
    fn deterministic_for_fixed_seeds() {
        let digest = || {
            let (_net, mut rt) = mesh_runtime(20, LatencyModel::Uniform { min: 2, max: 30 }, 0.1);
            rt.run_until(2000);
            let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
            rt.for_each_live_view(|id, view| {
                for d in view.iter() {
                    acc ^= id.as_u64()
                        ^ d.id().as_u64().rotate_left(17)
                        ^ (d.hop_count() as u64).rotate_left(43);
                    acc = acc.wrapping_mul(0x1000_0000_01b3);
                }
            });
            let stats = rt.stats();
            (acc, stats.frames_in, stats.frames_out)
        };
        assert_eq!(digest(), digest());
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let net = MemNetwork::new(3, LatencyModel::Zero, 0.0).expect("valid");
        let mut raw = net.endpoint();
        let transport = net.endpoint();
        let addr = transport.net_addr();
        let mut rt: NetRuntime<MemTransport> =
            NetRuntime::new(transport, config(), 8).expect("valid");
        rt.add_node(node(0, 8), &[]);
        // Garbage, a truncated header, and a frame for an unknown node.
        raw.send(addr, b"not a frame");
        raw.send(addr, &[0, 0, 0]);
        let mut buf = Vec::new();
        wire::encode(
            &mut buf,
            FrameKind::Request,
            false,
            NodeId::new(50),
            NodeId::new(49),
            NetAddr::Virtual(0),
            &[],
            |_| Some(NetAddr::Virtual(0)),
        )
        .unwrap();
        raw.send(addr, &buf);
        rt.run_until(5);
        let stats = rt.stats();
        assert_eq!(stats.frames_in, 3);
        assert_eq!(stats.header_decode_failures, 2);
        assert_eq!(stats.unknown_destination, 1);
        assert_eq!(rt.node_counters(NodeId::new(0)).unwrap().decode_failures, 0);
    }

    #[test]
    fn body_decode_failures_attribute_to_the_destination() {
        let net = MemNetwork::new(3, LatencyModel::Zero, 0.0).expect("valid");
        let mut raw = net.endpoint();
        let transport = net.endpoint();
        let addr = transport.net_addr();
        let mut rt: NetRuntime<MemTransport> =
            NetRuntime::new(transport, config(), 8).expect("valid");
        rt.add_node(node(0, 8), &[]);
        // Duplicate-id body addressed to node 0.
        let dup = [
            NodeDescriptor::new(NodeId::new(7), 1),
            NodeDescriptor::new(NodeId::new(7), 2),
        ];
        let mut buf = Vec::new();
        wire::encode(
            &mut buf,
            FrameKind::Request,
            false,
            NodeId::new(9),
            NodeId::new(0),
            NetAddr::Virtual(0),
            &dup,
            |_| Some(NetAddr::Virtual(0)),
        )
        .unwrap();
        raw.send(addr, &buf);
        rt.run_until(5);
        assert_eq!(rt.node_counters(NodeId::new(0)).unwrap().decode_failures, 1);
        assert_eq!(rt.stats().body_decode_failures, 1);
        // The view stays untouched.
        assert!(rt.view_of(NodeId::new(0)).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "already hosted")]
    fn duplicate_node_ids_are_rejected() {
        let net = MemNetwork::new(3, LatencyModel::Zero, 0.0).expect("valid");
        let mut rt: NetRuntime<MemTransport> =
            NetRuntime::new(net.endpoint(), config(), 8).expect("valid");
        rt.add_node(node(0, 8), &[]);
        rt.add_node(node(0, 8), &[]);
    }

    #[test]
    fn timestamp_mode_rejects_version_1_protocol_frames() {
        let net = MemNetwork::new(3, LatencyModel::Zero, 0.0).expect("valid");
        let mut raw = net.endpoint();
        let transport = net.endpoint();
        let addr = transport.net_addr();
        let mut rt: NetRuntime<MemTransport> =
            NetRuntime::new(transport, config(), 8).expect("valid");
        rt.set_freshness(pss_core::Freshness::Timestamp);
        rt.add_node(node(0, 8), &[]);
        let mut buf = Vec::new();
        wire::encode(
            &mut buf,
            FrameKind::Request,
            false,
            NodeId::new(9),
            NodeId::new(0),
            NetAddr::Virtual(0),
            &[NodeDescriptor::new(NodeId::new(9), 3)],
            |_| Some(NetAddr::Virtual(0)),
        )
        .unwrap();
        // The same content as a v1 frame: its age field is a hop count by
        // definition, so a timestamp-mode runtime must refuse it.
        let mut v1 = buf.clone();
        v1[8] = 1;
        raw.send(addr, &v1);
        raw.send(addr, &buf);
        rt.run_until(5);
        let stats = rt.stats();
        assert_eq!(stats.v1_ages_rejected, 1, "{stats:?}");
        assert_eq!(stats.requests_in, 1, "the v2 twin is absorbed");
        assert!(rt.view_of(NodeId::new(0)).unwrap().contains(NodeId::new(9)));

        // A hop-count runtime absorbs both: v1 ages *are* hop counts.
        let net = MemNetwork::new(3, LatencyModel::Zero, 0.0).expect("valid");
        let transport = net.endpoint();
        let addr = transport.net_addr();
        let mut raw = net.endpoint();
        let mut hop_rt: NetRuntime<MemTransport> =
            NetRuntime::new(transport, config(), 8).expect("valid");
        hop_rt.add_node(node(0, 8), &[]);
        raw.send(addr, &v1);
        raw.send(addr, &buf);
        hop_rt.run_until(5);
        let stats = hop_rt.stats();
        assert_eq!(stats.v1_ages_rejected, 0, "{stats:?}");
        assert_eq!(stats.requests_in, 2, "{stats:?}");
    }

    #[test]
    fn starved_joiners_back_off_until_first_contact() {
        // One introducer that never answers (total loss models an
        // overloaded socket dropping everything): a joiner bootstrapped
        // off it must keep retrying — counted, backed off — instead of
        // hammering every period forever.
        let (_net, mut rt) = mesh_runtime(1, LatencyModel::Zero, 1.0);
        let addr = rt.local_addr();
        rt.add_node(node(1, 8), &[(NodeId::new(0), addr)]);
        rt.run_until(40 * 100); // 40 periods under total loss
        let c = rt.node_counters(NodeId::new(1)).unwrap();
        assert!(c.timeouts > 0, "{c:?}");
        assert!(c.backoffs > 0, "{c:?}");
        // Fully backed off, the joiner initiates every 8th period instead
        // of every period — plus the full-rate rampdown at the start.
        assert!(
            c.msgs_out < 15,
            "a starved joiner must not hammer at full rate: {c:?}"
        );
        assert!(c.msgs_in == 0);

        // Same topology without loss: bootstrap completes in the first
        // few exchanges, so the backoff never engages.
        let (_net, mut rt) = mesh_runtime(1, LatencyModel::Zero, 0.0);
        let addr = rt.local_addr();
        rt.add_node(node(1, 8), &[(NodeId::new(0), addr)]);
        rt.run_until(40 * 100);
        let c = rt.node_counters(NodeId::new(1)).unwrap();
        assert_eq!(c.backoffs, 0, "{c:?}");
        assert!(c.msgs_out >= 35, "{c:?}");
    }

    #[test]
    fn join_after_a_run_clamps_the_timer_phase() {
        let (_net, mut rt) = mesh_runtime(2, LatencyModel::Uniform { min: 1, max: 3 }, 0.0);
        rt.run_until(1000);
        // Joining later must not schedule into the fired past.
        let addr = rt.local_addr();
        rt.add_node(node(2, 8), &[(NodeId::new(0), addr)]);
        rt.run_until(1200);
        assert!(rt.view_of(NodeId::new(2)).is_some());
    }

    /// Every counter survives a two-runtime merge. The struct literal
    /// below deliberately has no `..Default::default()` and the checks
    /// destructure without `..`: adding a field to [`RuntimeStats`]
    /// breaks this test at compile time until the merge (and this
    /// inventory) account for it.
    #[test]
    fn merge_preserves_every_counter() {
        let a = RuntimeStats {
            frames_in: 1,
            frames_out: 2,
            header_decode_failures: 3,
            body_decode_failures: 4,
            unknown_destination: 5,
            dead_deliveries: 6,
            send_failures: 7,
            missing_address: 8,
            addr_rebinds_rejected: 9,
            forged_replies_rejected: 10,
            partition_blocked: 11,
            timers_fired: 12,
            requests_in: 13,
            replies_in: 14,
            exchanges_completed: 15,
            timeouts: 16,
            empty_view: 17,
            backoffs: 22,
            v1_ages_rejected: 23,
            recv_ring_empty: 18,
            app_delivered: 19,
            app_redundant: 20,
            app_wasted: 21,
        };
        let b = RuntimeStats {
            frames_in: 100,
            frames_out: 200,
            header_decode_failures: 300,
            body_decode_failures: 400,
            unknown_destination: 500,
            dead_deliveries: 600,
            send_failures: 700,
            missing_address: 800,
            addr_rebinds_rejected: 900,
            forged_replies_rejected: 1000,
            partition_blocked: 1100,
            timers_fired: 1200,
            requests_in: 1300,
            replies_in: 1400,
            exchanges_completed: 1500,
            timeouts: 1600,
            empty_view: 1700,
            backoffs: 2200,
            v1_ages_rejected: 2300,
            recv_ring_empty: 1800,
            app_delivered: 1900,
            app_redundant: 2000,
            app_wasted: 2100,
        };
        let mut merged = a;
        merged.merge(&b);
        let RuntimeStats {
            frames_in,
            frames_out,
            header_decode_failures,
            body_decode_failures,
            unknown_destination,
            dead_deliveries,
            send_failures,
            missing_address,
            addr_rebinds_rejected,
            forged_replies_rejected,
            partition_blocked,
            timers_fired,
            requests_in,
            replies_in,
            exchanges_completed,
            timeouts,
            empty_view,
            backoffs,
            v1_ages_rejected,
            recv_ring_empty,
            app_delivered,
            app_redundant,
            app_wasted,
        } = merged;
        assert_eq!(frames_in, 101);
        assert_eq!(frames_out, 202);
        assert_eq!(header_decode_failures, 303);
        assert_eq!(body_decode_failures, 404);
        assert_eq!(unknown_destination, 505);
        assert_eq!(dead_deliveries, 606);
        assert_eq!(send_failures, 707);
        assert_eq!(missing_address, 808);
        assert_eq!(addr_rebinds_rejected, 909);
        assert_eq!(forged_replies_rejected, 1010);
        assert_eq!(partition_blocked, 1111);
        assert_eq!(timers_fired, 1212);
        assert_eq!(requests_in, 1313);
        assert_eq!(replies_in, 1414);
        assert_eq!(exchanges_completed, 1515);
        assert_eq!(timeouts, 1616);
        assert_eq!(empty_view, 1717);
        assert_eq!(backoffs, 2222);
        assert_eq!(v1_ages_rejected, 2323);
        assert_eq!(recv_ring_empty, 1818);
        assert_eq!(app_delivered, 1919);
        assert_eq!(app_redundant, 2020);
        assert_eq!(app_wasted, 2121);
    }
}
