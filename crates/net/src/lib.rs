//! **Extension:** the network layer — the protocol stack on real sockets.
//!
//! The paper positions peer sampling as a deployed *service* that
//! applications call over a network; everything else in this workspace
//! drives the protocol in-process. This crate carries the same
//! [`pss_core::GossipNode`] state machines over real messages:
//!
//! * [`Transport`] — a minimal framed-datagram abstraction: send a frame to
//!   a [`NetAddr`], poll received frames, optionally advance
//!   transport-virtual time.
//! * [`UdpTransport`] — one UDP socket per runtime, many virtual nodes
//!   multiplexed by node id, with a background receive thread feeding a
//!   buffer-recycling queue.
//! * [`MemTransport`] / [`MemNetwork`] — a deterministic, seeded in-memory
//!   mesh with per-message latency and loss mirroring the event engine's
//!   [`pss_sim::EventConfig`] semantics, so runtime behavior can be pinned
//!   statistically against [`pss_sim::EventSimulation`] (the differential
//!   tests do exactly that).
//! * [`NetRuntime`] — hosts many gossip nodes on one OS thread: a timer
//!   wheel fires each node's active cycle with jitter, incoming frames are
//!   decoded straight into arena-recycled message buffers
//!   ([`pss_core::wire`]), an address book maps node ids to transport
//!   addresses (learned from bootstrap introducers and from every received
//!   descriptor), and per-node counters track messages, decode failures and
//!   reply timeouts.
//! * [`cluster`] — a loopback harness: N nodes across K runtime threads on
//!   UDP, with per-period overlay snapshots flowing into the simulators'
//!   CSR metrics, and optional [`pss_sim::workload`] schedule execution
//!   (churn, catastrophe, flash crowds, partition/heal) at period
//!   boundaries.
//! * [`workload`] — [`RuntimeWorkload`], a single-runtime
//!   [`pss_sim::workload::WorkloadTarget`] so the simulators' membership
//!   schedules drive the deployed stack unchanged.
//!
//! # Quickstart
//!
//! Two runtimes talking UDP on loopback:
//!
//! ```no_run
//! use pss_core::{NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig};
//! use pss_net::{NetConfig, NetRuntime, UdpTransport};
//!
//! let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 8)?;
//! let config = NetConfig { period: 100, jitter: 20, reply_timeout: 100 };
//! let a = UdpTransport::bind("127.0.0.1:0")?;
//! let b = UdpTransport::bind("127.0.0.1:0")?;
//! let (addr_a, addr_b) = (a.net_addr(), b.net_addr());
//!
//! let mut ra = NetRuntime::new(a, config, 1)?;
//! let mut rb = NetRuntime::new(b, config, 2)?;
//! let n0 = PeerSamplingNode::with_seed(NodeId::new(0), protocol.clone(), 10);
//! let n1 = PeerSamplingNode::with_seed(NodeId::new(1), protocol, 11);
//! ra.add_node(n0, &[(NodeId::new(1), addr_b)]);
//! rb.add_node(n1, &[(NodeId::new(0), addr_a)]);
//!
//! // Drive both runtimes for ~5 periods of wall time (1 tick = 1 ms).
//! let start = std::time::Instant::now();
//! while start.elapsed().as_millis() < 500 {
//!     let now = start.elapsed().as_millis() as u64;
//!     ra.run_until(now);
//!     rb.run_until(now);
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//! assert!(ra.view_of(NodeId::new(0)).unwrap().contains(NodeId::new(1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mem;
mod runtime;
mod transport;
mod udp;
mod wheel;

pub mod cluster;
pub mod workload;

pub use mem::{MemNetwork, MemTransport};
pub use pss_core::wire::NetAddr;
pub use runtime::{NetConfig, NetRuntime, NodeCounters, RuntimeStats};
pub use transport::Transport;
pub use udp::UdpTransport;
pub use workload::RuntimeWorkload;
