//! A simple hashed timer wheel for active-cycle initiation.
//!
//! The runtime fires every node's gossip timer once per period (± jitter).
//! Timer distances are bounded by `period + jitter`, so a single-level
//! wheel with a power-of-two slot count just above that horizon gives O(1)
//! schedule and O(entries-due) advance, with no per-tick allocation.

/// See the [module docs](self). Entries are `(due tick, node slot)`.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(u64, u32)>>,
    mask: u64,
    /// The first tick not yet fired.
    next: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel able to hold timers up to `horizon` ticks in the future.
    pub(crate) fn new(horizon: u64) -> Self {
        let slots = (horizon.max(1) + 1).next_power_of_two().max(64) as usize;
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            mask: slots as u64 - 1,
            next: 0,
            len: 0,
        }
    }

    /// The first tick [`TimerWheel::due_at`] has not fired yet — the
    /// earliest tick a new timer may be scheduled for.
    pub(crate) fn next_tick(&self) -> u64 {
        self.next
    }

    /// Pending timer count.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Schedules `slot`'s timer for tick `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due` is in the already-fired past or beyond the wheel
    /// horizon (both are runtime bugs, not load conditions).
    pub(crate) fn schedule(&mut self, due: u64, slot: u32) {
        assert!(due >= self.next, "timer scheduled into the past");
        assert!(
            due - self.next <= self.mask,
            "timer {due} beyond wheel horizon (next {})",
            self.next
        );
        self.slots[(due & self.mask) as usize].push((due, slot));
        self.len += 1;
    }

    /// Fires tick `t`: drains every entry due exactly at `t` into `out`
    /// (appended; firing order within a tick is schedule order) and makes
    /// `t` past. Ticks must be fired in order, one by one.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not the next unfired tick.
    pub(crate) fn due_at(&mut self, t: u64, out: &mut Vec<u32>) {
        assert_eq!(t, self.next, "ticks must be fired in order");
        let bucket = &mut self.slots[(t & self.mask) as usize];
        let mut i = 0;
        while i < bucket.len() {
            if bucket[i].0 == t {
                out.push(bucket[i].1);
                bucket.remove(i); // keep schedule order for equal future dues
                self.len -= 1;
            } else {
                i += 1;
            }
        }
        self.next = t + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_tick_order_with_wraparound() {
        let mut wheel = TimerWheel::new(100);
        wheel.schedule(3, 30);
        wheel.schedule(1, 10);
        wheel.schedule(3, 31);
        assert_eq!(wheel.len(), 3);
        let mut out = Vec::new();
        for t in 0..=2u64 {
            wheel.due_at(t, &mut out);
        }
        assert_eq!(out, vec![10]);
        out.clear();
        wheel.due_at(3, &mut out);
        assert_eq!(out, vec![30, 31], "same-tick order is schedule order");
        assert_eq!(wheel.len(), 0);
        // Far past the first lap: slots are reused.
        for t in 4..1000u64 {
            wheel.due_at(t, &mut out);
        }
        out.clear();
        wheel.schedule(1000 + 100, 7);
        for t in 1000..1100u64 {
            wheel.due_at(t, &mut out);
        }
        assert!(out.is_empty());
        wheel.due_at(1100, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn colliding_slots_keep_their_due_ticks() {
        // Two timers hashing to the same slot (dues one full lap apart)
        // must not fire together. Horizon 64 → 128 slots.
        let mut wheel = TimerWheel::new(64);
        wheel.schedule(5, 1);
        let mut out = Vec::new();
        for t in 0..5u64 {
            wheel.due_at(t, &mut out);
        }
        wheel.due_at(5, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        wheel.schedule(5 + 128, 2); // hashes to the same bucket as tick 5
        for t in 6..=133u64 {
            wheel.due_at(t, &mut out);
        }
        assert_eq!(out, vec![2]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_schedules() {
        let mut wheel = TimerWheel::new(8);
        wheel.due_at(0, &mut Vec::new());
        wheel.schedule(0, 1);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_beyond_horizon() {
        let mut wheel = TimerWheel::new(8);
        wheel.schedule(10_000, 1);
    }
}
