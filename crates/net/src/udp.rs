//! The UDP transport: one socket per runtime, many virtual nodes.
//!
//! A [`UdpTransport`] owns one `std::net::UdpSocket` plus a background
//! receive thread. The thread blocks on the socket (with a short timeout so
//! shutdown is prompt) and parks each datagram — one wire frame, see
//! [`pss_core::wire`] — in the **receive ring**: a pair of deques of owned,
//! prewarmed buffers shared with the runtime thread.
//!
//! # The receive ring
//!
//! `frames` holds filled buffers travelling thread → runtime; `spent` holds
//! empty ones travelling back. [`Transport::try_recv`] hands a frame over
//! by **pointer swap** (`mem::swap` with the caller's reusable buffer — no
//! byte copy), and the caller's previous buffer drops into `spent` for the
//! receive thread to fill next. The ring is prewarmed to its configured
//! depth at bind time, so in steady state the datagram path allocates
//! nothing: every buffer in circulation was created before the first
//! frame. If the runtime falls behind and the receive thread finds `spent`
//! dry, it allocates a fresh buffer and counts a **ring-empty event**
//! ([`UdpTransport::ring_empty_events`], surfaced as
//! [`crate::RuntimeStats::recv_ring_empty`]) — the signal to raise the
//! depth. Earlier revisions recycled over `mpsc` channels, which silently
//! fell back to a fresh 8 KB allocation per frame whenever the return
//! channel raced the receive thread, and copied every frame once more on
//! the runtime side.
//!
//! Virtual-node multiplexing happens one layer up: frames carry their own
//! destination node id, the runtime routes them. The transport never looks
//! inside a frame.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use pss_core::wire::NetAddr;

use crate::transport::Transport;

/// Largest datagram the receive loop accepts: the codec's own frame bound,
/// so every frame `wire::encode` can legally produce fits (~32 KB at
/// `MAX_DESCRIPTORS`; typical frames are ~1 KB at the paper's c = 30).
/// Larger datagrams are truncated by the OS and then rejected by the
/// codec's length check, which the runtime counts as a decode failure.
const RECV_BUFFER_LEN: usize = pss_core::wire::MAX_FRAME_LEN;

/// Default receive-ring depth: buffers prewarmed at bind time and the cap
/// on parked spent buffers. One runtime drains its transport every tick,
/// so the ring only needs to cover the frames arriving within one tick.
pub const DEFAULT_RING_DEPTH: usize = 16;

/// The two directions of the receive ring plus its diagnostics; shared by
/// the socket thread and the runtime thread.
struct Ring {
    /// Filled buffers: receive thread → runtime.
    frames: Mutex<VecDeque<(SocketAddr, Vec<u8>)>>,
    /// Empty buffers riding back: runtime → receive thread.
    spent: Mutex<VecDeque<Vec<u8>>>,
    /// Times the receive thread found `spent` dry and had to allocate.
    ring_empty: AtomicU64,
    /// Cap on parked spent buffers (= the prewarm depth).
    depth: usize,
}

/// Ring locks are held for single push/pop operations only; recovering
/// from poisoning keeps one panicking thread from wedging the other.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// See the [module docs](self).
pub struct UdpTransport {
    socket: UdpSocket,
    local: SocketAddr,
    ring: Arc<Ring>,
    stop: Arc<AtomicBool>,
    recv_thread: Option<JoinHandle<()>>,
}

impl UdpTransport {
    /// Binds a socket (`"127.0.0.1:0"` for an ephemeral loopback port) and
    /// starts the receive thread, with the ring prewarmed to
    /// [`DEFAULT_RING_DEPTH`] buffers.
    ///
    /// # Errors
    ///
    /// Any socket-level error from binding or configuring the socket.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with_ring_depth(addr, DEFAULT_RING_DEPTH)
    }

    /// [`UdpTransport::bind`] with an explicit ring depth: `depth` receive
    /// buffers (of the maximum frame length each) are allocated up front,
    /// and at most `depth` spent buffers are kept parked. A depth of zero
    /// disables pooling entirely (every frame allocates — only useful to
    /// measure the ring's effect).
    ///
    /// # Errors
    ///
    /// Any socket-level error from binding or configuring the socket.
    pub fn bind_with_ring_depth(addr: impl ToSocketAddrs, depth: usize) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        let reader = socket.try_clone()?;
        // A finite read timeout lets the receive thread notice `stop`
        // without any platform-specific socket shutdown dance.
        reader.set_read_timeout(Some(Duration::from_millis(25)))?;
        let ring = Arc::new(Ring {
            frames: Mutex::new(VecDeque::with_capacity(depth)),
            // Prewarm: every steady-state buffer exists before frame one.
            spent: Mutex::new(
                (0..depth)
                    .map(|_| Vec::with_capacity(RECV_BUFFER_LEN))
                    .collect(),
            ),
            ring_empty: AtomicU64::new(0),
            depth,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let thread_ring = Arc::clone(&ring);
        let thread_stop = Arc::clone(&stop);
        let recv_thread = std::thread::spawn(move || {
            recv_loop(&reader, &thread_ring, &thread_stop);
        });
        Ok(UdpTransport {
            socket,
            local,
            ring,
            stop,
            recv_thread: Some(recv_thread),
        })
    }

    /// The bound socket address.
    pub fn local_socket_addr(&self) -> SocketAddr {
        self.local
    }

    /// The bound address as a [`NetAddr`] (what peers put in frames).
    pub fn net_addr(&self) -> NetAddr {
        NetAddr::Sock(self.local)
    }

    /// Times the receive thread found the spent ring dry and allocated a
    /// fresh buffer. Zero in steady state; a growing count means the ring
    /// depth is too small for the frame rate.
    pub fn ring_empty_events(&self) -> u64 {
        self.ring.ring_empty.load(Ordering::Relaxed)
    }

    /// Spent buffers currently parked in the ring (diagnostic).
    pub fn pooled_buffers(&self) -> usize {
        lock(&self.ring.spent).len()
    }
}

fn recv_loop(socket: &UdpSocket, ring: &Ring, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        // Reuse a spent buffer; falling back to a fresh allocation is the
        // ring-empty event the stats surface.
        let mut buf = match lock(&ring.spent).pop_front() {
            Some(buf) => buf,
            None => {
                ring.ring_empty.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(RECV_BUFFER_LEN)
            }
        };
        buf.resize(RECV_BUFFER_LEN, 0);
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                buf.truncate(n);
                lock(&ring.frames).push_back((from, buf));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle wakeup: park the buffer again rather than dropping
                // its capacity.
                park_spent(ring, buf);
            }
            // Transient ICMP-induced errors (e.g. a peer's port closed)
            // surface here on some platforms; keep receiving.
            Err(_) => park_spent(ring, buf),
        }
    }
}

/// Returns a buffer to the spent ring, dropping it if the ring is full
/// (the depth bounds idle memory).
fn park_spent(ring: &Ring, buffer: Vec<u8>) {
    let mut spent = lock(&ring.spent);
    if spent.len() < ring.depth {
        spent.push_back(buffer);
    }
}

impl Transport for UdpTransport {
    fn local_addr(&self) -> NetAddr {
        NetAddr::Sock(self.local)
    }

    fn send(&mut self, to: NetAddr, frame: &[u8]) -> bool {
        match to {
            NetAddr::Sock(addr) => {
                matches!(self.socket.send_to(frame, addr), Ok(n) if n == frame.len())
            }
            NetAddr::Virtual(_) => false,
        }
    }

    fn try_recv(&mut self, buf: &mut Vec<u8>) -> Option<NetAddr> {
        let (from, mut bytes) = lock(&self.ring.frames).pop_front()?;
        // Zero-copy handoff: the caller takes ownership of the filled
        // buffer by pointer swap, and the caller's previous buffer rides
        // back to the receive thread as ring capacity.
        core::mem::swap(buf, &mut bytes);
        park_spent(&self.ring, bytes);
        Some(NetAddr::Sock(from))
    }

    fn recv_ring_empty(&self) -> u64 {
        self.ring_empty_events()
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.recv_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip_and_recycling() {
        let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind("127.0.0.1:0").expect("bind b");
        assert!(a.send(b.net_addr(), b"frame-1"));
        assert!(a.send(b.net_addr(), b"frame-2"));
        let mut buf = Vec::new();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 2 && std::time::Instant::now() < deadline {
            match b.try_recv(&mut buf) {
                Some(from) => {
                    assert_eq!(from, a.net_addr());
                    got.push(buf.clone());
                }
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        got.sort();
        assert_eq!(got, vec![b"frame-1".to_vec(), b"frame-2".to_vec()]);
        // The prewarmed ring absorbed both frames without allocating.
        assert_eq!(b.ring_empty_events(), 0);
    }

    #[test]
    fn ring_is_prewarmed_to_the_configured_depth() {
        let t = UdpTransport::bind_with_ring_depth("127.0.0.1:0", 4).expect("bind");
        // The receive thread holds at most one buffer while blocked in
        // recv_from; the rest stay parked.
        assert!(t.pooled_buffers() >= 3, "{}", t.pooled_buffers());
        assert_eq!(t.ring_empty_events(), 0);
    }

    #[test]
    fn zero_depth_ring_counts_every_allocation() {
        let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind_with_ring_depth("127.0.0.1:0", 0).expect("bind b");
        assert_eq!(b.pooled_buffers(), 0);
        assert!(a.send(b.net_addr(), b"x"));
        let mut buf = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.try_recv(&mut buf).is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(buf, b"x");
        // With no prewarmed buffers, the very first receive had to allocate.
        assert!(b.ring_empty_events() >= 1);
    }

    #[test]
    fn swapped_out_caller_buffers_flow_back_to_the_ring() {
        let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind_with_ring_depth("127.0.0.1:0", 2).expect("bind b");
        let mut buf = Vec::new();
        for i in 0..10u8 {
            assert!(a.send(b.net_addr(), &[i; 3]));
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while b.try_recv(&mut buf).is_none() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(buf, [i; 3]);
        }
        // Capacity kept circulating: at most the one cold-start allocation
        // (the caller's initial zero-capacity buffer entering the ring).
        assert!(b.ring_empty_events() <= 1, "{}", b.ring_empty_events());
    }

    #[test]
    fn virtual_addresses_are_unroutable() {
        let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind");
        assert!(!a.send(NetAddr::Virtual(3), b"x"));
    }

    #[test]
    fn drop_joins_the_receive_thread() {
        let t = UdpTransport::bind("127.0.0.1:0").expect("bind");
        let started = std::time::Instant::now();
        drop(t);
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
