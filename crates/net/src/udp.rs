//! The UDP transport: one socket per runtime, many virtual nodes.
//!
//! A [`UdpTransport`] owns one `std::net::UdpSocket` plus a background
//! receive thread. The thread blocks on the socket (with a short timeout so
//! shutdown is prompt) and hands each datagram — one wire frame, see
//! [`pss_core::wire`] — to the runtime through a channel. Spent receive
//! buffers flow back to the thread over a return channel, so the datagram
//! path recycles its allocations in steady state.
//!
//! Virtual-node multiplexing happens one layer up: frames carry their own
//! destination node id, the runtime routes them. The transport never looks
//! inside a frame.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use pss_core::wire::NetAddr;

use crate::transport::Transport;

/// Largest datagram the receive loop accepts: the codec's own frame bound,
/// so every frame `wire::encode` can legally produce fits (~32 KB at
/// `MAX_DESCRIPTORS`; typical frames are ~1 KB at the paper's c = 30).
/// Larger datagrams are truncated by the OS and then rejected by the
/// codec's length check, which the runtime counts as a decode failure.
const RECV_BUFFER_LEN: usize = pss_core::wire::MAX_FRAME_LEN;

/// See the [module docs](self).
pub struct UdpTransport {
    socket: UdpSocket,
    local: SocketAddr,
    frames: Receiver<(SocketAddr, Vec<u8>)>,
    spent: Sender<Vec<u8>>,
    stop: Arc<AtomicBool>,
    recv_thread: Option<JoinHandle<()>>,
}

impl UdpTransport {
    /// Binds a socket (`"127.0.0.1:0"` for an ephemeral loopback port) and
    /// starts the receive thread.
    ///
    /// # Errors
    ///
    /// Any socket-level error from binding or configuring the socket.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        let reader = socket.try_clone()?;
        // A finite read timeout lets the receive thread notice `stop`
        // without any platform-specific socket shutdown dance.
        reader.set_read_timeout(Some(Duration::from_millis(25)))?;
        let (frame_tx, frames) = mpsc::channel();
        let (spent, spent_rx) = mpsc::channel::<Vec<u8>>();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let recv_thread = std::thread::spawn(move || {
            recv_loop(&reader, &frame_tx, &spent_rx, &thread_stop);
        });
        Ok(UdpTransport {
            socket,
            local,
            frames,
            spent,
            stop,
            recv_thread: Some(recv_thread),
        })
    }

    /// The bound socket address.
    pub fn local_socket_addr(&self) -> SocketAddr {
        self.local
    }

    /// The bound address as a [`NetAddr`] (what peers put in frames).
    pub fn net_addr(&self) -> NetAddr {
        NetAddr::Sock(self.local)
    }
}

fn recv_loop(
    socket: &UdpSocket,
    frames: &Sender<(SocketAddr, Vec<u8>)>,
    spent: &Receiver<Vec<u8>>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        // Reuse a spent buffer when the runtime has returned one.
        let mut buf = spent.try_recv().unwrap_or_default();
        buf.resize(RECV_BUFFER_LEN, 0);
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                buf.truncate(n);
                if frames.send((from, buf)).is_err() {
                    return; // runtime gone
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            // Transient ICMP-induced errors (e.g. a peer's port closed)
            // surface here on some platforms; keep receiving.
            Err(_) => {}
        }
    }
}

impl Transport for UdpTransport {
    fn local_addr(&self) -> NetAddr {
        NetAddr::Sock(self.local)
    }

    fn send(&mut self, to: NetAddr, frame: &[u8]) -> bool {
        match to {
            NetAddr::Sock(addr) => {
                matches!(self.socket.send_to(frame, addr), Ok(n) if n == frame.len())
            }
            NetAddr::Virtual(_) => false,
        }
    }

    fn try_recv(&mut self, buf: &mut Vec<u8>) -> Option<NetAddr> {
        match self.frames.try_recv() {
            Ok((from, bytes)) => {
                buf.clear();
                buf.extend_from_slice(&bytes);
                let _ = self.spent.send(bytes); // recycle
                Some(NetAddr::Sock(from))
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.recv_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip_and_recycling() {
        let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind("127.0.0.1:0").expect("bind b");
        assert!(a.send(b.net_addr(), b"frame-1"));
        assert!(a.send(b.net_addr(), b"frame-2"));
        let mut buf = Vec::new();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 2 && std::time::Instant::now() < deadline {
            match b.try_recv(&mut buf) {
                Some(from) => {
                    assert_eq!(from, a.net_addr());
                    got.push(buf.clone());
                }
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        got.sort();
        assert_eq!(got, vec![b"frame-1".to_vec(), b"frame-2".to_vec()]);
    }

    #[test]
    fn virtual_addresses_are_unroutable() {
        let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind");
        assert!(!a.send(NetAddr::Virtual(3), b"x"));
    }

    #[test]
    fn drop_joins_the_receive_thread() {
        let t = UdpTransport::bind("127.0.0.1:0").expect("bind");
        let started = std::time::Instant::now();
        drop(t);
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
