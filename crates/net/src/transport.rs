//! The transport abstraction the runtime is generic over.

use pss_core::wire::NetAddr;

/// A framed-datagram transport: one endpoint multiplexing many virtual
/// nodes (frames carry their own destination node id, see
/// [`pss_core::wire`]).
///
/// Implementations are message-oriented (one `send` = one frame = one
/// `try_recv`), best-effort (frames may be lost; the protocol tolerates
/// loss by design), and non-blocking on the receive side — the runtime
/// polls between timer ticks.
pub trait Transport {
    /// This endpoint's address, as other endpoints should send to it.
    fn local_addr(&self) -> NetAddr;

    /// Sends one frame to `to`. Returns false if the transport could not
    /// hand the frame off at all (unroutable address, socket error); losses
    /// *in transit* still return true — senders cannot observe them, just
    /// as on a real network.
    fn send(&mut self, to: NetAddr, frame: &[u8]) -> bool;

    /// Copies the next pending received frame into `buf` (cleared first)
    /// and returns the sender's transport address, or `None` if nothing is
    /// pending. Never blocks.
    fn try_recv(&mut self, buf: &mut Vec<u8>) -> Option<NetAddr>;

    /// Advances transport-virtual time to `now` ticks. Real-time transports
    /// ignore this (delivery is governed by the wall clock); the
    /// deterministic in-memory mesh releases frames whose simulated latency
    /// has elapsed.
    fn advance_to(&mut self, now: u64) {
        let _ = now;
    }

    /// Times the receive path had to allocate because its recycled-buffer
    /// ring was dry (see [`crate::UdpTransport`]'s receive ring). Zero for
    /// transports without a buffer ring; surfaced as
    /// [`crate::RuntimeStats::recv_ring_empty`].
    fn recv_ring_empty(&self) -> u64 {
        0
    }
}
