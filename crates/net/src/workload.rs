//! Driving the network runtime through `pss-sim` workload schedules.
//!
//! [`RuntimeWorkload`] wraps one [`NetRuntime`] (any transport) and
//! implements [`pss_sim::workload::WorkloadTarget`], so the exact same
//! [`CompiledWorkload`](pss_sim::workload::CompiledWorkload) that drives
//! the simulators — same kills, same joins, same contacts, same
//! partition windows — executes against the deployed stack: real wire
//! frames, the timer wheel, the address book. Over the deterministic
//! in-memory mesh ([`crate::MemNetwork`]) the whole trajectory is
//! bit-reproducible per seed; the conformance tests pin it statistically
//! against the event engine. For the multi-runtime loopback UDP version
//! see [`crate::cluster`], which executes compiled steps across runtime
//! threads.

use pss_core::wire::NetAddr;
use pss_core::{GossipNode, NodeId, PeerSamplingNode, ProtocolConfig};
use pss_sim::workload::{Partition, WorkloadTarget};

use crate::runtime::NetRuntime;
use crate::transport::Transport;

/// SplitMix64 finalizer shared with the cluster harness for
/// `(seed, id)`-pure node seeds.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `(seed, id)`-pure node seed, shared by the cluster harness and
/// [`RuntimeWorkload`] so a node's RNG stream does not depend on which
/// harness hosts it.
pub(crate) fn node_seed(seed: u64, id: u64) -> u64 {
    mix(seed ^ 0x5eed ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// A single [`NetRuntime`] hosting the whole population, driven as a
/// [`WorkloadTarget`]; see the [module docs](self).
///
/// The population is produced by a node builder `(id, node_seed) → N`, so
/// mixed honest/adversarial populations (e.g.
/// `pss_sim::audit::role_factory`) plug straight in via
/// [`RuntimeWorkload::with_builder`]; [`RuntimeWorkload::new`] is the
/// all-honest [`PeerSamplingNode`] special case.
pub struct RuntimeWorkload<T: Transport, N: GossipNode = PeerSamplingNode> {
    runtime: NetRuntime<T, N>,
    builder: Box<dyn Fn(NodeId, u64) -> N + Send>,
    seed: u64,
}

impl<T: Transport> RuntimeWorkload<T> {
    /// Wraps `runtime`, hosting `initial_nodes` honest
    /// [`PeerSamplingNode`]s with ids `0..initial_nodes` bootstrapped in
    /// the simulators' tree pattern (node `i` is introduced to node
    /// `i / 2`). Node RNG seeds are `(seed, id)`-pure.
    pub fn new(
        runtime: NetRuntime<T, PeerSamplingNode>,
        protocol: ProtocolConfig,
        seed: u64,
        initial_nodes: usize,
    ) -> Self {
        Self::with_builder(
            runtime,
            move |id, node_seed| PeerSamplingNode::with_seed(id, protocol.clone(), node_seed),
            seed,
            initial_nodes,
        )
    }
}

impl<T: Transport, N: GossipNode> RuntimeWorkload<T, N> {
    /// Wraps `runtime`, hosting `initial_nodes` nodes built by `builder`
    /// (tree-pattern bootstrap, `(seed, id)`-pure node seeds — identical
    /// to [`RuntimeWorkload::new`] apart from the node construction).
    pub fn with_builder(
        mut runtime: NetRuntime<T, N>,
        builder: impl Fn(NodeId, u64) -> N + Send + 'static,
        seed: u64,
        initial_nodes: usize,
    ) -> Self {
        let addr = runtime.local_addr();
        for i in 0..initial_nodes as u64 {
            let node = builder(NodeId::new(i), node_seed(seed, i));
            let introducers: Vec<(NodeId, NetAddr)> = if i == 0 {
                Vec::new()
            } else {
                vec![(NodeId::new(i / 2), addr)]
            };
            runtime.add_node(node, &introducers);
        }
        RuntimeWorkload {
            runtime,
            builder: Box::new(builder),
            seed,
        }
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &NetRuntime<T, N> {
        &self.runtime
    }

    /// Mutable access to the wrapped runtime (e.g. to drive extra time or
    /// read counters mid-schedule).
    pub fn runtime_mut(&mut self) -> &mut NetRuntime<T, N> {
        &mut self.runtime
    }
}

impl<T: Transport, N: GossipNode> WorkloadTarget for RuntimeWorkload<T, N> {
    fn kill(&mut self, id: NodeId) -> bool {
        self.runtime.leave(id)
    }

    fn join(&mut self, id: NodeId, contacts: &[NodeId]) {
        let addr = self.runtime.local_addr();
        let node = (self.builder)(id, node_seed(self.seed, id.as_u64()));
        let introducers: Vec<(NodeId, NetAddr)> = contacts.iter().map(|&c| (c, addr)).collect();
        self.runtime.add_node(node, &introducers);
    }

    fn set_partition(&mut self, partition: Option<Partition>) {
        self.runtime.set_partition(partition);
    }

    fn run_period(&mut self) {
        let period = self.runtime.config().period;
        let now = self.runtime.now();
        self.runtime.run_until(now + period);
    }

    fn collect_rows(&self, rows: &mut Vec<(NodeId, Vec<NodeId>)>) {
        let start = rows.len();
        self.runtime.for_each_live_view(|id, view| {
            rows.push((id, view.ids().collect()));
        });
        // Hosted in add order = id order here, but keep the contract
        // explicit.
        rows[start..].sort_by_key(|(id, _)| *id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemNetwork;
    use crate::runtime::NetConfig;
    use pss_core::PolicyTriple;
    use pss_sim::workload::{run_workload, Workload};
    use pss_sim::LatencyModel;

    fn harness(n: usize, seed: u64) -> RuntimeWorkload<crate::MemTransport> {
        let net = MemNetwork::new(seed ^ 0x77, LatencyModel::Uniform { min: 1, max: 10 }, 0.0)
            .expect("valid");
        let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap();
        let runtime = NetRuntime::new(
            net.endpoint(),
            NetConfig {
                period: 100,
                jitter: 20,
                reply_timeout: 100,
            },
            seed,
        )
        .expect("valid");
        RuntimeWorkload::new(runtime, protocol, seed, n)
    }

    #[test]
    fn workload_runs_on_the_mem_runtime() {
        let mut target = harness(60, 9);
        let compiled = Workload::new(5)
            .quiet(8)
            .catastrophe(0.5)
            .churn(0.02, 8)
            .compile(60);
        let records = run_workload(&mut target, &compiled, 8);
        assert_eq!(records.len(), 16);
        // Converged before the kill, live population halved after it.
        assert!(records[7].full_fraction() >= 0.95, "{:?}", records[7]);
        assert!(records[8].live <= 32, "{:?}", records[8]);
        // Recovery: dead links decay, overlay stays whole, codec clean.
        let last = records.last().unwrap();
        assert!(last.dead_link_fraction() < 0.15, "{last:?}");
        assert!(last.component_fraction() > 0.9, "{last:?}");
        let stats = target.runtime().stats();
        assert_eq!(stats.decode_failures(), 0, "{stats:?}");
    }

    #[test]
    fn workload_trajectory_is_deterministic_per_seed() {
        let run = || {
            let mut target = harness(40, 3);
            let compiled = Workload::new(2)
                .quiet(4)
                .partition(2, 3)
                .quiet(3)
                .compile(40);
            let records = run_workload(&mut target, &compiled, 8);
            let stats = target.runtime().stats();
            (records, stats)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(sa, sb);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.in_degree_mean.to_bits(), y.in_degree_mean.to_bits());
            assert_eq!(x.live, y.live);
            assert_eq!(x.dead_links, y.dead_links);
        }
        assert!(sa.partition_blocked > 0, "partition never blocked: {sa:?}");
    }
}
