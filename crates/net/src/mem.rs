//! Deterministic in-memory transport mesh.
//!
//! [`MemNetwork`] is a seeded message switch connecting any number of
//! [`MemTransport`] endpoints. Every frame drawn through it pays a
//! uniform-random latency and a loss draw from the mesh's own RNG — the
//! same per-message model as the event engine's
//! [`pss_sim::EventConfig`]/[`pss_sim::LatencyModel`], which is exactly
//! what lets the differential tests pin [`crate::NetRuntime`] behavior
//! statistically against [`pss_sim::EventSimulation`] at equal
//! `(seed, latency, loss)`.
//!
//! Frames cross the mesh as **encoded bytes**: the in-memory path exercises
//! the identical [`pss_core::wire`] codec the UDP transport puts on real
//! sockets, so a codec regression fails the deterministic tests before it
//! ever reaches a socket.
//!
//! # Determinism
//!
//! All randomness (latency, loss) comes from the construction seed, and
//! delivery order is `(deliver-at, send-sequence)`. Runs are bit-reproducible
//! when endpoints are driven from a single thread in a fixed order — the
//! harness pattern used by the tests. (The mesh is `Mutex`-guarded, so
//! multi-threaded drivers are safe but trade the reproducibility away,
//! exactly like a real network.)

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Arc, Mutex};

use pss_core::wire::NetAddr;
use pss_sim::{EventConfig, EventConfigError, LatencyModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::transport::Transport;

/// A frame in flight: ordered by `(deliver-at, send sequence)`.
struct Flight {
    at: u64,
    seq: u64,
    dst: usize,
    from: NetAddr,
    bytes: Vec<u8>,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Inner {
    rng: SmallRng,
    latency: LatencyModel,
    loss: f64,
    now: u64,
    seq: u64,
    in_flight: BinaryHeap<Reverse<Flight>>,
    inboxes: Vec<VecDeque<(NetAddr, Vec<u8>)>>,
    lost: u64,
    unroutable: u64,
}

/// The shared mesh; clone-cheap handle. See the [module docs](self).
#[derive(Clone)]
pub struct MemNetwork {
    inner: Arc<Mutex<Inner>>,
}

impl MemNetwork {
    /// Creates a mesh with the given latency model and loss probability.
    ///
    /// # Errors
    ///
    /// [`EventConfigError::InvalidLossProbability`] if `loss` is outside
    /// `[0, 1]`.
    pub fn new(seed: u64, latency: LatencyModel, loss: f64) -> Result<Self, EventConfigError> {
        if !(0.0..=1.0).contains(&loss) {
            return Err(EventConfigError::InvalidLossProbability(loss));
        }
        Ok(MemNetwork {
            inner: Arc::new(Mutex::new(Inner {
                rng: SmallRng::seed_from_u64(seed),
                latency,
                loss,
                now: 0,
                seq: 0,
                in_flight: BinaryHeap::new(),
                inboxes: Vec::new(),
                lost: 0,
                unroutable: 0,
            })),
        })
    }

    /// Creates a mesh taking its latency model and loss probability from an
    /// event-engine configuration — the mirrored-semantics constructor used
    /// by the differential tests (the config's `period`/`jitter` belong to
    /// the runtime side, see [`crate::NetConfig::from_event`]).
    ///
    /// # Errors
    ///
    /// [`EventConfigError`] if the configuration is invalid.
    pub fn from_event(seed: u64, config: &EventConfig) -> Result<Self, EventConfigError> {
        config.validate()?;
        Self::new(seed, config.latency, config.loss_probability)
    }

    /// Registers a new endpoint on the mesh and returns its transport.
    pub fn endpoint(&self) -> MemTransport {
        let mut inner = self.inner.lock().expect("mesh lock");
        let id = inner.inboxes.len() as u64;
        inner.inboxes.push(VecDeque::new());
        MemTransport {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// Frames dropped by the loss model so far.
    pub fn lost(&self) -> u64 {
        self.inner.lock().expect("mesh lock").lost
    }

    /// Frames sent to addresses no endpoint owns.
    pub fn unroutable(&self) -> u64 {
        self.inner.lock().expect("mesh lock").unroutable
    }

    /// Frames currently in flight (sent, not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().expect("mesh lock").in_flight.len()
    }
}

/// One endpoint of a [`MemNetwork`]; addressed as
/// [`NetAddr::Virtual`]`(endpoint index)`.
pub struct MemTransport {
    inner: Arc<Mutex<Inner>>,
    id: u64,
}

impl MemTransport {
    /// This endpoint's mesh address.
    pub fn net_addr(&self) -> NetAddr {
        NetAddr::Virtual(self.id)
    }
}

impl Transport for MemTransport {
    fn local_addr(&self) -> NetAddr {
        NetAddr::Virtual(self.id)
    }

    fn send(&mut self, to: NetAddr, frame: &[u8]) -> bool {
        let mut inner = self.inner.lock().expect("mesh lock");
        let dst = match to {
            NetAddr::Virtual(v) if (v as usize) < inner.inboxes.len() => v as usize,
            _ => {
                inner.unroutable += 1;
                return false;
            }
        };
        // Sender-side draws, in send order — the event engine's model.
        if inner.loss > 0.0 && inner.rng.random::<f64>() < inner.loss {
            inner.lost += 1;
            return true; // handed off; lost in transit, invisibly to the sender
        }
        let latency = inner.latency.sample(&mut inner.rng);
        let at = inner.now + latency;
        inner.seq += 1;
        let flight = Flight {
            at,
            seq: inner.seq,
            dst,
            from: NetAddr::Virtual(self.id),
            bytes: frame.to_vec(),
        };
        inner.in_flight.push(Reverse(flight));
        true
    }

    fn try_recv(&mut self, buf: &mut Vec<u8>) -> Option<NetAddr> {
        let mut inner = self.inner.lock().expect("mesh lock");
        let (from, bytes) = inner.inboxes[self.id as usize].pop_front()?;
        buf.clear();
        buf.extend_from_slice(&bytes);
        Some(from)
    }

    fn advance_to(&mut self, now: u64) {
        let mut inner = self.inner.lock().expect("mesh lock");
        if now > inner.now {
            inner.now = now;
        }
        let horizon = inner.now;
        while inner
            .in_flight
            .peek()
            .is_some_and(|Reverse(f)| f.at <= horizon)
        {
            let Reverse(flight) = inner.in_flight.pop().expect("peeked");
            inner.inboxes[flight.dst].push_back((flight.from, flight.bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(latency: LatencyModel, loss: f64) -> MemNetwork {
        MemNetwork::new(9, latency, loss).expect("valid")
    }

    #[test]
    fn rejects_invalid_loss() {
        assert_eq!(
            MemNetwork::new(1, LatencyModel::Zero, 1.5).err(),
            Some(EventConfigError::InvalidLossProbability(1.5))
        );
    }

    #[test]
    fn delivers_after_latency_in_order() {
        let net = mesh(LatencyModel::Uniform { min: 5, max: 5 }, 0.0);
        let mut a = net.endpoint();
        let mut b = net.endpoint();
        assert!(a.send(b.net_addr(), b"one"));
        assert!(a.send(b.net_addr(), b"two"));
        let mut buf = Vec::new();
        // Nothing before the latency has elapsed.
        b.advance_to(4);
        assert!(b.try_recv(&mut buf).is_none());
        b.advance_to(5);
        assert_eq!(b.try_recv(&mut buf), Some(a.net_addr()));
        assert_eq!(buf, b"one");
        assert_eq!(b.try_recv(&mut buf), Some(a.net_addr()));
        assert_eq!(buf, b"two", "equal-latency frames keep send order");
        assert!(b.try_recv(&mut buf).is_none());
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn total_loss_drops_everything_silently() {
        let net = mesh(LatencyModel::Zero, 1.0);
        let mut a = net.endpoint();
        let mut b = net.endpoint();
        assert!(a.send(b.net_addr(), b"x"), "loss is invisible to senders");
        b.advance_to(100);
        assert!(b.try_recv(&mut Vec::new()).is_none());
        assert_eq!(net.lost(), 1);
    }

    #[test]
    fn unroutable_addresses_fail_the_send() {
        let net = mesh(LatencyModel::Zero, 0.0);
        let mut a = net.endpoint();
        assert!(!a.send(NetAddr::Virtual(99), b"x"));
        let sock: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(!a.send(NetAddr::Sock(sock), b"x"));
        assert_eq!(net.unroutable(), 2);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let run = || {
            let net = mesh(LatencyModel::Uniform { min: 1, max: 30 }, 0.3);
            let mut a = net.endpoint();
            let mut b = net.endpoint();
            for i in 0..50u8 {
                a.send(b.net_addr(), &[i]);
            }
            b.advance_to(40);
            let mut got = Vec::new();
            let mut buf = Vec::new();
            while b.try_recv(&mut buf).is_some() {
                got.push(buf[0]);
            }
            got
        };
        let first = run();
        assert_eq!(first, run());
        assert!(!first.is_empty());
    }
}
