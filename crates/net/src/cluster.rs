//! Loopback cluster harness: N nodes across K runtime threads on UDP.
//!
//! [`run`] binds one [`UdpTransport`] per runtime on `127.0.0.1:0`, splits
//! the node population into contiguous id ranges (the sharded engines'
//! placement), bootstraps every node off earlier nodes (a tree plus random
//! extra introducers, the join pattern of the simulators' churn scenarios),
//! and drives all runtimes against the shared wall clock — 1 tick = 1 ms.
//!
//! At every period boundary each runtime thread snapshots its nodes' views
//! and sends them to the driver, which assembles the global overlay into a
//! [`pss_sim::CsrSnapshot`] — the same CSR metrics path the simulators use
//! — and records in-degree statistics plus the full-view fraction. Threads
//! realign on a barrier per period so snapshot skew stays bounded by the
//! slowest runtime, not the full run.
//!
//! # Workload schedules
//!
//! A [`ClusterConfig::workload`] compiles a
//! [`pss_sim::workload::Workload`] against the initial population and
//! executes every membership event at the matching period boundary:
//! kills become [`NetRuntime::leave`] on the hosting runtime, joins become
//! late [`NetRuntime::add_node`] calls with resolved introducer addresses
//! (initial ids stay on their contiguous range; joined ids land on runtime
//! `id mod K`), and partition ops install the same loss matrix on *every*
//! runtime. The driver reduces each period's assembled rows to the same
//! [`pss_sim::workload::PeriodRecord`]s the simulators report, so one
//! schedule yields directly comparable recovery trajectories on the
//! simulated and the deployed stack — the conformance suite pins exactly
//! that.

use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pss_core::adversary::AdversaryKind;
use pss_core::wire::NetAddr;
use pss_core::{NodeId, ProtocolConfig};
use pss_sim::audit::{audit_rows, role_factory, AttackRecord, HonestPolicy};
use pss_sim::workload::{self, CompiledWorkload, Op, Partition, PeriodRecord, Workload};
use pss_sim::BoxedNode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runtime::{NetConfig, NetRuntime, RuntimeStats};
use crate::udp::UdpTransport;
use crate::workload::{mix, node_seed};

/// Parameters of a loopback cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total nodes, split contiguously across the runtimes.
    pub nodes: usize,
    /// Runtime threads (one UDP socket each).
    pub runtimes: usize,
    /// The protocol every node runs.
    pub protocol: ProtocolConfig,
    /// Gossip period in milliseconds.
    pub period_ms: u64,
    /// Timer jitter in milliseconds (strictly below the period).
    pub jitter_ms: u64,
    /// Gossip periods to run.
    pub periods: u64,
    /// Bootstrap introducers per node (tree parent + random earlier nodes).
    pub introducers: usize,
    /// Master seed for node RNGs, phases, and bootstrap choices.
    pub seed: u64,
    /// Optional membership-dynamics schedule. When set, it is compiled
    /// against `nodes` and **its period count overrides `periods`**; every
    /// kill/join/partition op executes at the matching period boundary. A
    /// schedule with an `adv:` placement deploys real attacker nodes (the
    /// same even-spread ids as the simulators) and makes the report carry
    /// per-period [`AttackRecord`]s.
    pub workload: Option<Workload>,
    /// Honest-node policy override: when set, honest nodes run this policy
    /// (e.g. an H&S healer/swapper corner) instead of `protocol`, and its
    /// view size governs the full-view metric. Attackers always mimic the
    /// skeleton at the same view size.
    pub honest_policy: Option<HonestPolicy>,
    /// Optional broadcast application: every runtime enables the rumor app
    /// and the report carries a per-period spread trace.
    pub broadcast: Option<ClusterBroadcast>,
}

/// Broadcast app parameters for a cluster run ([`ClusterConfig::broadcast`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterBroadcast {
    /// The node seeded with the rumor. Must be an initial id (`< nodes`).
    pub origin: NodeId,
    /// Rumor pushes per period per informed node.
    pub fanout: usize,
    /// 1-based period at whose boundary the rumor is planted (after that
    /// boundary's membership events).
    pub start_period: u64,
}

impl ClusterConfig {
    /// A small default: 256 nodes on 2 runtimes, 100 ms periods.
    pub fn small(protocol: ProtocolConfig) -> Self {
        ClusterConfig {
            nodes: 256,
            runtimes: 2,
            protocol,
            period_ms: 100,
            jitter_ms: 20,
            periods: 20,
            introducers: 3,
            seed: 20040601,
            workload: None,
            honest_policy: None,
            broadcast: None,
        }
    }
}

/// Overlay statistics of one period-boundary snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodStats {
    /// 1-based period index.
    pub period: u64,
    /// Nodes whose view is full (length = c).
    pub full_views: usize,
    /// Nodes in the snapshot.
    pub nodes: usize,
    /// Mean in-degree of the directed view graph.
    pub in_degree_mean: f64,
    /// Standard deviation of the in-degree.
    pub in_degree_sd: f64,
    /// Wall-clock milliseconds since cluster start when this period's
    /// snapshots were fully assembled — the timing row of the period.
    pub wall_ms: u64,
}

impl PeriodStats {
    /// Fraction of nodes with full views.
    pub fn full_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.full_views as f64 / self.nodes as f64
        }
    }
}

/// The result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-period overlay statistics, in period order.
    pub periods: Vec<PeriodStats>,
    /// Per-period workload-grade records (dead links, components,
    /// membership deltas) — the cross-stack comparable trajectory, from
    /// the same rows as [`ClusterReport::periods`].
    pub records: Vec<PeriodRecord>,
    /// Per-period attack observables, from the same rows; empty unless the
    /// workload placed adversaries.
    pub attack_records: Vec<AttackRecord>,
    /// Per-period rumor spread; empty unless [`ClusterConfig::broadcast`]
    /// was set.
    pub broadcast: Vec<BroadcastPeriod>,
    /// First period at which ≥ 99% of nodes had full views.
    pub converged_at: Option<u64>,
    /// Runtime statistics summed across all runtimes (final).
    pub stats: RuntimeStats,
    /// Wall-clock duration of the driven phase.
    pub elapsed: Duration,
}

impl ClusterReport {
    /// Frames per wall-clock second across the cluster.
    pub fn frames_per_sec(&self) -> f64 {
        (self.stats.frames_in + self.stats.frames_out) as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Completed gossip exchanges per wall-clock second (replies absorbed
    /// plus push-only requests absorbed — the event engine's notion; a
    /// pushpull exchange whose reply was lost does not count).
    pub fn exchanges_per_sec(&self) -> f64 {
        self.stats.exchanges_completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Final rumor coverage: informed live nodes over live nodes at the
    /// last period (0.0 without a broadcast trace).
    pub fn broadcast_coverage(&self) -> f64 {
        match self.broadcast.last() {
            Some(b) if b.live > 0 => b.informed as f64 / b.live as f64,
            _ => 0.0,
        }
    }
}

/// One period of cluster-wide rumor spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastPeriod {
    /// 1-based period index.
    pub period: u64,
    /// Live nodes at the snapshot.
    pub live: usize,
    /// Live nodes holding the rumor.
    pub informed: usize,
}

/// The contiguous id range runtime `r` of `k` owns under `n` nodes — the
/// sharded engines' planned-range formula.
fn range_of(n: usize, k: usize, r: usize) -> (usize, usize) {
    let start = (r * n).div_ceil(k);
    let end = ((r + 1) * n).div_ceil(k);
    (start, end.min(n))
}

fn runtime_of(n: usize, k: usize, id: usize) -> usize {
    (id * k) / n
}

/// One runtime thread's per-period message to the driver.
struct PeriodSnapshot {
    runtime: usize,
    period: u64,
    rows: Vec<(NodeId, Vec<NodeId>)>,
    /// Live hosted nodes holding the rumor (empty when the app is off).
    informed: Vec<NodeId>,
    stats: RuntimeStats,
}

/// A compiled workload op routed to one runtime thread, with introducer
/// addresses already resolved on the driver.
enum RtOp {
    Leave(NodeId),
    Join {
        id: NodeId,
        introducers: Vec<(NodeId, NetAddr)>,
    },
    SetPartition(Option<Partition>),
}

/// Runs a loopback UDP cluster; see the [module docs](self).
///
/// # Errors
///
/// Socket-level errors from binding the loopback transports, or an invalid
/// timer configuration surfaced as `InvalidInput`.
///
/// # Panics
///
/// Panics if `nodes < 2` or `runtimes` is zero or exceeds `nodes`.
pub fn run(config: &ClusterConfig) -> std::io::Result<ClusterReport> {
    assert!(config.nodes >= 2, "need at least two nodes");
    assert!(
        config.runtimes >= 1 && config.runtimes <= config.nodes,
        "need 1..=nodes runtimes"
    );
    let net_config = NetConfig {
        period: config.period_ms,
        jitter: config.jitter_ms,
        reply_timeout: config.period_ms,
    };
    net_config
        .validate()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;

    // A workload fixes the membership trajectory (and the run length) up
    // front; without one the run is the bootstrap-only schedule.
    let compiled: Option<CompiledWorkload> =
        config.workload.as_ref().map(|w| w.compile(config.nodes));
    let periods = compiled.as_ref().map_or(config.periods, |c| c.periods());
    let id_space = compiled.as_ref().map_or(config.nodes, |c| c.id_space);
    // Initial ids keep their contiguous range; workload joiners land on
    // runtime `id mod K`.
    let placement = |id: usize| {
        if id < config.nodes {
            runtime_of(config.nodes, config.runtimes, id)
        } else {
            id % config.runtimes
        }
    };

    // Bind every runtime's socket first so the full id → address map is
    // known before any node bootstraps.
    let transports: Vec<UdpTransport> = (0..config.runtimes)
        .map(|_| UdpTransport::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<NetAddr> = transports.iter().map(UdpTransport::net_addr).collect();
    let addr_of = |id: usize| addrs[placement(id)];

    // Route every compiled op to the runtime that must execute it, with
    // introducer addresses resolved: one op list per (runtime, period).
    let mut schedules: Vec<Vec<Vec<RtOp>>> = (0..config.runtimes)
        .map(|_| (0..periods as usize).map(|_| Vec::new()).collect())
        .collect();
    if let Some(compiled) = &compiled {
        for (p, step) in compiled.steps.iter().enumerate() {
            for op in &step.ops {
                match op {
                    Op::Kill(id) => {
                        schedules[placement(id.as_index())][p].push(RtOp::Leave(*id));
                    }
                    Op::Join { id, contacts } => {
                        let introducers = contacts
                            .iter()
                            .map(|&c| (c, addr_of(c.as_index())))
                            .collect();
                        schedules[placement(id.as_index())][p].push(RtOp::Join {
                            id: *id,
                            introducers,
                        });
                    }
                    Op::SetPartition(partition) => {
                        for schedule in schedules.iter_mut() {
                            schedule[p].push(RtOp::SetPartition(*partition));
                        }
                    }
                }
            }
        }
    }

    // Mixed honest/adversarial population: the same role dispatch as the
    // simulators' engine factories, shared across runtime threads.
    let roles = compiled.as_ref().and_then(|c| c.adversary);
    let policy = config
        .honest_policy
        .clone()
        .unwrap_or_else(|| HonestPolicy::Sampling(config.protocol.clone()));
    let build: Arc<dyn Fn(NodeId, u64) -> BoxedNode + Send + Sync> =
        Arc::new(role_factory(policy.clone(), roles));
    // Eclipse attackers address their victims directly, so their hosting
    // runtime's book must resolve the victim ids up front.
    let victim_intros: Vec<(NodeId, NetAddr)> = roles
        .filter(|r| r.kind() == AdversaryKind::Eclipse)
        .map(|r| r.victim_ids().map(|v| (v, addr_of(v.as_index()))).collect())
        .unwrap_or_default();

    // Build the runtimes and their node populations.
    let mut runtimes: Vec<NetRuntime<UdpTransport, BoxedNode>> =
        Vec::with_capacity(config.runtimes);
    let mut boot_rng = SmallRng::seed_from_u64(config.seed ^ 0xb007_b007_b007_b007);
    for (r, transport) in transports.into_iter().enumerate() {
        let mut rt = NetRuntime::new(transport, net_config, mix(config.seed ^ (r as u64 + 1)))
            .expect("validated above");
        // The runtime enforces the age-semantics version gate for the
        // freshness mode the cluster's protocol declares.
        rt.set_freshness(config.protocol.freshness());
        let (start, end) = range_of(config.nodes, config.runtimes, r);
        for i in start..end {
            // The same (seed, id)-pure node seed workload joiners get, so
            // a node's RNG stream does not depend on when it joined.
            let node = build(NodeId::new(i as u64), node_seed(config.seed, i as u64));
            let mut introducers: Vec<(NodeId, NetAddr)> = Vec::new();
            if i > 0 {
                // Tree parent first (guarantees a connected bootstrap
                // graph), then random earlier nodes.
                let parent = i / 2;
                introducers.push((NodeId::new(parent as u64), addr_of(parent)));
                while introducers.len() < config.introducers.min(i) {
                    let pick = boot_rng.random_range(0..i);
                    if introducers.iter().all(|(id, _)| id.as_index() != pick) {
                        introducers.push((NodeId::new(pick as u64), addr_of(pick)));
                    }
                }
            }
            if roles.is_some_and(|r| r.is_attacker(NodeId::new(i as u64))) {
                introducers.extend(victim_intros.iter().copied());
            }
            rt.add_node(node, &introducers);
        }
        if let Some(bcast) = config.broadcast {
            rt.enable_broadcast(bcast.fanout);
        }
        runtimes.push(rt);
    }

    // Drive: every thread follows the shared wall clock (1 tick = 1 ms),
    // applies its workload ops at period boundaries, snapshots, and
    // realigns on the barrier.
    let started = Instant::now();
    let barrier = Arc::new(Barrier::new(config.runtimes));
    let (tx, rx) = mpsc::channel::<PeriodSnapshot>();
    let period_ms = config.period_ms;
    let view_size = policy.view_size();
    let seed = config.seed;
    let broadcast = config.broadcast;
    let origin_runtime = broadcast.map(|b| placement(b.origin.as_index()));

    std::thread::scope(|scope| {
        for ((runtime_idx, mut rt), mut schedule) in
            runtimes.drain(..).enumerate().zip(schedules.drain(..))
        {
            let tx = tx.clone();
            let barrier = Arc::clone(&barrier);
            let build = Arc::clone(&build);
            scope.spawn(move || {
                for p in 1..=periods {
                    // Membership events fire at the boundary, before the
                    // period's gossip — the workload runner's semantics.
                    for op in schedule[p as usize - 1].drain(..) {
                        match op {
                            RtOp::Leave(id) => {
                                // Routing guarantees this runtime hosts a
                                // live `id`; a no-op leave means the
                                // placement map diverged from the schedule.
                                let left = rt.leave(id);
                                debug_assert!(left, "leave of live node {id} was a no-op");
                            }
                            RtOp::Join { id, introducers } => {
                                let node = build(id, node_seed(seed, id.as_u64()));
                                rt.add_node(node, &introducers);
                            }
                            RtOp::SetPartition(partition) => rt.set_partition(partition),
                        }
                    }
                    // The rumor is planted after the boundary's membership
                    // events, so a killed origin stays uninformed.
                    if let Some(bcast) = broadcast {
                        if p == bcast.start_period && origin_runtime == Some(runtime_idx) {
                            rt.seed_rumor(bcast.origin);
                        }
                    }
                    let target = p * period_ms;
                    loop {
                        let elapsed = started.elapsed().as_millis() as u64;
                        rt.run_until(elapsed.min(target));
                        if elapsed >= target {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    let mut rows = Vec::with_capacity(rt.node_count());
                    rt.for_each_live_view(|id, view| {
                        rows.push((id, view.ids().collect::<Vec<NodeId>>()));
                    });
                    let mut informed = Vec::new();
                    if broadcast.is_some() {
                        rt.for_each_informed(|id| informed.push(id));
                    }
                    let snapshot = PeriodSnapshot {
                        runtime: runtime_idx,
                        period: p,
                        rows,
                        informed,
                        stats: rt.stats(),
                    };
                    if tx.send(snapshot).is_err() {
                        return;
                    }
                    barrier.wait();
                }
            });
        }
        drop(tx);

        // Driver side: assemble K snapshots per period into the CSR
        // metrics while the threads run the next period. The end-of-period
        // barrier guarantees periods complete in order, so the workload's
        // dead set can advance step by step.
        let period_ms_hist = pss_telemetry::global().histogram(
            "pss_cluster_period_ms",
            "Wall time between consecutive assembled cluster periods, milliseconds",
        );
        let mut period_stats: Vec<PeriodStats> = Vec::with_capacity(periods as usize);
        let mut records: Vec<PeriodRecord> = Vec::with_capacity(periods as usize);
        let mut attack_records: Vec<AttackRecord> = Vec::new();
        let mut broadcast_trace: Vec<BroadcastPeriod> = Vec::new();
        let mut latest_stats: Vec<RuntimeStats> = vec![RuntimeStats::default(); config.runtimes];
        let mut pending: Vec<Vec<PeriodSnapshot>> = (0..periods).map(|_| Vec::new()).collect();
        let mut dead = vec![false; id_space];
        let mut partitioned = false;
        for snapshot in rx.iter() {
            latest_stats[snapshot.runtime] = snapshot.stats;
            let p = snapshot.period as usize - 1;
            pending[p].push(snapshot);
            if pending[p].len() == config.runtimes {
                assert_eq!(
                    records.len(),
                    p,
                    "period snapshots must complete in order (barrier contract)"
                );
                let batch = std::mem::take(&mut pending[p]);
                let informed: usize = batch.iter().map(|s| s.informed.len()).sum();
                let mut rows: Vec<(NodeId, Vec<NodeId>)> =
                    batch.into_iter().flat_map(|s| s.rows).collect();
                // Joined ids land out of range order; sort globally.
                rows.sort_by_key(|(id, _)| *id);
                let mut killed = 0;
                let mut joined = 0;
                if let Some(compiled) = &compiled {
                    for op in &compiled.steps[p].ops {
                        match op {
                            Op::Kill(id) => {
                                dead[id.as_index()] = true;
                                killed += 1;
                            }
                            Op::Join { .. } => joined += 1,
                            Op::SetPartition(partition) => partitioned = partition.is_some(),
                        }
                    }
                }
                let mut record =
                    workload::measure_rows(id_space, &rows, |id| !dead[id.as_index()], view_size);
                record.period = p as u64 + 1;
                record.killed = killed;
                record.joined = joined;
                record.partitioned = partitioned;
                if let Some(roles) = &roles {
                    attack_records.push(audit_rows(roles, id_space, &rows, record.period));
                }
                let wall_ms = started.elapsed().as_millis() as u64;
                let prev_wall = period_stats.last().map_or(0, |s: &PeriodStats| s.wall_ms);
                period_ms_hist.record(wall_ms.saturating_sub(prev_wall));
                period_stats.push(PeriodStats {
                    period: record.period,
                    full_views: record.full_views,
                    nodes: record.live,
                    in_degree_mean: record.in_degree_mean,
                    in_degree_sd: record.in_degree_sd,
                    wall_ms,
                });
                if broadcast.is_some() {
                    broadcast_trace.push(BroadcastPeriod {
                        period: record.period,
                        live: record.live,
                        informed,
                    });
                }
                records.push(record);
            }
        }

        let elapsed = started.elapsed();
        let mut stats = RuntimeStats::default();
        for s in &latest_stats {
            stats.merge(s);
        }
        let converged_at = period_stats
            .iter()
            .find(|s| s.full_fraction() >= 0.99)
            .map(|s| s.period);
        Ok(ClusterReport {
            periods: period_stats,
            records,
            attack_records,
            broadcast: broadcast_trace,
            converged_at,
            stats,
            elapsed,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::{Freshness, PolicyTriple};

    #[test]
    fn range_partition_covers_all_ids_in_order() {
        for (n, k) in [(10, 3), (7, 7), (1000, 4), (5, 1)] {
            let mut seen = 0usize;
            for r in 0..k {
                let (start, end) = range_of(n, k, r);
                assert_eq!(start, seen, "gap at runtime {r} for ({n}, {k})");
                for id in start..end {
                    assert_eq!(runtime_of(n, k, id), r, "id {id} misrouted");
                }
                seen = end;
            }
            assert_eq!(seen, n);
        }
    }

    #[test]
    fn small_loopback_cluster_converges() {
        // Wall-clock test: 64 nodes, 2 runtimes, 100 ms periods. Generous
        // period budget for a loaded CI box; typically converges in ~6.
        let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 12).unwrap();
        let mut config = ClusterConfig::small(protocol);
        config.nodes = 64;
        config.periods = 15;
        let report = run(&config).expect("cluster runs");
        assert_eq!(report.periods.len(), 15);
        let last = report.periods.last().unwrap();
        assert!(
            last.full_fraction() >= 0.99,
            "only {}/{} full views",
            last.full_views,
            last.nodes
        );
        // Mean in-degree of a converged overlay equals c.
        assert!((last.in_degree_mean - 12.0).abs() < 0.5, "{last:?}");
        assert_eq!(report.stats.decode_failures(), 0, "{:?}", report.stats);
        assert!(report.stats.frames_in > 0);
        assert!(report.converged_at.is_some());
        assert!(report.frames_per_sec() > 0.0);
        assert!(report.exchanges_per_sec() > 0.0);
    }

    /// Timestamp freshness re-merges a 20-period lossy partition over real
    /// loopback UDP. The deterministic hop-splits/timestamp-heals
    /// differential is pinned in the sharded-sim conformance suite
    /// (`timestamp_freshness_heals_the_lossy_long_partition`); the cluster
    /// is wall-clock nondeterministic, so this test asserts only the
    /// robust positive half at a loss (0.45) where the timestamp heal
    /// succeeded in every probe run (8/8 across seeds, including three
    /// repeats of the least favourable one).
    #[test]
    fn timestamp_freshness_heals_the_lossy_partition_over_udp() {
        let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 12)
            .unwrap()
            .with_freshness(Freshness::Timestamp);
        let mut config = ClusterConfig::small(protocol);
        config.nodes = 96;
        config.runtimes = 2;
        config.period_ms = 60;
        config.jitter_ms = 12;
        config.seed = 5;
        config.workload = Some(Workload::parse("quiet:6,part:2x20@0.45,quiet:15", 9).unwrap());
        let report = run(&config).expect("cluster runs");
        assert_eq!(report.records.len(), 41);
        // The overlay actually splits while the loss matrix is in force...
        assert!(report.records[25].partitioned);
        // ...and the timestamp-mode overlay re-merges once it lifts.
        let last = report.records.last().unwrap();
        assert!(
            last.component_fraction() >= 0.98,
            "largest component only {:.2} of {} live nodes",
            last.component_fraction(),
            last.live
        );
        assert!(
            last.dead_link_fraction() <= 0.06,
            "dead links {:.3}",
            last.dead_link_fraction()
        );
        // Every frame on the wire is v2, so the timestamp-mode age gate
        // never fires against our own traffic.
        assert_eq!(report.stats.v1_ages_rejected, 0, "{:?}", report.stats);
        assert_eq!(report.stats.decode_failures(), 0, "{:?}", report.stats);
    }

    /// A thundering herd of joiners — every one aimed at the same
    /// introducer by the `[herd]` override — all integrate over UDP: the
    /// bootstrap retry/backoff path means overload delays joiners instead
    /// of silently dropping them.
    #[test]
    fn flash_herd_joins_without_starvation_over_udp() {
        let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 12).unwrap();
        let mut config = ClusterConfig::small(protocol);
        config.nodes = 64;
        config.runtimes = 2;
        config.period_ms = 60;
        config.jitter_ms = 12;
        config.seed = 11;
        config.workload = Some(Workload::parse("quiet:8,flash:64[herd],quiet:12", 9).unwrap());
        let report = run(&config).expect("cluster runs");
        let last = report.records.last().unwrap();
        assert_eq!(last.live, 128, "a joiner was lost");
        assert!(
            last.component_fraction() >= 0.99,
            "largest component only {:.2}",
            last.component_fraction()
        );
        assert!(
            last.full_fraction() >= 0.95,
            "only {:.2} full views",
            last.full_fraction()
        );
        assert_eq!(report.stats.decode_failures(), 0, "{:?}", report.stats);
    }
}
