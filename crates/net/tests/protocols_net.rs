//! Application traffic on the deployed stack: the broadcast storm that
//! `pss-protocols` runs over the simulators here rides real UDP sockets —
//! rumor pushes are [`pss_core::wire::FrameKind::App`] frames interleaved
//! with the gossip exchanges on the same codec.
//!
//! The acceptance pin: a ≥128-node loopback cluster floods the rumor to
//! ≥ 99% of live nodes with zero codec errors. A second run layers the
//! storm over a kill + churn schedule: deliveries at departed nodes are
//! counted (`app_wasted`), joiners enter uninformed, and the rumor still
//! reaches essentially every survivor.

use pss_core::{NodeId, PolicyTriple, ProtocolConfig};
use pss_net::cluster::{self, ClusterBroadcast, ClusterConfig};
use pss_sim::workload::Workload;

const N: usize = 128;
const C: usize = 20;

fn base_config() -> ClusterConfig {
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid");
    ClusterConfig {
        nodes: N,
        runtimes: 2,
        protocol,
        period_ms: 100,
        jitter_ms: 20,
        periods: 20,
        introducers: 3,
        seed: 20040601,
        workload: None,
        honest_policy: None,
        broadcast: Some(ClusterBroadcast {
            origin: NodeId::new(1),
            fanout: 2,
            start_period: 8,
        }),
    }
}

#[test]
fn udp_cluster_broadcast_reaches_all_live_nodes_with_clean_codec() {
    let report = cluster::run(&base_config()).expect("cluster runs");
    assert_eq!(report.broadcast.len(), 20);
    // Nothing is informed before the seed period.
    assert!(report
        .broadcast
        .iter()
        .take_while(|b| b.period < 8)
        .all(|b| b.informed == 0));
    let last = report.broadcast.last().unwrap();
    assert_eq!(last.live, N);
    assert!(
        report.broadcast_coverage() >= 0.99,
        "rumor reached only {}/{} live nodes",
        last.informed,
        last.live
    );
    let stats = &report.stats;
    assert_eq!(stats.decode_failures(), 0, "{stats:?}");
    // Everyone but the origin was informed by a real frame, and the storm
    // kept pushing after saturation.
    assert!(
        stats.app_delivered >= (N as u64) * 99 / 100 - 1,
        "{stats:?}"
    );
    assert!(stats.app_redundant > 0, "{stats:?}");
}

#[test]
fn udp_cluster_broadcast_survives_kill_and_churn() {
    let mut config = base_config();
    // Converge 8 periods, kill 20%, then 1%/period churn for 12: the storm
    // starts two periods before the catastrophe, so informed nodes die and
    // stale views waste pushes on them, while joiners arrive uninformed.
    config.workload = Some(Workload::parse("quiet:8,kill:0.2,churn:0.01x12", 9).unwrap());
    config.broadcast = Some(ClusterBroadcast {
        origin: NodeId::new(1),
        fanout: 2,
        start_period: 6,
    });
    let report = cluster::run(&config).expect("cluster runs");
    let last = report.broadcast.last().unwrap();
    assert!(last.live < N, "the kill must have landed");
    assert_eq!(last.live, report.records.last().unwrap().live);
    assert!(
        report.broadcast_coverage() >= 0.95,
        "rumor reached only {}/{} live nodes",
        last.informed,
        last.live
    );
    let stats = &report.stats;
    assert_eq!(stats.decode_failures(), 0, "{stats:?}");
    assert!(
        stats.app_wasted > 0,
        "pushes at killed informed nodes never surfaced: {stats:?}"
    );
}
