//! Allocation accounting for the UDP receive ring.
//!
//! The transport's receive path circulates owned, prewarmed buffers
//! between the socket thread and the runtime thread (`try_recv` hands a
//! frame over by pointer swap; the caller's previous buffer rides back as
//! ring capacity). In steady state the datagram path must therefore touch
//! the allocator only incidentally, never once per frame — the regression
//! this test pins is the old recycling channel's silent fall-back to a
//! fresh maximum-length allocation whenever the return path raced the
//! receive thread.
//!
//! Kept in its own integration-test binary because the `#[global_allocator]`
//! is process-wide; the single `#[test]` keeps the measurement window free
//! of concurrent test allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pss_net::{Transport, UdpTransport};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator; the counter is the
// only addition and is atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Sends one frame a → b and spins until b yields it into `buf`.
fn roundtrip(a: &mut UdpTransport, b: &mut UdpTransport, buf: &mut Vec<u8>, frame: &[u8]) {
    assert!(a.send(b.local_addr(), frame));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if b.try_recv(buf).is_some() {
            assert_eq!(buf, frame);
            return;
        }
        assert!(Instant::now() < deadline, "frame never arrived");
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[test]
fn steady_state_udp_receive_is_nearly_allocation_free() {
    let mut a = UdpTransport::bind("127.0.0.1:0").expect("bind a");
    let mut b = UdpTransport::bind("127.0.0.1:0").expect("bind b");
    let frame = [0xabu8; 900]; // a typical c = 30 frame size
    let mut buf = Vec::new();

    // Warm up: the caller's buffer enters circulation, every ring buffer
    // reaches full capacity, deque footprints stabilize.
    for _ in 0..32 {
        roundtrip(&mut a, &mut b, &mut buf, &frame);
    }

    const FRAMES: u64 = 200;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..FRAMES {
        roundtrip(&mut a, &mut b, &mut buf, &frame);
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // Without the ring every received frame allocates its buffer; with it
    // the window should be close to allocation-free. The bound leaves
    // slack for incidental runtime allocations while staying far below
    // one per frame.
    assert!(
        during < FRAMES / 4,
        "{during} allocations for {FRAMES} frames — receive-ring pooling regressed"
    );
    assert_eq!(
        b.ring_empty_events(),
        0,
        "prewarmed ring ran dry during a paced run"
    );
}
